//! No-op derive macros standing in for `serde_derive`.
//!
//! The sibling `serde` stand-in defines `Serialize` / `Deserialize` as empty
//! marker traits, so the derives only need to emit empty impl blocks. The
//! `serde` helper attribute (`#[serde(skip)]`, …) is declared so field
//! attributes parse, then ignored.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct` / `enum` / `union` keyword,
/// skipping attributes and doc comments.
fn type_name(input: &TokenStream) -> Option<String> {
    let mut saw_keyword = false;
    for tree in input.clone() {
        match tree {
            TokenTree::Ident(ident) => {
                let text = ident.to_string();
                if saw_keyword {
                    return Some(text);
                }
                if text == "struct" || text == "enum" || text == "union" {
                    saw_keyword = true;
                }
            }
            _ => continue,
        }
    }
    None
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input).expect("derive(Serialize) on a named type");
    format!("impl serde::Serialize for {name} {}", "{}")
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input).expect("derive(Deserialize) on a named type");
    format!("impl<'de> serde::Deserialize<'de> for {name} {}", "{}")
        .parse()
        .expect("generated impl parses")
}
