//! Offline stand-in for `criterion` (subset of the 0.5 API).
//!
//! Measures wall-clock means and prints a one-line report per benchmark.
//! No statistical analysis, plotting, or baseline comparison — just enough
//! to run the workspace's `benches/` targets and get usable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hints for [`Bencher::iter_batched`] (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input per iteration.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    target_time: Duration,
    result: Option<Duration>,
}

impl Bencher {
    fn new(samples: usize, target_time: Duration) -> Self {
        Self {
            samples,
            target_time,
            result: None,
        }
    }

    /// Times `routine`, storing the mean wall-clock duration per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and per-call cost estimate.
        let start = Instant::now();
        black_box(routine());
        let one = start.elapsed().max(Duration::from_nanos(1));
        // Budget: `samples` calls, capped by the target measurement time.
        let by_time = (self.target_time.as_nanos() / one.as_nanos().max(1)) as usize;
        let iters = self.samples.min(by_time.max(1)).max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.result = Some(start.elapsed() / iters as u32);
    }

    /// Times `routine` over inputs produced by `setup` (setup cost excluded
    /// only approximately: setup runs outside the timed region per batch).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let one = start.elapsed().max(Duration::from_nanos(1));
        let by_time = (self.target_time.as_nanos() / one.as_nanos().max(1)) as usize;
        let iters = self.samples.min(by_time.max(1)).max(1);
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.result = Some(total / iters as u32);
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn run_one(label: &str, samples: usize, target_time: Duration, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher::new(samples, target_time);
    f(&mut bencher);
    match bencher.result {
        Some(mean) => println!("bench: {label:<50} {:>12}/iter", format_duration(mean)),
        None => println!("bench: {label:<50} (no measurement)"),
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the default per-benchmark iteration budget.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the default per-benchmark time budget.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, self.measurement_time, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration budget for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Overrides the time budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.measurement_time,
            f,
        );
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl Display, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grp");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| b.iter(|| n * n));
        group.bench_function(BenchmarkId::from_parameter(7), |b| {
            b.iter_batched(|| 7u64, |n| n + 1, BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
