//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! The workspace only needs the trait names and derives to exist — nothing
//! serializes through serde at runtime (persistence uses hand-rolled TSV).
//! The traits are therefore empty markers and the derives emit empty impls.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable types (no-op stand-in).
pub trait Serialize {}

/// Marker for deserializable types (no-op stand-in).
pub trait Deserialize<'de>: Sized {}

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};
    use crate as serde;

    #[derive(Serialize, Deserialize)]
    struct WithAttrs {
        #[serde(skip)]
        _cached: Option<u32>,
        _plain: f64,
    }

    #[derive(Serialize, Deserialize)]
    enum Kind {
        _A,
        _B(u8),
    }

    fn assert_impls<T: Serialize + for<'de> Deserialize<'de>>() {}

    #[test]
    fn derives_produce_impls() {
        assert_impls::<WithAttrs>();
        assert_impls::<Kind>();
    }
}
