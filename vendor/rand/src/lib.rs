//! Offline stand-in for the `rand` crate (subset of the 0.8 API).
//!
//! Provides the surface this workspace uses: [`Rng`] with `gen` /
//! `gen_range`, [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a fixed seed, but **not** bit-compatible
//! with upstream `rand`'s ChaCha12-based `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of a word).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`rng.gen::<T>()`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Integer types uniformly samplable over a span (used by range sampling).
pub trait UniformInt: Copy {
    /// Widens to `u64` for span arithmetic.
    fn to_u64(self) -> u64;
    /// Narrows back after offsetting.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                // Order-preserving map into u64 (two's-complement shift for
                // signed types).
                ((self as i64) as u64) ^ (1u64 << 63)
            }
            fn from_u64(v: u64) -> Self {
                ((v ^ (1u64 << 63)) as i64) as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Lemire-style widening multiply; bias is < span / 2^64, negligible for
    // the small spans this workspace draws.
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty f64 range");
        if lo == hi {
            return lo;
        }
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "gen_range: empty integer range");
        T::from_u64(lo + uniform_below(rng, hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        let lo = start.to_u64();
        let hi = end.to_u64();
        assert!(lo <= hi, "gen_range: empty integer range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + uniform_below(rng, span + 1))
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for upstream `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::uniform_below(rng, self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }

    // Allow `shuffle` through unsized coercion from Vec as well.
    impl<T> SliceRandom for Vec<T> {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            self.as_mut_slice().shuffle(rng);
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            self.as_slice().choose(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..7);
            assert!((3..7).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let x = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&x));
        }
        assert_eq!(rng.gen_range(4.0f64..=4.0), 4.0);
    }

    #[test]
    fn integer_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.as_slice().choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn works_through_mut_ref_and_unsized() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0f64..1.0)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
