//! Offline stand-in for `proptest` (subset of the 1.x API).
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! `prop_assert!` / `prop_assert_eq!`, range and tuple strategies,
//! [`collection::vec`], and the `prop_map` / `prop_flat_map` combinators.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test name), and failing cases are
//! reported but **not shrunk**.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates the deterministic RNG for one generated case (macro plumbing —
/// lets `proptest!` expand without a `rand` dependency in the caller).
#[doc(hidden)]
#[must_use]
pub fn new_case_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A failed property-test case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// FNV-1a hash used to derive a per-test seed from its name.
#[must_use]
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Value-generation strategies.
pub mod strategy {
    use super::StdRng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    ::rand::Rng::gen_range(rng, self.clone())
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    ::rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f64, usize, u8, u16, u32, u64, i8, i16, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, G);
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            Self {
                lo,
                hi_exclusive: hi + 1,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface matching `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let base = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..u64::from(config.cases) {
                    let mut __proptest_rng =
                        $crate::new_case_rng(base.wrapping_add(case));
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strategy),
                            &mut __proptest_rng,
                        );
                    )+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}",
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn tuples_and_patterns((a, b) in (0u64..10, 0u64..10)) {
            prop_assert!(a < 10 && b < 10);
        }

        #[test]
        fn vec_strategy(v in collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn flat_map_chains(v in (1usize..4).prop_flat_map(|n| collection::vec(0usize..5, n))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn map_transforms(n in (0usize..5).prop_map(|n| n * 2)) {
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn just_is_constant(k in Just(7usize)) {
            prop_assert_eq!(k, 7);
        }
    }

    #[test]
    fn deterministic_seeding() {
        assert_eq!(super::seed_for("abc"), super::seed_for("abc"));
        assert_ne!(super::seed_for("abc"), super::seed_for("abd"));
    }
}
