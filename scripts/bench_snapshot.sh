#!/usr/bin/env sh
# Regenerates the committed benchmark snapshots:
#
#   BENCH_eval.json   — the eval_hot_path n-sweep (n = 8, 12, 16, 20 at
#                       p = 2): allocating / ctx_fresh / ctx_reused
#                       pipelines and gradient acquisition strategies.
#   BENCH_shard.json  — the shard_scaling sweep (1/2/4 shards over the
#                       loopback and subprocess transports): the streaming
#                       coordinator's corpus throughput, and the gap
#                       between in-process and spawned workers.
#
# The snapshots are a machine-readable record from one reference machine —
# a point of comparison, not a CI gate (absolute times vary across hosts;
# the interesting signal is the ratios within each file).
#
# Usage: scripts/bench_snapshot.sh [eval.json] [shard.json]
#        (defaults: BENCH_eval.json BENCH_shard.json)
set -eu

eval_out="${1:-BENCH_eval.json}"
shard_out="${2:-BENCH_shard.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# Mini-criterion lines look like:
#   bench: expectation/allocating/8                           12.34 µs/iter
# Convert each to {"bench": "...", "nanos_per_iter": ...}.
snapshot() {
    bench_name="$1"
    out="$2"
    cargo bench -p bench --bench "$bench_name" | tee "$raw" >&2
    awk -v benchmark="$bench_name" '
BEGIN { print "{"; printf "  \"benchmark\": \"%s\",\n  \"unit\": \"ns/iter\",\n  \"results\": [\n", benchmark; n = 0 }
$1 == "bench:" && $NF ~ /\/iter$/ {
    label = $2
    value = $(NF-1); unit = $NF
    # value/unit arrive either as "12.34 µs/iter" (two fields) or
    # "123 ns/iter"; normalize to nanoseconds.
    sub(/\/iter$/, "", unit)
    scale = 1
    if (unit == "ns") scale = 1
    else if (unit == "µs" || unit == "us") scale = 1e3
    else if (unit == "ms") scale = 1e6
    else if (unit == "s") scale = 1e9
    if (n > 0) printf ",\n"
    printf "    {\"bench\": \"%s\", \"nanos_per_iter\": %.1f}", label, value * scale
    n++
}
END { printf "\n  ]\n}\n" }
' "$raw" > "$out"
    echo "wrote $out" >&2
}

snapshot eval_hot_path "$eval_out"
snapshot shard_scaling "$shard_out"
