#!/usr/bin/env sh
# Regenerates BENCH_eval.json from the eval_hot_path benchmark.
#
# The committed snapshot is a machine-readable record of the evaluation
# hot path's cost across the n-sweep (n = 8, 12, 16, 20 at p = 2) on one
# reference machine — a point of comparison, not a CI gate (absolute times
# vary across hosts; the interesting signal is the ratios between the
# allocating / ctx_fresh / ctx_reused pipelines and between gradient
# acquisition strategies).
#
# Usage: scripts/bench_snapshot.sh [output.json]   (default: BENCH_eval.json)
set -eu

out="${1:-BENCH_eval.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

cargo bench -p bench --bench eval_hot_path | tee "$raw" >&2

# Mini-criterion lines look like:
#   bench: expectation/allocating/8                           12.34 µs/iter
# Convert each to {"bench": "...", "nanos_per_iter": ...}.
awk '
BEGIN { print "{"; printf "  \"benchmark\": \"eval_hot_path\",\n  \"unit\": \"ns/iter\",\n  \"results\": [\n"; n = 0 }
$1 == "bench:" && $NF ~ /\/iter$/ {
    label = $2
    value = $(NF-1); unit = $NF
    # value/unit arrive either as "12.34 µs/iter" (two fields) or
    # "123 ns/iter"; normalize to nanoseconds.
    sub(/\/iter$/, "", unit)
    scale = 1
    if (unit == "ns") scale = 1
    else if (unit == "µs" || unit == "us") scale = 1e3
    else if (unit == "ms") scale = 1e6
    else if (unit == "s") scale = 1e9
    if (n > 0) printf ",\n"
    printf "    {\"bench\": \"%s\", \"nanos_per_iter\": %.1f}", label, value * scale
    n++
}
END { printf "\n  ]\n}\n" }
' "$raw" > "$out"

echo "wrote $out" >&2
