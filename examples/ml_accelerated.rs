//! The full paper pipeline, end to end: generate a training corpus, train
//! the GPR parameter predictor, then solve unseen MaxCut instances with the
//! two-level flow and compare its cost against the naive protocol.
//!
//! This is Fig. 4 in motion — the headline 44.9% average loop-iteration
//! saving at paper scale; this example runs a reduced scale so it finishes
//! in about a minute.
//!
//! Run: `cargo run --release -p qaoa --example ml_accelerated`

use ml::metrics::mean;
use ml::ModelKind;
use optimize::{Lbfgsb, Options};
use qaoa::datagen::{DataGenConfig, ParameterDataset};
use qaoa::{MaxCutProblem, ParameterPredictor, QaoaInstance, TwoLevelConfig, TwoLevelFlow};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. One-time cost: build the optimal-parameter corpus (§III-A).
    let config = DataGenConfig {
        n_graphs: 40,
        n_nodes: 7,
        edge_probability: 0.5,
        max_depth: 4,
        restarts: 5,
        seed: 2020,
        options: Options::default(),
        trend_preference_margin: 1e-3,
    };
    println!(
        "generating corpus: {} graphs x depths 1..={} ...",
        config.n_graphs, config.max_depth
    );
    let corpus = ParameterDataset::generate(&config)?;
    println!("corpus: {} optimal parameters", corpus.n_parameters());

    // 2. Train the predictor on 20% of the graphs (the paper's split).
    let (train, test) = corpus.split_by_graph(0.2);
    let predictor = ParameterPredictor::train(ModelKind::Gpr, &train)?;
    println!(
        "trained GPR predictor on {} graphs; evaluating on {}",
        train.graphs().len(),
        test.graphs().len()
    );

    // 3. Solve every test graph both ways at target depth 3.
    let target_depth = 3;
    let optimizer = Lbfgsb::default();
    let flow = TwoLevelFlow::new(&predictor);
    let mut rng = StdRng::seed_from_u64(7);
    let bounds = qaoa::parameter_bounds(target_depth)?;

    let mut naive_fc = Vec::new();
    let mut naive_ar = Vec::new();
    let mut ml_fc = Vec::new();
    let mut ml_ar = Vec::new();
    for graph in test.graphs() {
        let problem = MaxCutProblem::new(graph)?;
        // Naive: one random-initialization run at the target depth.
        let instance = QaoaInstance::new(problem.clone(), target_depth)?;
        let start = bounds.sample(&mut rng);
        let naive = instance.optimize(&optimizer, &start, &Options::default())?;
        naive_fc.push(naive.function_calls as f64);
        naive_ar.push(naive.approximation_ratio);
        // Two-level: p=1 warm-up, ML prediction, target-depth refinement.
        let out = flow.run(
            &problem,
            target_depth,
            &optimizer,
            &TwoLevelConfig::default(),
            &mut rng,
        )?;
        ml_fc.push(out.total_calls() as f64);
        ml_ar.push(out.approximation_ratio);
    }

    let reduction = 100.0 * (mean(&naive_fc) - mean(&ml_fc)) / mean(&naive_fc);
    println!("\n           {:>10} {:>10}", "naive", "two-level");
    println!(
        "mean FC    {:>10.1} {:>10.1}",
        mean(&naive_fc),
        mean(&ml_fc)
    );
    println!(
        "mean AR    {:>10.4} {:>10.4}",
        mean(&naive_ar),
        mean(&ml_ar)
    );
    println!("\nfunction-call reduction: {reduction:.1}% (paper reports 44.9% on average)");
    Ok(())
}
