//! Noisy QAOA: how gate errors eat the approximation ratio.
//!
//! Runs the same depth-2 QAOA instance on the density-matrix simulator
//! under increasing depolarizing noise and shows (a) the decohered energy
//! at fixed good parameters, and (b) what re-optimizing *under* noise
//! recovers. This is the regime the paper's run-time argument targets:
//! every QC call is expensive and noisy.
//!
//! Run: `cargo run --release -p qaoa --example noisy_simulation`

use graphs::generators;
use optimize::{NelderMead, Options};
use qaoa::noisy::NoisyQaoa;
use qaoa::{MaxCutProblem, QaoaInstance};
use qsim::NoiseModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(11);
    let graph = generators::erdos_renyi_nonempty(6, 0.5, &mut rng);
    let problem = MaxCutProblem::new(&graph)?;
    let depth = 2;

    // First find good noiseless parameters.
    let instance = QaoaInstance::new(problem.clone(), depth)?;
    let clean =
        instance.optimize_multistart(&NelderMead::default(), 5, &mut rng, &Options::default())?;
    println!(
        "noiseless optimum: AR = {:.4} ({} calls)\n",
        clean.approximation_ratio, clean.function_calls
    );

    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "p2", "AR(frozen)", "AR(re-opt)", "purity"
    );
    for p2 in [0.0, 0.002, 0.01, 0.05] {
        let noise = NoiseModel::uniform_depolarizing(p2 / 10.0, p2)?;
        let noisy = NoisyQaoa::new(problem.clone(), depth, noise)?;

        // (a) Evaluate the noiseless optimum on the noisy device.
        let frozen_ar = noisy.approximation_ratio(&clean.params)?;
        let purity = noisy.state(&clean.params)?.purity();

        // (b) Re-optimize in the presence of noise, warm-started from the
        // noiseless optimum.
        let reopt = noisy.optimize(
            &NelderMead::default(),
            &clean.params,
            &Options::default().with_max_iters(100),
        )?;

        println!(
            "{:>8.3} {:>12.4} {:>12.4} {:>10.4}",
            p2, frozen_ar, reopt.approximation_ratio, purity
        );
    }

    println!(
        "\nNoise suppresses the achievable AR even with re-optimization — the\n\
         fewer QC calls a flow needs (the paper's two-level proposal), the\n\
         less decoherence budget the experiment burns."
    );
    Ok(())
}
