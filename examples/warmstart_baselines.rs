//! Warm-start shoot-out: random vs ramp vs INTERP vs FOURIER on one graph.
//!
//! Demonstrates the non-ML initialization heuristics of `qaoa::warmstart`
//! and how their cost (function calls) and quality (approximation ratio)
//! compare on a single 8-node instance. The `baseline_compare` benchmark
//! binary runs the same comparison — plus the ML two-level flow — over a
//! whole ensemble.
//!
//! Run: `cargo run --release -p qaoa --example warmstart_baselines`

use graphs::generators;
use optimize::{Lbfgsb, Options};
use qaoa::warmstart::{linear_ramp, FourierFlow, InterpFlow};
use qaoa::{MaxCutProblem, QaoaInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    let graph = generators::random_regular(8, 3, &mut rng)?;
    let problem = MaxCutProblem::new(&graph)?;
    let depth = 4;
    let optimizer = Lbfgsb::default();
    let options = Options::default();

    println!("8-node 3-regular graph, target depth p = {depth}\n");
    println!("{:<10} {:>8} {:>8}", "strategy", "AR", "calls");

    // Random initialization (mean of 5 starts).
    let instance = QaoaInstance::new(problem.clone(), depth)?;
    let bounds = qaoa::parameter_bounds(depth)?;
    let mut total_ar = 0.0;
    let mut total_fc = 0;
    for _ in 0..5 {
        let start = bounds.sample(&mut rng);
        let out = instance.optimize(&optimizer, &start, &options)?;
        total_ar += out.approximation_ratio;
        total_fc += out.function_calls;
    }
    println!(
        "{:<10} {:>8.4} {:>8}",
        "random",
        total_ar / 5.0,
        total_fc / 5
    );

    // Linear ramp (TQA-style) single-shot initialization.
    let init = linear_ramp(depth, 0.75 * depth as f64)?;
    let out = instance.optimize(&optimizer, &init, &options)?;
    println!(
        "{:<10} {:>8.4} {:>8}",
        "ramp", out.approximation_ratio, out.function_calls
    );

    // INTERP: re-optimize at every depth 1..=4, interpolating upward.
    let out = InterpFlow::default().run(&problem, depth, &optimizer, &mut rng)?;
    println!(
        "{:<10} {:>8.4} {:>8}",
        "interp",
        out.approximation_ratio,
        out.total_calls()
    );
    println!("           calls per depth: {:?}", out.calls_per_depth);

    // FOURIER: optimize a truncated Fourier series of the schedules.
    let out = FourierFlow::default().run(&problem, depth, &optimizer, &mut rng)?;
    println!(
        "{:<10} {:>8.4} {:>8}",
        "fourier",
        out.approximation_ratio,
        out.total_calls()
    );
    println!("           calls per depth: {:?}", out.calls_per_depth);

    Ok(())
}
