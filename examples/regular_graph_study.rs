//! Domain study: how QAOA depth trades off against solution quality across
//! graph families (the workload class the paper's introduction motivates:
//! hard combinatorial instances on near-term devices).
//!
//! Sweeps depth p = 1..4 over 3-regular, Erdős–Rényi and complete graphs
//! and reports the approximation ratio and loop cost of each, echoing
//! Fig. 1(c) across families rather than single graphs.
//!
//! Run: `cargo run --release -p qaoa --example regular_graph_study`

use graphs::{generators, Graph};
use ml::metrics::mean;
use optimize::{Lbfgsb, Options};
use qaoa::{MaxCutProblem, QaoaInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn family(
    name: &str,
    make: impl Fn(&mut StdRng) -> Graph,
    rng: &mut StdRng,
) -> (String, Vec<Graph>) {
    (name.to_string(), (0..3).map(|_| make(rng)).collect())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(5);
    let families = vec![
        family(
            "3-regular",
            |r| generators::random_regular(8, 3, r).expect("valid regular params"),
            &mut rng,
        ),
        family(
            "ER(8, 0.5)",
            |r| generators::erdos_renyi_nonempty(8, 0.5, r),
            &mut rng,
        ),
        family("complete K6", |_| generators::complete(6), &mut rng),
    ];

    let optimizer = Lbfgsb::default();
    let options = Options::default();
    let restarts = 8;

    println!(
        "{:<12} {:>3} {:>9} {:>10}",
        "family", "p", "meanAR", "meanFC"
    );
    for (name, graphs) in &families {
        for p in 1..=4 {
            let mut ars = Vec::new();
            let mut fcs = Vec::new();
            for graph in graphs {
                let problem = MaxCutProblem::new(graph)?;
                let instance = QaoaInstance::new(problem, p)?;
                let out = instance.optimize_multistart(&optimizer, restarts, &mut rng, &options)?;
                ars.push(out.approximation_ratio);
                fcs.push(out.function_calls as f64);
            }
            println!(
                "{:<12} {:>3} {:>9.4} {:>10.1}",
                name,
                p,
                mean(&ars),
                mean(&fcs)
            );
        }
    }
    println!("\nReading: AR climbs toward 1 with depth in every family while the loop cost");
    println!("grows — the run-time pressure the paper's ML initialization relieves.");
    Ok(())
}
