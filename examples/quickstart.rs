//! Quickstart: solve a MaxCut instance with plain QAOA.
//!
//! Builds a small random graph, runs the depth-2 QAOA optimization loop
//! with L-BFGS-B from random initializations, and reports the cut found.
//!
//! Run: `cargo run --release -p qaoa --example quickstart`

use graphs::{generators, MaxCut};
use optimize::{Lbfgsb, Options};
use qaoa::{MaxCutProblem, QaoaInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. A problem graph: 8 nodes from the paper's Erdős–Rényi ensemble.
    let graph = generators::erdos_renyi_nonempty(8, 0.5, &mut rng);
    println!("graph: {graph}");
    let exact = MaxCut::solve(&graph);
    println!("exact MaxCut: {}", exact.value());

    // 2. Prepare the QAOA instance (depth 2 = 4 parameters).
    let problem = MaxCutProblem::new(&graph)?;
    let instance = QaoaInstance::new(problem, 2)?;

    // 3. The closed optimization loop: simulator <-> classical optimizer.
    let outcome = instance.optimize_multistart(
        &Lbfgsb::default(),
        10, // random initializations
        &mut rng,
        &Options::default(),
    )?;

    println!("best expectation <C>: {:.4}", outcome.expectation);
    println!("approximation ratio : {:.4}", outcome.approximation_ratio);
    println!("function calls      : {}", outcome.function_calls);
    println!("gammas: {:?}", outcome.gammas());
    println!("betas : {:?}", outcome.betas());

    // 4. Read out a concrete cut by sampling the optimized circuit.
    let ansatz = instance.ansatz();
    let state = ansatz.state_fast(&outcome.params)?;
    let samples = qsim::sample_counts(&state, 512, &mut rng)?;
    let (best_state, _) = samples
        .iter()
        .max_by_key(|(&z, &c)| (c, z))
        .expect("non-empty sample");
    println!(
        "most frequent measured cut: {:#010b} with value {}",
        best_state,
        instance.problem().graph().cut_value(*best_state)
    );
    Ok(())
}
