//! Reproduces the parameter-trend observations of §II (Figs. 2 and 3) on a
//! single random 3-regular graph: within a fixed depth the optimal γᵢ grow
//! and βᵢ shrink with the stage index, and across depths γ₁ shrinks while
//! β₁ grows.
//!
//! These regularities are the entire basis of the paper's ML predictor.
//! They emerge when consecutive depths stay in the same smooth basin family,
//! so — as in the corpus pipeline (DESIGN.md §5) — the depth-1 instance is
//! solved by multistart and deeper instances follow Zhou et al.'s INTERP
//! chain; the smoothness-preserving conjugation fold normalizes the display.
//!
//! Run: `cargo run --release -p qaoa --example parameter_trends`

use graphs::generators;
use optimize::{Lbfgsb, Options};
use qaoa::datagen::interp_resample;
use qaoa::{canonical, MaxCutProblem, QaoaInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2020);
    let graph = generators::random_regular(8, 3, &mut rng)?;
    let problem = MaxCutProblem::new(&graph)?;
    let optimizer = Lbfgsb::default();
    let options = Options::default();
    let max_depth = 5;

    println!("graph: {graph} (3-regular)");

    // Build the INTERP chain once; read both trends off it.
    let mut chain: Vec<(Vec<f64>, f64)> = Vec::new();
    for p in 1..=max_depth {
        let instance = QaoaInstance::new(problem.clone(), p)?;
        let outcome = if let Some((packed, _)) = chain.last() {
            let half = packed.len() / 2;
            let mut seed = interp_resample(&packed[..half], p);
            seed.extend(interp_resample(&packed[half..], p));
            instance.optimize(&optimizer, &seed, &options)?
        } else {
            instance.optimize_multistart(&optimizer, 10, &mut rng, &options)?
        };
        chain.push((outcome.params, outcome.approximation_ratio));
    }

    let folded = canonical::display_fold_chain(
        &chain
            .iter()
            .map(|(params, _)| params.clone())
            .collect::<Vec<_>>(),
    );

    println!("\nWithin-depth trend (Fig. 2): optimal parameters per stage at p = 4");
    println!("{:>5} {:>10} {:>10}", "stage", "gamma_i", "beta_i");
    for i in 0..4 {
        println!(
            "{:>5} {:>10.4} {:>10.4}",
            i + 1,
            folded[3][i],
            folded[3][4 + i]
        );
    }
    println!("(expect gamma_i increasing, beta_i decreasing)");

    println!("\nAcross-depth trend (Fig. 3): first-stage optimum vs circuit depth");
    println!("{:>3} {:>10} {:>10} {:>8}", "p", "gamma_1", "beta_1", "AR");
    for (p, params) in folded.iter().enumerate() {
        println!(
            "{:>3} {:>10.4} {:>10.4} {:>8.4}",
            p + 1,
            params[0],
            params[p + 1],
            chain[p].1
        );
    }
    println!("(expect gamma_1 decreasing, beta_1 increasing, AR increasing)");
    Ok(())
}
