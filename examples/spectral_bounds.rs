//! Spectral certificates for MaxCut: how close do exact cuts and QAOA get
//! to the Mohar–Poljak Laplacian bound?
//!
//! For a spread of graph families this prints the algebraic connectivity,
//! the spectral upper bound `n·λ_max(L)/4`, the exact maximum cut, and the
//! depth-2 QAOA expectation — a compact picture of instance hardness that
//! complements the paper's ER-only evaluation.
//!
//! Run: `cargo run --release -p qaoa --example spectral_bounds`

use graphs::{generators, spectral, Graph, MaxCut};
use optimize::{Lbfgsb, Options};
use qaoa::{MaxCutProblem, QaoaInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(19);
    let families: Vec<(&str, Graph)> = vec![
        ("cycle(8)", generators::cycle(8)),
        ("complete(8)", generators::complete(8)),
        ("3-regular", generators::random_regular(8, 3, &mut rng)?),
        (
            "ER(0.5)",
            generators::erdos_renyi_nonempty(8, 0.5, &mut rng),
        ),
        ("BA(m=2)", generators::barabasi_albert(8, 2, &mut rng)?),
        ("barbell(4)", generators::barbell(4)),
        ("wheel(8)", generators::wheel(8)),
    ];

    println!(
        "{:<12} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "graph", "edges", "lambda2", "bound", "exact", "QAOA p2", "AR"
    );
    for (name, graph) in families {
        let lambda2 = spectral::algebraic_connectivity(&graph);
        let bound = spectral::maxcut_upper_bound(&graph);
        let exact = MaxCut::solve(&graph).value();

        let problem = MaxCutProblem::new(&graph)?;
        let instance = QaoaInstance::new(problem, 2)?;
        let out =
            instance.optimize_multistart(&Lbfgsb::default(), 5, &mut rng, &Options::default())?;

        println!(
            "{:<12} {:>6} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.4}",
            name,
            graph.n_edges(),
            lambda2,
            bound,
            exact,
            out.expectation,
            out.approximation_ratio
        );
    }
    println!(
        "\nExact cuts always respect the spectral bound; well-connected graphs\n\
         (large lambda2) sit closer to it, and QAOA tracks the exact value\n\
         within its depth-limited approximation ratio."
    );
    Ok(())
}
