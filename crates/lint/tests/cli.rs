//! End-to-end tests of the `qaoa-lint` binary against the seeded-violation
//! fixture tree (`tests/fixtures/` mirrors a miniature workspace so the
//! path-scoped rules fire on realistic crate paths).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn qaoa_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_qaoa-lint"))
        .args(args)
        .output()
        .expect("spawn qaoa-lint")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

#[test]
fn fixture_workspace_fails_with_every_rule_firing() {
    let root = fixture_root();
    let out = qaoa_lint(&[
        "--workspace",
        "--root",
        root.to_str().unwrap(),
        "--no-baseline",
    ]);
    assert_eq!(code(&out), 1, "seeded violations must fail the run");
    let text = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "no-unordered-iter",
        "bit-exact-floats",
        "no-lossy-as",
        "no-panic-lib",
        "safety-comment",
        "no-wallclock",
    ] {
        assert!(text.contains(rule), "rule {rule} must fire:\n{text}");
    }
    // file:line diagnostics, workspace-relative.
    assert!(
        text.contains("crates/core/src/unordered.rs:"),
        "diagnostics carry file:line:\n{text}"
    );
    // Marker hygiene from the bare_marker fixture.
    assert!(
        text.contains("lint-allow"),
        "marker errors reported:\n{text}"
    );
    // Test-side HashMap in the fixture is exempt.
    assert!(
        !text.contains("unordered.rs:22"),
        "test code must be exempt:\n{text}"
    );
}

#[test]
fn suppressed_fixture_is_clean() {
    let root = fixture_root();
    let file = root.join("crates/engine/src/suppressed.rs");
    let out = qaoa_lint(&["--root", root.to_str().unwrap(), file.to_str().unwrap()]);
    assert_eq!(
        code(&out),
        0,
        "justified markers silence everything: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("suppressed"),
        "suppression count shown:\n{text}"
    );
}

#[test]
fn json_format_is_machine_readable() {
    let root = fixture_root();
    let file = root.join("crates/engine/src/casts.rs");
    let out = qaoa_lint(&[
        "--root",
        root.to_str().unwrap(),
        "--format",
        "json",
        file.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 1);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"rule\":\"no-lossy-as\""), "{text}");
    assert!(
        text.contains("\"file\":\"crates/engine/src/casts.rs\""),
        "{text}"
    );
    assert!(text.contains("\"line\":"), "{text}");
    assert!(
        text.trim_start().starts_with('{'),
        "one JSON object:\n{text}"
    );
}

#[test]
fn rule_filters_narrow_the_run() {
    let root = fixture_root();
    let file = root.join("crates/engine/src/casts.rs");
    // Only the safety rule: the casts and unwraps in the same file are not
    // reported.
    let out = qaoa_lint(&[
        "--root",
        root.to_str().unwrap(),
        "--only",
        "safety-comment",
        file.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 1);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("safety-comment"), "{text}");
    assert!(!text.contains("no-lossy-as"), "{text}");

    let out = qaoa_lint(&["--only", "no-such-rule", file.to_str().unwrap()]);
    assert_eq!(code(&out), 2, "unknown rule name is a usage error");
}

#[test]
fn baseline_ratchet_up_fails_down_passes() {
    // A scratch copy of one fixture so the test can both regress and
    // improve it without touching the shared tree.
    let scratch = std::env::temp_dir().join(format!("qaoa-lint-ratchet-{}", std::process::id()));
    let src_dir = scratch.join("crates/engine/src");
    std::fs::create_dir_all(&src_dir).expect("scratch dirs");
    let file = src_dir.join("casts.rs");
    let baseline = scratch.join("lint-baseline.toml");
    let two_violations =
        "pub fn f(x: u64) -> u32 {\n    x as u32\n}\npub fn g(x: u64) -> u16 {\n    x as u16\n}\n";
    std::fs::write(&file, two_violations).expect("write fixture");

    let run = |extra: &[&str]| {
        let mut args = vec![
            "--workspace",
            "--root",
            scratch.to_str().unwrap(),
            "--baseline",
            baseline.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        qaoa_lint(&args)
    };

    // No baseline yet: the two seeded violations are regressions.
    assert_eq!(code(&run(&[])), 1);
    // Accept them.
    assert_eq!(code(&run(&["--update-baseline"])), 0);
    let accepted = std::fs::read_to_string(&baseline).expect("baseline written");
    assert!(accepted.contains("[no-lossy-as]"), "{accepted}");
    assert!(
        accepted.contains("\"crates/engine/src/casts.rs\" = 2"),
        "{accepted}"
    );
    // Flat: baselined counts pass.
    assert_eq!(code(&run(&[])), 0);

    // Ratchet up: a third violation in the same file fails.
    std::fs::write(
        &file,
        format!("{two_violations}pub fn h(x: u64) -> u8 {{\n    x as u8\n}}\n"),
    )
    .expect("regress fixture");
    let out = run(&[]);
    assert_eq!(code(&out), 1, "new violation over baseline must fail");
    assert!(String::from_utf8_lossy(&out.stdout).contains("baseline allows 2"));

    // Ratchet down: dropping to one violation passes and suggests
    // tightening.
    std::fs::write(&file, "pub fn f(x: u64) -> u32 {\n    x as u32\n}\n").expect("improve fixture");
    let out = run(&[]);
    assert_eq!(code(&out), 0, "improvement must pass");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("tighten"),
        "improvement nudges the baseline:\n{text}"
    );
    // Tightened baseline reflects the lower count.
    assert_eq!(code(&run(&["--update-baseline"])), 0);
    let tightened = std::fs::read_to_string(&baseline).expect("baseline rewritten");
    assert!(
        tightened.contains("\"crates/engine/src/casts.rs\" = 1"),
        "{tightened}"
    );

    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn repo_workspace_scan_is_clean_under_its_baseline() {
    // The committed baseline plus in-tree suppressions must keep the real
    // workspace green — the same invocation CI runs.
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let out = qaoa_lint(&["--workspace", "--root", repo_root.to_str().unwrap()]);
    assert_eq!(
        code(&out),
        0,
        "workspace must be clean under lint-baseline.toml:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn help_and_list_rules_exit_zero() {
    let help = qaoa_lint(&["--help"]);
    assert_eq!(code(&help), 0);
    assert!(String::from_utf8_lossy(&help.stdout).contains("USAGE"));
    let rules = qaoa_lint(&["--list-rules"]);
    assert_eq!(code(&rules), 0);
    let text = String::from_utf8_lossy(&rules.stdout);
    assert!(text.contains("no-unordered-iter") && text.contains("no-wallclock"));
}
