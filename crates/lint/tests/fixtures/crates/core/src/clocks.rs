//! Fixture: wall-clock reads outside the designated accounting modules.

use std::time::{Instant, SystemTime};

pub fn stamp() -> u128 {
    let t0 = Instant::now();
    let now = SystemTime::now();
    let _ = now;
    t0.elapsed().as_nanos()
}
