//! Fixture: unordered collections in a deterministic crate.
//! Never compiled — scanned by the `qaoa-lint` integration tests.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn tally(xs: &[u64]) -> usize {
    let mut seen = HashSet::new();
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for &x in xs {
        seen.insert(x);
        *counts.entry(x).or_insert(0) += 1;
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    // Test code is exempt: this HashMap must NOT be flagged.
    #[test]
    fn test_side_maps_are_fine() {
        let mut m = std::collections::HashMap::new();
        m.insert(1, 2);
        assert_eq!(m.len(), 1);
    }
}
