//! Fixture: every would-be violation here carries a justified
//! `lint:allow`, so a scan of this file alone must exit clean.

pub fn widen(x: usize) -> u64 {
    // lint:allow(no-lossy-as) usize -> u64 is value-preserving on every supported target
    x as u64
}

pub fn first(xs: &[u64]) -> u64 {
    // lint:allow(no-panic-lib) fixture invariant: callers never pass an empty slice
    *xs.first().unwrap()
}

pub fn read(p: *const u8) -> u8 {
    // SAFETY: fixture contract — `p` is valid for reads by construction.
    unsafe { *p }
}
