//! Fixture: marker-hygiene errors — a justification-less marker and one
//! naming an unknown rule. Neither silences anything.

pub fn first(xs: &[u64]) -> u64 {
    *xs.first().unwrap() // lint:allow(no-panic-lib)
}

// lint:allow(not-a-rule) the rule name is wrong on purpose
pub fn id(x: u64) -> u64 {
    x
}
