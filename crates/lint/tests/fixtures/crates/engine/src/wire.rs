//! Fixture: float formatting in the wire codec that would break bit-exact
//! round-trips (the real codec encodes IEEE-754 bit patterns in hex).

pub fn encode(expectation: f64, gammas: &[f64]) -> String {
    let first = gammas.first().copied().unwrap_or(0.0);
    // Decimal formatting of floats loses bits: both lines must be flagged.
    let head = format!("E {} {:.17}", expectation, first);
    let tail = expectation.to_string();
    format!("{head} {tail}")
}
