//! Fixture: lossy casts, library panics, and an uncommented `unsafe`.

pub fn shrink(x: u64) -> u32 {
    x as u32
}

pub fn lookup(xs: &[u64], i: u64) -> u64 {
    let idx = i as usize;
    *xs.get(idx).unwrap()
}

pub fn must(flag: bool) {
    if !flag {
        panic!("fixture panic in library code");
    }
}

pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
