//! A lexed source file plus the two layers of context every rule needs:
//! which lines are test code, and which lines carry `lint:allow`
//! suppressions.

use std::collections::BTreeMap;

use crate::lexer::{lex, Tok, TokKind};

/// A source file ready for rule checks.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated (stable across platforms so
    /// baseline files diff cleanly).
    pub path: String,
    /// The lexed token stream, comments included.
    pub toks: Vec<Tok>,
    /// `is_test[line - 1]` is `true` when 1-based `line` sits inside a
    /// `#[cfg(test)]` module or `#[test]` function body.
    is_test: Vec<bool>,
    /// Per-line suppressions: line → rules allowed on that line, each with
    /// a (possibly empty) justification.
    allows: BTreeMap<usize, Vec<Allow>>,
    /// Each parsed marker exactly once (a marker can cover two lines in
    /// `allows`, so that map over-counts for hygiene checks).
    markers: Vec<Allow>,
    n_lines: usize,
}

/// One parsed `lint:allow(rule, ...)` marker.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule name inside the parens.
    pub rule: String,
    /// Trailing free text after the closing paren.
    pub justification: String,
    /// Line the marker comment sits on (diagnostics for bare markers).
    pub marker_line: usize,
}

impl SourceFile {
    /// Lexes `source` and precomputes test regions and suppressions.
    #[must_use]
    pub fn new(path: &str, source: &str) -> Self {
        let toks = lex(source);
        let n_lines = source.lines().count().max(1);
        let is_test = test_lines(&toks, n_lines);
        let (allows, markers) = collect_allows(&toks);
        Self {
            path: path.replace('\\', "/"),
            toks,
            is_test,
            allows,
            markers,
            n_lines,
        }
    }

    /// `true` when 1-based `line` is inside test-only code.
    #[must_use]
    pub fn is_test_line(&self, line: usize) -> bool {
        line >= 1 && line <= self.n_lines && self.is_test[line - 1]
    }

    /// The suppression for `rule` effective on `line`, if any.
    #[must_use]
    pub fn allow_for(&self, rule: &str, line: usize) -> Option<&Allow> {
        self.allows
            .get(&line)
            .and_then(|v| v.iter().find(|a| a.rule == rule))
    }

    /// Every parsed marker, each exactly once (the driver flags
    /// justification-less and unknown-rule ones).
    pub fn all_allows(&self) -> impl Iterator<Item = &Allow> {
        self.markers.iter()
    }
}

/// Marks lines inside `#[test]` / `#[cfg(test)]` items. The heuristic:
/// whenever an attribute's token list contains the ident `test` but not
/// `not` (so `#[cfg(not(test))]` stays non-test), the next `{ ... }` block
/// is a test region. Nested attributes between the marker and the brace
/// (e.g. `#[test] #[should_panic] fn ...`) are handled by simply scanning
/// forward to the first `{`.
fn test_lines(toks: &[Tok], n_lines: usize) -> Vec<bool> {
    let mut flags = vec![false; n_lines];
    let code: Vec<&Tok> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
    let mut i = 0;
    while i < code.len() {
        if code[i].is_punct('#') && code.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Collect the attribute body up to its matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut saw_test = false;
            let mut saw_not = false;
            while j < code.len() && depth > 0 {
                if code[j].is_punct('[') {
                    depth += 1;
                } else if code[j].is_punct(']') {
                    depth -= 1;
                } else if code[j].is_ident("test") {
                    saw_test = true;
                } else if code[j].is_ident("not") {
                    saw_not = true;
                }
                j += 1;
            }
            if saw_test && !saw_not {
                // Find the item's opening brace, then match to its close.
                let mut k = j;
                while k < code.len() && !code[k].is_punct('{') {
                    k += 1;
                }
                if k < code.len() {
                    let open_line = code[i].line;
                    let mut braces = 1usize;
                    let mut m = k + 1;
                    while m < code.len() && braces > 0 {
                        if code[m].is_punct('{') {
                            braces += 1;
                        } else if code[m].is_punct('}') {
                            braces -= 1;
                        }
                        m += 1;
                    }
                    let close_line = code.get(m - 1).map_or(n_lines, |t| t.end_line);
                    for line in open_line..=close_line.min(n_lines) {
                        flags[line - 1] = true;
                    }
                    i = m;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    flags
}

/// Parses `lint:allow(rule, rule2) justification` markers out of comment
/// tokens. A comment that *opens* its line (no code tokens before it)
/// suppresses the next line holding code; a trailing comment suppresses its
/// own line. Both also cover the marker's own line, so a marker above a
/// multi-line statement anchors to where the statement starts.
fn collect_allows(toks: &[Tok]) -> (BTreeMap<usize, Vec<Allow>>, Vec<Allow>) {
    // First code line at-or-after each comment, and code presence per line.
    let mut allows: BTreeMap<usize, Vec<Allow>> = BTreeMap::new();
    let mut markers: Vec<Allow> = Vec::new();
    for (idx, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Comment || is_doc_comment(&tok.text) {
            // Doc comments *describe* the marker syntax (this crate's own
            // docs do); only plain comments *act* as markers.
            continue;
        }
        let Some(parsed) = parse_allow(&tok.text, tok.line) else {
            continue;
        };
        markers.extend(parsed.iter().cloned());
        let leading = !toks[..idx]
            .iter()
            .any(|t| t.kind != TokKind::Comment && t.end_line == tok.line);
        let target = if leading {
            // Next non-comment token's line.
            toks[idx + 1..]
                .iter()
                .find(|t| t.kind != TokKind::Comment)
                .map_or(tok.line, |t| t.line)
        } else {
            tok.line
        };
        for line in [tok.line, target] {
            let slot = allows.entry(line).or_default();
            for a in &parsed {
                if !slot.iter().any(|e| e.rule == a.rule) {
                    slot.push(a.clone());
                }
            }
        }
    }
    (allows, markers)
}

/// `///`, `//!`, `/**`, `/*!` — rustdoc, not suppression. (`////` and
/// `/***` are plain comments per the reference, but treating them as doc
/// here only makes the hygiene check stricter about where markers live.)
fn is_doc_comment(text: &str) -> bool {
    text.starts_with("///")
        || text.starts_with("//!")
        || text.starts_with("/**")
        || text.starts_with("/*!")
}

/// Extracts the marker from one comment's text, if present.
fn parse_allow(comment: &str, marker_line: usize) -> Option<Vec<Allow>> {
    let at = comment.find("lint:allow(")?;
    let rest = &comment[at + "lint:allow(".len()..];
    let close = rest.find(')')?;
    let rules = &rest[..close];
    let justification = rest[close + 1..]
        .trim()
        .trim_end_matches("*/")
        .trim()
        .to_string();
    Some(
        rules
            .split(',')
            .map(|r| Allow {
                rule: r.trim().to_string(),
                justification: justification.clone(),
                marker_line,
            })
            .filter(|a| !a.rule.is_empty())
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_lines_are_test() {
        let src = "\
fn lib() {}\n\
#[cfg(test)]\n\
mod tests {\n\
    #[test]\n\
    fn t() { assert!(true); }\n\
}\n\
fn lib2() {}\n";
        let f = SourceFile::new("x.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(5));
        assert!(f.is_test_line(6));
        assert!(!f.is_test_line(7));
    }

    #[test]
    fn cfg_not_test_is_not_test() {
        let src = "#[cfg(not(test))]\nmod real {\n    fn f() {}\n}\n";
        let f = SourceFile::new("x.rs", src);
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn standalone_test_fn_is_test() {
        let src = "#[test]\n#[should_panic]\nfn t() {\n    boom();\n}\nfn lib() {}\n";
        let f = SourceFile::new("x.rs", src);
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn trailing_allow_covers_its_line() {
        let src = "let x = m.unwrap(); // lint:allow(no-panic-lib) startup only\n";
        let f = SourceFile::new("x.rs", src);
        let a = f.allow_for("no-panic-lib", 1).expect("allow");
        assert_eq!(a.justification, "startup only");
        assert!(f.allow_for("no-lossy-as", 1).is_none());
    }

    #[test]
    fn leading_allow_covers_next_code_line() {
        let src = "\
// lint:allow(no-lossy-as, no-panic-lib) both fine here\n\
// another comment between\n\
let x = y as u32;\n\
let z = 1;\n";
        let f = SourceFile::new("x.rs", src);
        assert!(f.allow_for("no-lossy-as", 3).is_some());
        assert!(f.allow_for("no-panic-lib", 3).is_some());
        assert!(f.allow_for("no-lossy-as", 4).is_none());
    }

    #[test]
    fn doc_comments_do_not_act_as_markers() {
        let src = "\
/// Write `// lint:allow(no-panic-lib) why` above the call.\n\
let x = m.unwrap();\n";
        let f = SourceFile::new("x.rs", src);
        assert!(f.allow_for("no-panic-lib", 2).is_none());
        assert_eq!(f.all_allows().count(), 0);
    }

    #[test]
    fn bare_marker_has_empty_justification() {
        let f = SourceFile::new("x.rs", "// lint:allow(no-panic-lib)\nlet x = 1;\n");
        let a = f.allow_for("no-panic-lib", 2).expect("allow");
        assert!(a.justification.is_empty());
    }
}
