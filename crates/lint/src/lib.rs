//! `qaoa-lint`: a dependency-free static-analysis pass encoding this
//! workspace's determinism and robustness invariants.
//!
//! The scaling layers shipped since the engine landed — work-stealing pool,
//! depth-1 cache, `QW1` wire codec, persisted caches, sharded corpus — all
//! rest on invariants the compiler cannot see: N-thread ≡ 1-thread
//! bit-parity, bit-exact float round-trips, seed-scoped cache purity, and
//! ERR-not-crash server loops. One stray `HashMap` iteration, `{}`-formatted
//! f64, lossy `as` cast, or `unwrap()` in a request loop silently erodes
//! them. This crate machine-checks those rules (see [`rules::RULES`]) over
//! the workspace's `.rs` files using a small hand-written lexer
//! ([`lexer`]), with per-site suppression markers ([`source`]) and a
//! committed ratchet baseline ([`baseline`]) that lets pre-existing
//! violations stand while making *new* ones fail CI.
//!
//! Entry points: [`scan_workspace`] / [`scan_files`] produce a
//! [`LintOutcome`]; the `qaoa-lint` binary layers the CLI, exit codes, and
//! `--update-baseline` on top.

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod source;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use baseline::Counts;
use rules::{RuleDef, Violation, RULES};
use source::SourceFile;

/// Which rules a run checks.
#[derive(Debug, Clone, Default)]
pub struct RuleFilter {
    /// When non-empty, only these rules run.
    pub only: Vec<String>,
    /// These rules are skipped (applied after `only`).
    pub skip: Vec<String>,
}

impl RuleFilter {
    /// Validates rule names and returns the active rule set.
    ///
    /// # Errors
    ///
    /// Returns the first unknown rule name.
    pub fn resolve(&self) -> Result<Vec<&'static RuleDef>, String> {
        for name in self.only.iter().chain(&self.skip) {
            if rules::rule_by_name(name).is_none() {
                return Err(format!(
                    "unknown rule `{name}` (rules: {})",
                    RULES.iter().map(|r| r.name).collect::<Vec<_>>().join(", ")
                ));
            }
        }
        Ok(RULES
            .iter()
            .filter(|r| self.only.is_empty() || self.only.iter().any(|n| n == r.name))
            .filter(|r| !self.skip.iter().any(|n| n == r.name))
            .collect())
    }
}

/// The result of linting a set of files.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Violations not silenced by a justified `lint:allow` marker, in
    /// (path, line) order.
    pub violations: Vec<Violation>,
    /// Sites silenced by a justified marker.
    pub suppressed: usize,
    /// Marker problems: bare (justification-less) markers and markers
    /// naming unknown rules. Never suppressible, never baselined.
    pub marker_errors: Vec<Violation>,
    /// Files scanned.
    pub files: usize,
}

impl LintOutcome {
    /// Current per-rule per-file counts of (unsuppressed) violations.
    #[must_use]
    pub fn counts(&self) -> Counts {
        let mut counts: Counts = BTreeMap::new();
        for v in &self.violations {
            *counts
                .entry(v.rule.to_string())
                .or_default()
                .entry(v.path.clone())
                .or_insert(0) += 1;
        }
        counts
    }
}

/// One `(rule, file)` ratchet comparison that needs attention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatchetDelta {
    /// Rule name.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// Violations found now.
    pub current: usize,
    /// Violations the baseline allows.
    pub baselined: usize,
}

/// The ratchet verdict for a [`LintOutcome`] against a baseline.
#[derive(Debug, Default)]
pub struct Ratchet {
    /// Counts that went **up** (or appeared): these fail the run.
    pub regressions: Vec<RatchetDelta>,
    /// Counts that went **down** (or vanished): the baseline can tighten.
    pub improvements: Vec<RatchetDelta>,
    /// Violations covered exactly by the baseline.
    pub baselined_total: usize,
}

/// Compares current counts against the baseline.
#[must_use]
pub fn ratchet(outcome: &LintOutcome, baseline: &Counts) -> Ratchet {
    let current = outcome.counts();
    let mut r = Ratchet::default();
    let empty = BTreeMap::new();
    // Every rule/path seen on either side.
    let rules: std::collections::BTreeSet<&String> =
        current.keys().chain(baseline.keys()).collect();
    for rule in rules {
        let cur = current.get(rule).unwrap_or(&empty);
        let base = baseline.get(rule).unwrap_or(&empty);
        let paths: std::collections::BTreeSet<&String> = cur.keys().chain(base.keys()).collect();
        for path in paths {
            let c = cur.get(path).copied().unwrap_or(0);
            let b = base.get(path).copied().unwrap_or(0);
            let delta = RatchetDelta {
                rule: rule.clone(),
                path: path.clone(),
                current: c,
                baselined: b,
            };
            if c > b {
                r.regressions.push(delta);
            } else if c < b {
                r.improvements.push(delta);
            } else {
                r.baselined_total += c;
            }
        }
    }
    r
}

/// Lints in-memory sources (path, text). The workhorse behind
/// [`scan_files`] and the fixture tests.
#[must_use]
pub fn lint_sources(sources: &[(String, String)], rules: &[&'static RuleDef]) -> LintOutcome {
    let mut outcome = LintOutcome {
        files: sources.len(),
        ..LintOutcome::default()
    };
    for (path, text) in sources {
        let file = SourceFile::new(path, text);
        // Marker hygiene: bare markers and unknown rule names are findings
        // in their own right — an unjustified allow is indistinguishable
        // from a silenced true positive.
        for allow in file.all_allows() {
            if rules::rule_by_name(&allow.rule).is_none() {
                outcome.marker_errors.push(Violation {
                    rule: "lint-allow",
                    path: file.path.clone(),
                    line: allow.marker_line,
                    message: format!("lint:allow names unknown rule `{}`", allow.rule),
                });
            } else if allow.justification.is_empty() {
                outcome.marker_errors.push(Violation {
                    rule: "lint-allow",
                    path: file.path.clone(),
                    line: allow.marker_line,
                    message: format!(
                        "lint:allow({}) needs a justification after the closing paren",
                        allow.rule
                    ),
                });
            }
        }
        for rule in rules {
            for v in (rule.check)(&file) {
                match file.allow_for(v.rule, v.line) {
                    Some(allow) if !allow.justification.is_empty() => outcome.suppressed += 1,
                    // A bare marker already produced a marker error; the
                    // underlying violation stands too.
                    _ => outcome.violations.push(v),
                }
            }
        }
    }
    outcome
        .violations
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    outcome
}

/// Lints files on disk. Paths are reported relative to `root`.
///
/// # Errors
///
/// Fails on unreadable files.
pub fn scan_files(
    root: &Path,
    paths: &[PathBuf],
    rules: &[&'static RuleDef],
) -> Result<LintOutcome, String> {
    let mut sources = Vec::new();
    for path in paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, text));
    }
    sources.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(lint_sources(&sources, rules))
}

/// Collects the workspace scan set: every `crates/*/src/**/*.rs` under
/// `root`, sorted. Fixtures, vendored stand-ins (`vendor/`), the
/// integration-test crate (`tests/`), and bench `benches/` directories are
/// deliberately out of scope: the rules guard *shipping* library code.
///
/// # Errors
///
/// Fails when `root` has no `crates/` directory.
pub fn workspace_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!(
            "{} has no crates/ directory (run from the workspace root or pass --root)",
            root.display()
        ));
    }
    let mut files = Vec::new();
    let crates = read_dir_sorted(&crates_dir)?;
    for krate in crates {
        let src = krate.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

/// Lints the whole workspace under `root`.
///
/// # Errors
///
/// Propagates walk/read failures.
pub fn scan_workspace(root: &Path, rules: &[&'static RuleDef]) -> Result<LintOutcome, String> {
    let files = workspace_files(root)?;
    scan_files(root, &files, rules)
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    let mut paths = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    Ok(paths)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Finds the workspace root by walking up from `start` until a directory
/// holding both `Cargo.toml` and `crates/` appears.
#[must_use]
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

// --- rendering -------------------------------------------------------------

/// Renders human-readable diagnostics: marker errors, then regressions with
/// their sites, then improvement/tightening notes, then a summary line.
#[must_use]
pub fn render_text(outcome: &LintOutcome, ratchet: &Ratchet) -> String {
    let mut out = String::new();
    for v in &outcome.marker_errors {
        let _ = writeln!(out, "{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
    }
    for reg in &ratchet.regressions {
        let _ = writeln!(
            out,
            "ratchet: [{}] {} has {} violations, baseline allows {}:",
            reg.rule, reg.path, reg.current, reg.baselined
        );
        for v in outcome
            .violations
            .iter()
            .filter(|v| v.rule == reg.rule && v.path == reg.path)
        {
            let _ = writeln!(out, "  {}:{}: {}", v.path, v.line, v.message);
        }
    }
    for imp in &ratchet.improvements {
        let _ = writeln!(
            out,
            "tightenable: [{}] {} is down to {} violations (baseline {}) — run \
             --update-baseline and commit",
            imp.rule, imp.path, imp.current, imp.baselined
        );
    }
    let _ = writeln!(
        out,
        "qaoa-lint: {} files, {} violations ({} baselined, {} suppressed by lint:allow), \
         {} regressions, {} tightenable, {} marker errors",
        outcome.files,
        outcome.violations.len(),
        ratchet.baselined_total,
        outcome.suppressed,
        ratchet.regressions.len(),
        ratchet.improvements.len(),
        outcome.marker_errors.len(),
    );
    out
}

/// Renders the machine-readable report: every regression site and marker
/// error, plus the summary, as one JSON object.
#[must_use]
pub fn render_json(outcome: &LintOutcome, ratchet: &Ratchet) -> String {
    let mut items = Vec::new();
    for v in &outcome.marker_errors {
        items.push(json_violation(v, "marker-error"));
    }
    for reg in &ratchet.regressions {
        for v in outcome
            .violations
            .iter()
            .filter(|v| v.rule == reg.rule && v.path == reg.path)
        {
            items.push(json_violation(v, "regression"));
        }
    }
    let improvements: Vec<String> = ratchet
        .improvements
        .iter()
        .map(|i| {
            format!(
                "{{\"rule\":{},\"file\":{},\"current\":{},\"baselined\":{}}}",
                json_str(&i.rule),
                json_str(&i.path),
                i.current,
                i.baselined
            )
        })
        .collect();
    format!(
        "{{\"findings\":[{}],\"tightenable\":[{}],\"summary\":{{\"files\":{},\"violations\":{},\
         \"baselined\":{},\"suppressed\":{},\"regressions\":{},\"marker_errors\":{}}}}}\n",
        items.join(","),
        improvements.join(","),
        outcome.files,
        outcome.violations.len(),
        ratchet.baselined_total,
        outcome.suppressed,
        ratchet.regressions.len(),
        outcome.marker_errors.len(),
    )
}

fn json_violation(v: &Violation, kind: &str) -> String {
    format!(
        "{{\"kind\":{},\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
        json_str(kind),
        json_str(v.rule),
        json_str(&v.path),
        v.line,
        json_str(&v.message)
    )
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // lint:allow(no-lossy-as) char -> u32 is the identity on the scalar value (char is a subset of u32)
            c if (c as u32) < 0x20 => {
                // lint:allow(no-lossy-as) same identity widening as the guard above
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(path: &str, text: &str) -> (String, String) {
        (path.to_string(), text.to_string())
    }

    fn all_rules() -> Vec<&'static RuleDef> {
        RULES.iter().collect()
    }

    #[test]
    fn suppression_needs_justification() {
        let justified = src(
            "crates/engine/src/x.rs",
            "fn f() { x.unwrap(); // lint:allow(no-panic-lib) held invariant\n}\n",
        );
        let outcome = lint_sources(&[justified], &all_rules());
        assert!(outcome.violations.is_empty());
        assert_eq!(outcome.suppressed, 1);
        assert!(outcome.marker_errors.is_empty());

        let bare = src(
            "crates/engine/src/x.rs",
            "fn f() { x.unwrap(); // lint:allow(no-panic-lib)\n}\n",
        );
        let outcome = lint_sources(&[bare], &all_rules());
        assert_eq!(outcome.violations.len(), 1, "bare marker does not silence");
        assert_eq!(outcome.marker_errors.len(), 1);

        let unknown = src(
            "crates/engine/src/x.rs",
            "// lint:allow(no-such-rule) because\nfn f() {}\n",
        );
        let outcome = lint_sources(&[unknown], &all_rules());
        assert_eq!(outcome.marker_errors.len(), 1);
    }

    #[test]
    fn ratchet_up_down_and_flat() {
        let outcome = lint_sources(
            &[src(
                "crates/engine/src/x.rs",
                "fn f() { a.unwrap(); b.unwrap(); }\n",
            )],
            &all_rules(),
        );
        // Baseline allows 1: two current → regression.
        let mut base: Counts = BTreeMap::new();
        base.entry("no-panic-lib".into())
            .or_default()
            .insert("crates/engine/src/x.rs".into(), 1);
        let r = ratchet(&outcome, &base);
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(
            (r.regressions[0].current, r.regressions[0].baselined),
            (2, 1)
        );

        // Baseline allows 2 → flat, all baselined.
        base.entry("no-panic-lib".into())
            .or_default()
            .insert("crates/engine/src/x.rs".into(), 2);
        let r = ratchet(&outcome, &base);
        assert!(r.regressions.is_empty() && r.improvements.is_empty());
        assert_eq!(r.baselined_total, 2);

        // Baseline allows 5 → improvement.
        base.entry("no-panic-lib".into())
            .or_default()
            .insert("crates/engine/src/x.rs".into(), 5);
        let r = ratchet(&outcome, &base);
        assert_eq!(r.improvements.len(), 1);

        // A baselined file that became clean is an improvement too.
        base.entry("no-panic-lib".into())
            .or_default()
            .insert("crates/engine/src/gone.rs".into(), 3);
        let r = ratchet(&outcome, &base);
        assert_eq!(r.improvements.len(), 2);
    }

    #[test]
    fn rule_filter_resolution() {
        let all = RuleFilter::default().resolve().expect("all rules");
        assert_eq!(all.len(), RULES.len());
        let only = RuleFilter {
            only: vec!["no-panic-lib".into()],
            skip: vec![],
        }
        .resolve()
        .expect("one rule");
        assert_eq!(only.len(), 1);
        let skipped = RuleFilter {
            only: vec![],
            skip: vec!["no-lossy-as".into()],
        }
        .resolve()
        .expect("skip");
        assert_eq!(skipped.len(), RULES.len() - 1);
        assert!(RuleFilter {
            only: vec!["bogus".into()],
            skip: vec![],
        }
        .resolve()
        .is_err());
    }

    #[test]
    fn json_output_is_escaped_and_structured() {
        let outcome = lint_sources(
            &[src("crates/engine/src/x.rs", "fn f() { a.unwrap(); }\n")],
            &all_rules(),
        );
        let r = ratchet(&outcome, &BTreeMap::new());
        let json = render_json(&outcome, &r);
        assert!(json.contains("\"kind\":\"regression\""));
        assert!(json.contains("\"rule\":\"no-panic-lib\""));
        assert!(json.contains("\"violations\":1"));
        // Every quote inside messages is escaped: the JSON stays one object.
        assert_eq!(json.matches("{\"findings\"").count(), 1);
    }
}
