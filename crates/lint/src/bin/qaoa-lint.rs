//! The `qaoa-lint` command-line front end.
//!
//! ```text
//! qaoa-lint --workspace                    # lint crates/*/src against the baseline
//! qaoa-lint --workspace --update-baseline  # rewrite lint-baseline.toml to current counts
//! qaoa-lint --workspace --format json      # machine-readable findings
//! qaoa-lint path/to/file.rs ...            # lint specific files (no baseline by default)
//! ```
//!
//! Exit codes: `0` clean (all violations baselined/suppressed), `1` lint
//! regressions or marker errors, `2` usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use lint::{baseline, find_root, ratchet, render_json, render_text, RuleFilter};

const USAGE: &str = "\
qaoa-lint: static analysis for this workspace's determinism/robustness invariants

USAGE:
    qaoa-lint --workspace [OPTIONS]
    qaoa-lint [OPTIONS] FILE.rs...

OPTIONS:
    --workspace            lint every crates/*/src/**/*.rs under the workspace root
    --root PATH            workspace root (default: walk up from the current directory)
    --baseline PATH        ratchet baseline file (default: <root>/lint-baseline.toml;
                           compared only in --workspace mode unless given explicitly)
    --no-baseline          ignore any baseline: report every violation
    --update-baseline      rewrite the baseline to the current counts and exit 0
    --only RULES           comma-separated rules to run (default: all)
    --skip RULES           comma-separated rules to skip
    --format FORMAT        `text` (default) or `json`
    --list-rules           print every rule with its rationale and exit
    -h, --help             print this help

Suppress a finding at a site with a justified marker comment:
    // lint:allow(<rule>) <why this site is sound>
";

struct Cli {
    workspace: bool,
    root: Option<PathBuf>,
    baseline_path: Option<PathBuf>,
    no_baseline: bool,
    update_baseline: bool,
    filter: RuleFilter,
    json: bool,
    list_rules: bool,
    files: Vec<PathBuf>,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        workspace: false,
        root: None,
        baseline_path: None,
        no_baseline: false,
        update_baseline: false,
        filter: RuleFilter::default(),
        json: false,
        list_rules: false,
        files: Vec::new(),
    };
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<String, String> {
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    let v = (*v).clone();
                    it.next();
                    Ok(v)
                }
                _ => Err(format!("{flag} needs a value")),
            }
        };
        match arg.as_str() {
            "--workspace" => cli.workspace = true,
            "--root" => cli.root = Some(PathBuf::from(value_of("--root")?)),
            "--baseline" => cli.baseline_path = Some(PathBuf::from(value_of("--baseline")?)),
            "--no-baseline" => cli.no_baseline = true,
            "--update-baseline" => cli.update_baseline = true,
            "--only" => cli
                .filter
                .only
                .extend(value_of("--only")?.split(',').map(|s| s.trim().to_string())),
            "--skip" => cli
                .filter
                .skip
                .extend(value_of("--skip")?.split(',').map(|s| s.trim().to_string())),
            "--format" => match value_of("--format")?.as_str() {
                "text" => cli.json = false,
                "json" => cli.json = true,
                other => return Err(format!("unknown format `{other}` (text or json)")),
            },
            "--list-rules" => cli.list_rules = true,
            "-h" | "--help" => return Err(String::new()), // sentinel: print usage, exit 0
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            file => cli.files.push(PathBuf::from(file)),
        }
    }
    if !cli.list_rules && !cli.workspace && cli.files.is_empty() {
        return Err("nothing to lint: pass --workspace or file paths".into());
    }
    if cli.workspace && !cli.files.is_empty() {
        return Err("--workspace and explicit files are mutually exclusive".into());
    }
    Ok(cli)
}

fn run(cli: &Cli) -> Result<ExitCode, String> {
    if cli.list_rules {
        for rule in lint::rules::RULES {
            println!("{:<18} {}", rule.name, rule.summary);
        }
        return Ok(ExitCode::SUCCESS);
    }
    let rules = cli.filter.resolve()?;
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let root = match &cli.root {
        Some(r) => r.clone(),
        None => find_root(&cwd).unwrap_or_else(|| cwd.clone()),
    };

    let outcome = if cli.workspace {
        lint::scan_workspace(&root, &rules)?
    } else {
        lint::scan_files(&root, &cli.files, &rules)?
    };

    // Baseline resolution: workspace runs ratchet by default; explicit-file
    // runs only when a baseline path was given (fixtures and one-off scans
    // should see every violation).
    let baseline_path = match &cli.baseline_path {
        Some(p) => Some(p.clone()),
        None if cli.workspace => Some(root.join("lint-baseline.toml")),
        None => None,
    };
    let base = match (&baseline_path, cli.no_baseline) {
        (Some(path), false) if path.is_file() => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?
        }
        _ => baseline::Counts::new(),
    };

    if cli.update_baseline {
        let path = baseline_path
            .ok_or("--update-baseline needs --workspace or an explicit --baseline path")?;
        let serialized = baseline::serialize(&outcome.counts());
        let unchanged = std::fs::read_to_string(&path)
            .map(|old| old == serialized)
            .unwrap_or(false);
        std::fs::write(&path, &serialized)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!(
            "qaoa-lint: baseline {} {}",
            path.display(),
            if unchanged { "unchanged" } else { "updated" }
        );
        return Ok(ExitCode::SUCCESS);
    }

    let verdict = ratchet(&outcome, &base);
    if cli.json {
        print!("{}", render_json(&outcome, &verdict));
    } else {
        print!("{}", render_text(&outcome, &verdict));
    }
    if verdict.regressions.is_empty() && outcome.marker_errors.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_cli(&args) {
        Ok(cli) => match run(&cli) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("qaoa-lint: {e}");
                ExitCode::from(2)
            }
        },
        Err(e) if e.is_empty() => {
            // --help: usage on stdout, success — same contract the bench
            // CLI settled on in PR 4.
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("qaoa-lint: {e}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
