//! The lint rules: each encodes one repo-specific invariant that the
//! scaling layers (pool, cache, wire, persist, shard) rely on but the
//! compiler cannot check. Rules work on the lexed token stream of a
//! [`SourceFile`] — never on raw text — so nothing fires inside comments,
//! strings, or char literals.
//!
//! Every rule is individually toggleable from the CLI (`--only` / `--skip`)
//! and suppressible at a site with a justified marker:
//!
//! ```text
//! // lint:allow(<rule>) <why this site is sound>
//! ```
//!
//! A marker without a justification is itself a violation (rule
//! `lint-allow`), so allowances stay auditable.

use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;

/// One finding at a site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

/// A rule's static definition.
pub struct RuleDef {
    /// Stable rule name, used in CLI toggles, markers, and the baseline.
    pub name: &'static str,
    /// One-line rationale shown by `--list-rules`.
    pub summary: &'static str,
    /// Checker over one lexed file.
    pub check: fn(&SourceFile) -> Vec<Violation>,
}

/// Every rule, in the order diagnostics are grouped.
pub const RULES: &[RuleDef] = &[
    RuleDef {
        name: "no-unordered-iter",
        summary: "HashMap/HashSet in deterministic crates (core, engine, qsim, graphs): \
                  iteration order varies per process, eroding bit-parity; use BTreeMap/BTreeSet",
        check: no_unordered_iter,
    },
    RuleDef {
        name: "bit-exact-floats",
        summary: "floats in engine::wire / engine::persist must travel through the bit-hex \
                  codec (fmt_f64/fmt_floats/to_bits), never `{}`/`{:?}`/to_string",
        check: bit_exact_floats,
    },
    RuleDef {
        name: "no-lossy-as",
        summary: "`as` casts between numeric types truncate or round silently; \
                  use try_from/From or justify the site",
        check: no_lossy_as,
    },
    RuleDef {
        name: "no-panic-lib",
        summary: "unwrap/expect/panic!/unreachable!/todo!/unimplemented! in non-test library \
                  code can kill a server loop; return errors instead",
        check: no_panic_lib,
    },
    RuleDef {
        name: "safety-comment",
        summary: "every `unsafe` must be preceded by a `// SAFETY:` comment stating the \
                  invariant that makes it sound",
        check: safety_comment,
    },
    RuleDef {
        name: "no-wallclock",
        summary: "SystemTime/Instant outside designated accounting modules: wall-clock reads \
                  in compute paths break run-to-run reproducibility",
        check: no_wallclock,
    },
];

/// Looks a rule up by name.
#[must_use]
pub fn rule_by_name(name: &str) -> Option<&'static RuleDef> {
    RULES.iter().find(|r| r.name == name)
}

/// The crates whose output must be a pure function of their inputs: the
/// engine's bit-parity guarantees (serial == parallel, sharded ==
/// unsharded, warm == cold) hold only while nothing in these crates
/// iterates a randomized-order container.
const DETERMINISTIC_CRATES: &[&str] = &[
    "crates/core/src/",
    "crates/engine/src/",
    "crates/qsim/src/",
    "crates/graphs/src/",
];

/// Files whose whole purpose is wall/latency accounting and are therefore
/// allowed to read the clock. Everything else gets flagged.
const WALLCLOCK_ALLOWED: &[&str] = &[
    // Batch/corpus/shard wall accounting (JobStats.wall, ShardStats.wall).
    "crates/engine/src/batch.rs",
    "crates/engine/src/corpus.rs",
    "crates/engine/src/shard.rs",
    // Per-tier latency accounting for the prediction service (stderr only;
    // the wire protocol itself stays clock-free).
    "crates/engine/src/server.rs",
];

/// The bit-exact float paths: everything that writes or parses `QW1` lines
/// or `QCACHE2`/`QMODEL1` files.
const BIT_EXACT_PATHS: &[&str] = &[
    "crates/engine/src/wire.rs",
    "crates/engine/src/persist.rs",
    "crates/engine/src/model.rs",
];

const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Fields/locals that carry floats in the wire/persist payload structs.
/// The rule is a lexical heuristic: an argument that mentions one of these
/// without routing through a sanctioned codec call is treated as formatting
/// a float.
const FLOAT_MARKERS: &[&str] = &[
    "expectation",
    "approximation_ratio",
    "weight",
    "gammas",
    "betas",
    "params",
    "edge_probability",
    "trend_preference_margin",
];

/// Calls that make a float bit-exact before formatting.
const FLOAT_SANCTIONED: &[&str] = &["fmt_f64", "fmt_floats", "fmt_edges", "to_bits"];

const FORMAT_MACROS: &[&str] = &[
    "format", "write", "writeln", "print", "println", "eprint", "eprintln",
];

/// Binaries may panic on unrecoverable startup errors; the `no-panic-lib`
/// rule is about *library* code reachable from long-lived loops.
fn is_binary_path(path: &str) -> bool {
    path.contains("/src/bin/") || path.ends_with("/src/main.rs")
}

fn code_toks(file: &SourceFile) -> Vec<&Tok> {
    file.toks
        .iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect()
}

fn violation(rule: &'static str, file: &SourceFile, line: usize, message: String) -> Violation {
    Violation {
        rule,
        path: file.path.clone(),
        line,
        message,
    }
}

// --- no-unordered-iter -----------------------------------------------------

fn no_unordered_iter(file: &SourceFile) -> Vec<Violation> {
    if !DETERMINISTIC_CRATES
        .iter()
        .any(|p| file.path.starts_with(p))
    {
        return Vec::new();
    }
    let mut out = Vec::new();
    for tok in &file.toks {
        if tok.kind == TokKind::Ident
            && (tok.text == "HashMap" || tok.text == "HashSet")
            && !file.is_test_line(tok.line)
        {
            out.push(violation(
                "no-unordered-iter",
                file,
                tok.line,
                format!(
                    "`{}` in a deterministic crate: iteration order varies per process; \
                     use BTreeMap/BTreeSet (or justify with lint:allow)",
                    tok.text
                ),
            ));
        }
    }
    out
}

// --- bit-exact-floats ------------------------------------------------------

fn bit_exact_floats(file: &SourceFile) -> Vec<Violation> {
    if !BIT_EXACT_PATHS.contains(&file.path.as_str()) {
        return Vec::new();
    }
    let toks = code_toks(file);
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = toks[i];
        if file.is_test_line(t.line) {
            i += 1;
            continue;
        }
        // format-like macro invocation: ident ! ( ...args... )
        if t.kind == TokKind::Ident
            && FORMAT_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            let (args, end) = macro_args(&toks, i + 2);
            for arg in &args {
                check_format_arg(file, arg, &mut out);
            }
            i = end;
            continue;
        }
        // `<float marker> ... .to_string()` within a short window.
        if t.kind == TokKind::Ident
            && t.text == "to_string"
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            let lo = i.saturating_sub(5);
            if toks[lo..i]
                .iter()
                .any(|p| p.kind == TokKind::Ident && FLOAT_MARKERS.contains(&p.text.as_str()))
            {
                out.push(violation(
                    "bit-exact-floats",
                    file,
                    t.line,
                    "float formatted via to_string() in a bit-exact path; round-trips lose \
                     bits — use fmt_f64 (IEEE-754 bit hex)"
                        .to_string(),
                ));
            }
        }
        i += 1;
    }
    out
}

/// Collects a macro invocation's top-level comma-separated argument token
/// lists, starting from the opening paren's index. Returns the args and the
/// index just past the closing paren.
fn macro_args<'a>(toks: &[&'a Tok], open: usize) -> (Vec<Vec<&'a Tok>>, usize) {
    let mut args: Vec<Vec<&'a Tok>> = vec![Vec::new()];
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        let t = toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
            if depth > 1 {
                if let Some(a) = args.last_mut() {
                    a.push(t);
                }
            }
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return (args, i + 1);
            }
            if let Some(a) = args.last_mut() {
                a.push(t);
            }
        } else if depth == 1 && t.is_punct(',') {
            args.push(Vec::new());
        } else if depth >= 1 {
            if let Some(a) = args.last_mut() {
                a.push(t);
            }
        }
        i += 1;
    }
    (args, i)
}

fn check_format_arg(file: &SourceFile, arg: &[&Tok], out: &mut Vec<Violation>) {
    if arg.is_empty() {
        return;
    }
    // The format string itself: flag float format specs (`{:.3}`, `{:e}`)
    // and inline captures of float-marker names (`{expectation}`).
    if arg.len() == 1 && arg[0].kind == TokKind::Str {
        let text = &arg[0].text;
        if text.contains("{:.") || text.contains("{:e}") || text.contains("{:E}") {
            out.push(violation(
                "bit-exact-floats",
                file,
                arg[0].line,
                "float format spec in a bit-exact path: decimal formatting loses bits — \
                 use fmt_f64 (IEEE-754 bit hex)"
                    .to_string(),
            ));
        }
        for marker in FLOAT_MARKERS {
            if text.contains(&format!("{{{marker}}}")) || text.contains(&format!("{{{marker}:")) {
                out.push(violation(
                    "bit-exact-floats",
                    file,
                    arg[0].line,
                    format!(
                        "float `{marker}` captured directly in a format string in a bit-exact \
                         path — use fmt_f64 (IEEE-754 bit hex)"
                    ),
                ));
            }
        }
        return;
    }
    // An expression argument: mentions a float marker without routing it
    // through the bit-hex codec.
    let mentions = arg
        .iter()
        .find(|t| t.kind == TokKind::Ident && FLOAT_MARKERS.contains(&t.text.as_str()));
    let sanctioned = arg
        .iter()
        .any(|t| t.kind == TokKind::Ident && FLOAT_SANCTIONED.contains(&t.text.as_str()));
    if let Some(m) = mentions {
        if !sanctioned {
            out.push(violation(
                "bit-exact-floats",
                file,
                m.line,
                format!(
                    "float `{}` formatted without the bit-hex codec in a bit-exact path — \
                     wrap in fmt_f64/fmt_floats (IEEE-754 bit hex)",
                    m.text
                ),
            ));
        }
    }
}

// --- no-lossy-as -----------------------------------------------------------

fn no_lossy_as(file: &SourceFile) -> Vec<Violation> {
    let toks = code_toks(file);
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = toks[i];
        if t.is_ident("as") && !file.is_test_line(t.line) {
            if let Some(next) = toks.get(i + 1) {
                if next.kind == TokKind::Ident && NUMERIC_TYPES.contains(&next.text.as_str()) {
                    let from = if i > 0 && toks[i - 1].kind != TokKind::Punct {
                        format!("`{}` ", toks[i - 1].text)
                    } else {
                        String::new()
                    };
                    out.push(violation(
                        "no-lossy-as",
                        file,
                        t.line,
                        format!(
                            "{from}cast via `as {}` can truncate/round silently — use \
                             try_from/From, or lint:allow with a justification for a \
                             provably value-preserving widening",
                            next.text
                        ),
                    ));
                }
            }
        }
    }
    out
}

// --- no-panic-lib ----------------------------------------------------------

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn no_panic_lib(file: &SourceFile) -> Vec<Violation> {
    if is_binary_path(&file.path) {
        return Vec::new();
    }
    let toks = code_toks(file);
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = toks[i];
        if file.is_test_line(t.line) || t.kind != TokKind::Ident {
            continue;
        }
        let is_method_call = |name: &str| {
            t.text == name
                && i >= 1
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        };
        if is_method_call("unwrap") || is_method_call("expect") {
            out.push(violation(
                "no-panic-lib",
                file,
                t.line,
                format!(
                    ".{}() in library code: a panic here kills the worker/server loop — \
                     return an error (or lint:allow with an invariant justification)",
                    t.text
                ),
            ));
        } else if PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(violation(
                "no-panic-lib",
                file,
                t.line,
                format!(
                    "{}! in library code: prefer a typed error so callers (and the job \
                     server's failure policy) can recover",
                    t.text
                ),
            ));
        }
    }
    out
}

// --- safety-comment --------------------------------------------------------

fn safety_comment(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, tok) in file.toks.iter().enumerate() {
        if !(tok.kind == TokKind::Ident && tok.text == "unsafe") {
            continue;
        }
        // A `// SAFETY: ...` comment ending at most two lines above (blank
        // lines and attributes may intervene) satisfies the rule.
        let documented = file.toks[..idx].iter().rev().take(8).any(|p| {
            p.kind == TokKind::Comment
                && p.text.contains("SAFETY:")
                && p.end_line + 2 >= tok.line
                && p.end_line <= tok.line
        });
        if !documented {
            out.push(violation(
                "safety-comment",
                file,
                tok.line,
                "`unsafe` without a preceding `// SAFETY:` comment — state the invariant \
                 that makes this sound, or remove the block"
                    .to_string(),
            ));
        }
    }
    out
}

// --- no-wallclock ----------------------------------------------------------

fn no_wallclock(file: &SourceFile) -> Vec<Violation> {
    if WALLCLOCK_ALLOWED.contains(&file.path.as_str()) || file.path.starts_with("crates/bench/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for tok in &file.toks {
        if tok.kind == TokKind::Ident
            && (tok.text == "Instant" || tok.text == "SystemTime")
            && !file.is_test_line(tok.line)
        {
            out.push(violation(
                "no-wallclock",
                file,
                tok.line,
                format!(
                    "`{}` outside the designated accounting modules: wall-clock reads in \
                     compute paths make runs irreproducible — thread timing through the \
                     caller's report structs instead",
                    tok.text
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(rule: &str, path: &str, src: &str) -> Vec<Violation> {
        let file = SourceFile::new(path, src);
        let def = rule_by_name(rule).expect("rule exists");
        (def.check)(&file)
    }

    #[test]
    fn unordered_iter_scopes_to_deterministic_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            check("no-unordered-iter", "crates/engine/src/x.rs", src).len(),
            1
        );
        assert_eq!(
            check("no-unordered-iter", "crates/ml/src/x.rs", src).len(),
            0
        );
        // Mention in a comment or string never fires.
        let quiet = "// HashMap\nlet s = \"HashSet\";\n";
        assert_eq!(
            check("no-unordered-iter", "crates/core/src/x.rs", quiet).len(),
            0
        );
    }

    #[test]
    fn lossy_as_flags_numeric_casts_only() {
        let src = "let a = x as u32;\nuse foo as bar;\nlet b = y as f64;\nlet p = q as Box;\n";
        let v = check("no-lossy-as", "crates/engine/src/x.rs", src);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 3);
    }

    #[test]
    fn panic_lib_matches_calls_not_idents() {
        let src = "\
fn f() {\n\
    let a = b.unwrap();\n\
    let c = d.expect(\"reason\");\n\
    let e = expect_fields(x);\n\
    let f = m.unwrap_or(3);\n\
    std::panic::catch_unwind(g);\n\
    panic!(\"boom\");\n\
}\n";
        let v = check("no-panic-lib", "crates/engine/src/x.rs", src);
        let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![2, 3, 7]);
    }

    #[test]
    fn panic_lib_skips_tests_and_bins() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(check("no-panic-lib", "crates/engine/src/x.rs", src).is_empty());
        let lib = "fn f() { x.unwrap(); }\n";
        assert!(check("no-panic-lib", "crates/bench/src/bin/table1.rs", lib).is_empty());
        assert_eq!(
            check("no-panic-lib", "crates/bench/src/cli.rs", lib).len(),
            1
        );
    }

    #[test]
    fn safety_comment_requires_nearby_marker() {
        let bad = "fn f() {\n    unsafe { std::hint::unreachable_unchecked() }\n}\n";
        assert_eq!(
            check("safety-comment", "crates/qsim/src/x.rs", bad).len(),
            1
        );
        let good =
            "fn f() {\n    // SAFETY: the index is bounds-checked above.\n    unsafe { q() }\n}\n";
        assert!(check("safety-comment", "crates/qsim/src/x.rs", good).is_empty());
        let far = "fn f() {\n    // SAFETY: too far away.\n\n\n\n    unsafe { q() }\n}\n";
        assert_eq!(
            check("safety-comment", "crates/qsim/src/x.rs", far).len(),
            1
        );
    }

    #[test]
    fn wallclock_respects_allowlist() {
        let src = "use std::time::Instant;\nlet t = Instant::now();\n";
        assert_eq!(
            check("no-wallclock", "crates/engine/src/pool.rs", src).len(),
            2
        );
        assert!(check("no-wallclock", "crates/engine/src/batch.rs", src).is_empty());
        assert!(check("no-wallclock", "crates/bench/src/cli.rs", src).is_empty());
    }

    #[test]
    fn bit_exact_floats_heuristics() {
        let path = "crates/engine/src/wire.rs";
        // Unsanctioned float field in a format arg.
        let bad = "fn e(r: &R) -> String { format!(\"{} {}\", r.graph_id, r.expectation) }\n";
        assert_eq!(check("bit-exact-floats", path, bad).len(), 1);
        // Routed through the codec: clean.
        let good =
            "fn e(r: &R) -> String { format!(\"{} {}\", r.graph_id, fmt_f64(r.expectation)) }\n";
        assert!(check("bit-exact-floats", path, good).is_empty());
        // Inline capture and precision specs.
        let capture = "fn e() -> String { format!(\"{expectation}\") }\n";
        assert_eq!(check("bit-exact-floats", path, capture).len(), 1);
        let precision = "fn e(x: f64) -> String { format!(\"{:.17}\", x.to_bits()) }\n";
        assert_eq!(check("bit-exact-floats", path, precision).len(), 1);
        // to_string on a float marker.
        let tostr = "fn e(r: &R) -> String { r.expectation.to_string() }\n";
        assert_eq!(check("bit-exact-floats", path, tostr).len(), 1);
        // Other files are out of scope.
        assert!(check("bit-exact-floats", "crates/engine/src/batch.rs", bad).is_empty());
    }
}
