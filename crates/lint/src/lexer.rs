//! A minimal hand-written Rust lexer, just deep enough for lint rules.
//!
//! The lexer's single job is to let rules match *code* tokens without ever
//! firing inside the places a naive text grep would: line comments, block
//! comments (which nest in Rust), string literals, raw string literals
//! (with any number of `#` guards), byte strings, char literals, and
//! lifetimes (`'a` is not an unterminated char). It does **not** parse —
//! rules work on the flat token stream plus line numbers.
//!
//! Comments are *kept* as tokens rather than skipped, because two rules
//! read them: `safety-comment` looks for `// SAFETY:` ahead of `unsafe`,
//! and the suppression scanner looks for `lint:allow(...)` markers.

/// What a token is. Every token also carries its source text and line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `as`, `unsafe`, `unwrap`, ...).
    Ident,
    /// A `//...` line comment or `/*...*/` block comment (doc comments
    /// included).
    Comment,
    /// A string literal of any flavor: `"..."`, `r"..."`, `r#"..."#`,
    /// `b"..."`, `br#"..."#`. The text includes the delimiters.
    Str,
    /// A char or byte literal: `'a'`, `'\''`, `b'x'`.
    Char,
    /// A lifetime: `'a`, `'static`, `'_`.
    Lifetime,
    /// A numeric literal, suffix included: `42`, `0xFFu64`, `1_000`, `1e-3`.
    Num,
    /// Any single punctuation/operator character.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token classification.
    pub kind: TokKind,
    /// The token's source text, delimiters included.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based line of the token's last character (block comments and
    /// multi-line strings span lines).
    pub end_line: usize,
}

impl Tok {
    /// `true` when this is an `Ident` token spelling exactly `name`.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// `true` when this is a `Punct` token spelling exactly `ch`.
    #[must_use]
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }
}

/// Lexes `source` into a flat token stream. Whitespace is dropped;
/// everything else (comments included) becomes a token. The lexer never
/// fails: a malformed tail (e.g. an unterminated string at EOF) is consumed
/// as the final token of its opened kind, which is the forgiving behavior a
/// lint wants when scanning work-in-progress code.
#[must_use]
pub fn lex(source: &str) -> Vec<Tok> {
    let bytes = source.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let start = i;
        let start_line = line;
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                push(
                    &mut toks,
                    TokKind::Comment,
                    source,
                    start,
                    i,
                    start_line,
                    line,
                );
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comments nest in Rust: track depth.
                i += 2;
                let mut depth = 1usize;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                push(
                    &mut toks,
                    TokKind::Comment,
                    source,
                    start,
                    i,
                    start_line,
                    line,
                );
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                i = consume_raw_string(bytes, i, &mut line);
                push(&mut toks, TokKind::Str, source, start, i, start_line, line);
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                i = consume_string(bytes, i + 1, &mut line);
                push(&mut toks, TokKind::Str, source, start, i, start_line, line);
            }
            b'b' if bytes.get(i + 1) == Some(&b'\'') => {
                i = consume_char(bytes, i + 1);
                push(&mut toks, TokKind::Char, source, start, i, start_line, line);
            }
            b'"' => {
                i = consume_string(bytes, i, &mut line);
                push(&mut toks, TokKind::Str, source, start, i, start_line, line);
            }
            b'\'' => {
                // Char literal or lifetime. `'a'` is a char; `'a` (no
                // closing quote after one ident) is a lifetime; `'\''` and
                // any escape are chars.
                if is_char_literal(bytes, i) {
                    i = consume_char(bytes, i);
                    push(&mut toks, TokKind::Char, source, start, i, start_line, line);
                } else {
                    i += 1;
                    while i < bytes.len() && is_ident_char(bytes[i]) {
                        i += 1;
                    }
                    push(
                        &mut toks,
                        TokKind::Lifetime,
                        source,
                        start,
                        i,
                        start_line,
                        line,
                    );
                }
            }
            c if c.is_ascii_digit() => {
                i = consume_number(bytes, i);
                push(&mut toks, TokKind::Num, source, start, i, start_line, line);
            }
            c if is_ident_start(c) => {
                while i < bytes.len() && is_ident_char(bytes[i]) {
                    i += 1;
                }
                push(
                    &mut toks,
                    TokKind::Ident,
                    source,
                    start,
                    i,
                    start_line,
                    line,
                );
            }
            _ => {
                // One punct char per token keeps rule matching simple
                // (`::`, `->` etc. arrive as two tokens).
                i += 1;
                push(
                    &mut toks,
                    TokKind::Punct,
                    source,
                    start,
                    i,
                    start_line,
                    line,
                );
            }
        }
    }
    toks
}

fn push(
    toks: &mut Vec<Tok>,
    kind: TokKind,
    source: &str,
    start: usize,
    end: usize,
    start_line: usize,
    end_line: usize,
) {
    toks.push(Tok {
        kind,
        text: source[start..end].to_string(),
        line: start_line,
        end_line,
    });
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// `r"`, `r#`, `br"`, `br#` open raw strings (with `b` handled by letting
/// `r` follow it).
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let j = if bytes[i] == b'b' { i + 1 } else { i };
    bytes.get(j) == Some(&b'r')
        && matches!(bytes.get(j + 1), Some(&b'"') | Some(&b'#'))
        // `r#ident` is a raw identifier, not a raw string: require the
        // hashes (if any) to be followed by a quote.
        && {
            let mut k = j + 1;
            while bytes.get(k) == Some(&b'#') {
                k += 1;
            }
            bytes.get(k) == Some(&b'"')
        }
}

/// Consumes `r#"..."#`-style raw strings: count opening hashes, then scan
/// for a quote followed by that many hashes. No escapes exist in raw
/// strings (that is their point), so `"` with too few hashes stays inside.
fn consume_raw_string(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    if bytes[i] == b'b' {
        i += 1;
    }
    i += 1; // the `r`
    let mut hashes = 0;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // the opening quote
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
        }
        if bytes[i] == b'"' {
            let mut k = 0;
            while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Consumes a `"..."` string starting at the opening quote, honoring `\"`
/// and `\\` escapes and counting embedded newlines.
fn consume_string(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Decides `'` ambiguity: a char literal closes with `'` after one
/// (possibly escaped) character; a lifetime does not.
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(&b'\\') => true, // `'\n'`, `'\''`, `'\u{..}'` — always a char
        Some(&c) if is_ident_char(c) => {
            // `'a'` char vs `'a` / `'abc` lifetime: scan the ident run and
            // look for the closing quote.
            let mut j = i + 1;
            while matches!(bytes.get(j), Some(&c) if is_ident_char(c)) {
                j += 1;
            }
            bytes.get(j) == Some(&b'\'')
        }
        // `'('` and friends: a one-symbol char literal.
        Some(_) => bytes.get(i + 2) == Some(&b'\''),
        None => false,
    }
}

/// Consumes a char/byte literal starting at the opening quote.
fn consume_char(bytes: &[u8], mut i: usize) -> usize {
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Consumes a numeric literal: digits, `_` separators, base prefixes,
/// a fraction/exponent, and any type suffix (`u64`, `f32`, ...). Greedy
/// enough that `0xFFu64` or `1e-3` never leak an `Ident` token.
fn consume_number(bytes: &[u8], mut i: usize) -> usize {
    i += 1;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' {
            // `1..5` is a range, not a float with a trailing dot-dot.
            if c == b'.' && bytes.get(i + 1) == Some(&b'.') {
                break;
            }
            // `1.method()` — a dot followed by an ident start is a call.
            if c == b'.' && matches!(bytes.get(i + 1), Some(&c) if is_ident_start(c)) {
                break;
            }
            // `1e-3` / `1E+7`: let the exponent sign through.
            if (c == b'e' || c == b'E')
                && matches!(bytes.get(i + 1), Some(&b'-') | Some(&b'+'))
                && matches!(bytes.get(i + 2), Some(&d) if d.is_ascii_digit())
            {
                i += 2;
                continue;
            }
            i += 1;
        } else {
            break;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn code_inside_comments_is_not_ident() {
        let src = "// HashMap here\nlet x = 1; /* unwrap() too /* nested unwrap */ still */ real";
        assert_eq!(idents(src), vec!["let", "x", "real"]);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let toks = lex("/* a /* b /* c */ b */ a */ after");
        assert_eq!(toks[0].kind, TokKind::Comment);
        assert!(toks[1].is_ident("after"));
    }

    #[test]
    fn raw_strings_with_hashes_contain_quotes() {
        let src = r####"let s = r#"an "inner" quote and HashMap"#; tail"####;
        let toks = lex(src);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("inner"));
        assert!(toks.last().is_some_and(|t| t.is_ident("tail")));
        assert!(idents(src).iter().all(|i| i != "HashMap"));
    }

    #[test]
    fn raw_string_needs_matching_hash_count() {
        // The single `"#` inside does not close an `r##"..."##` string.
        let src = "r##\"has \"# inside\"## end";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::Str);
        assert!(toks[0].text.contains("inside"));
        assert!(toks[1].is_ident("end"));
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let toks = lex("let r#type = 1;");
        // `r#type` lexes as ident `r`, punct `#`, ident `type` — crude but
        // never swallows code as a string.
        assert!(toks.iter().any(|t| t.is_ident("type")));
    }

    #[test]
    fn char_vs_lifetime_disambiguation() {
        let toks =
            lex("let c: char = 'a'; fn f<'a>(x: &'a str) {} let q = '\\''; let s = 'static_x;");
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, vec!["'a'", "'\\''"]);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static_x"]);
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let toks = lex(r#"let s = "she said \"unwrap\" loudly"; done"#);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            1,
            "escaped quotes must not split the string"
        );
        assert!(toks.last().is_some_and(|t| t.is_ident("done")));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = lex(r##"let b = b"bytes with HashMap"; let c = b'x'; let r = br#"raw"#;"##);
        assert!(idents(r#"let b = b"bytes with HashMap";"#)
            .iter()
            .all(|i| i != "HashMap"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "b'x'"));
    }

    #[test]
    fn numeric_literals_do_not_leak_idents() {
        // `0xFFu64`, `1_000usize`, `1e-3` must each be one Num token — the
        // `u64`/`usize`/`e` parts are suffixes, not idents the `no-lossy-as`
        // rule could mistake for a cast target.
        let toks = lex("let a = 0xFFu64; let b = 1_000usize; let c = 1e-3; let d = 1..5;");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0xFFu64", "1_000usize", "1e-3", "1", "5"]);
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "line1\n/* spans\nthree\nlines */ after\n\"multi\nline string\" tail";
        let toks = lex(src);
        let after = toks.iter().find(|t| t.is_ident("after")).expect("after");
        assert_eq!(after.line, 4);
        let tail = toks.iter().find(|t| t.is_ident("tail")).expect("tail");
        assert_eq!(tail.line, 6);
        let comment = &toks[1];
        assert_eq!((comment.line, comment.end_line), (2, 4));
    }

    #[test]
    fn lifetime_in_generics_vs_char_in_match() {
        let toks = lex("match c { 'x' => 1, _ => 2 }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "'x'"));
        let toks = lex("impl<'de> Deserialize<'de> for T {}");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
    }
}
