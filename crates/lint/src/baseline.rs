//! The ratchet baseline: committed per-rule, per-file violation counts.
//!
//! The workspace predates the lint, so hundreds of sites (mostly
//! `unwrap()`s and numeric `as` casts in math code) already violate rules
//! that matter most for *new* code. Failing on all of them would bury the
//! signal; silently allowing them would let the counts grow. The ratchet
//! does neither:
//!
//! - a `(rule, file)` count **above** its baselined count fails the run
//!   (new violations are never free);
//! - a count **below** the baseline is reported as tightenable — CI
//!   separately asserts `--update-baseline` produces no diff, so a fix
//!   must also ratchet the committed file down (it can never quietly creep
//!   back up);
//! - `--update-baseline` rewrites the file to the current counts.
//!
//! The file is a deliberately tiny TOML subset — `[rule]` tables mapping
//! quoted paths to integer counts — parsed and written by hand so the
//! lint stays dependency-free (the workspace's vendored `serde` is a
//! no-op stand-in). Output is sorted, so regeneration is deterministic
//! and diffs are meaningful.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Counts per rule per path. `BTreeMap` end to end: serialization order is
/// the iteration order, which must be stable for the CI no-diff check.
pub type Counts = BTreeMap<String, BTreeMap<String, usize>>;

/// A baseline parse problem (the file is hand-edited, so diagnostics
/// matter).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError {
    /// 1-based line of the problem.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BaselineError {}

const HEADER: &str = "\
# qaoa-lint ratchet baseline: per-rule, per-file counts of pre-existing
# violations. A run fails when any count here is exceeded; lowering a count
# requires regenerating this file (CI asserts it matches exactly).
#
# Regenerate: cargo run --release -p lint --bin qaoa-lint -- --workspace --update-baseline
";

/// Parses baseline text.
///
/// # Errors
///
/// Rejects lines that are not blank, a `#` comment, a `[rule]` header, or a
/// `"path" = count` entry under a header.
pub fn parse(text: &str) -> Result<Counts, BaselineError> {
    let mut counts: Counts = BTreeMap::new();
    let mut current: Option<String> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rule) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            if rule.trim().is_empty() {
                return Err(BaselineError {
                    line: lineno,
                    message: "empty rule name".into(),
                });
            }
            current = Some(rule.trim().to_string());
            counts.entry(rule.trim().to_string()).or_default();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(BaselineError {
                line: lineno,
                message: format!("expected `\"path\" = count`, got `{line}`"),
            });
        };
        let Some(rule) = current.clone() else {
            return Err(BaselineError {
                line: lineno,
                message: "entry before any [rule] header".into(),
            });
        };
        let path = key.trim();
        let path = path
            .strip_prefix('"')
            .and_then(|p| p.strip_suffix('"'))
            .ok_or(BaselineError {
                line: lineno,
                message: format!("path must be double-quoted, got `{path}`"),
            })?;
        let count: usize = value.trim().parse().map_err(|e| BaselineError {
            line: lineno,
            message: format!("bad count `{}`: {e}", value.trim()),
        })?;
        if count == 0 {
            return Err(BaselineError {
                line: lineno,
                message: "zero counts are omitted, not written".into(),
            });
        }
        counts
            .entry(rule)
            .or_default()
            .insert(path.to_string(), count);
    }
    Ok(counts)
}

/// Serializes counts in the canonical (sorted, zero-free) form.
#[must_use]
pub fn serialize(counts: &Counts) -> String {
    let mut out = String::from(HEADER);
    for (rule, files) in counts {
        let files: Vec<_> = files.iter().filter(|(_, &c)| c > 0).collect();
        if files.is_empty() {
            continue;
        }
        let _ = writeln!(out, "\n[{rule}]");
        for (path, count) in files {
            let _ = writeln!(out, "\"{path}\" = {count}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_canonical() {
        let mut counts: Counts = BTreeMap::new();
        counts
            .entry("no-panic-lib".into())
            .or_default()
            .insert("crates/engine/src/cache.rs".into(), 7);
        counts
            .entry("no-lossy-as".into())
            .or_default()
            .insert("crates/core/src/eval.rs".into(), 2);
        let text = serialize(&counts);
        let back = parse(&text).expect("parses");
        assert_eq!(back, counts);
        // Canonical: serializing the parse reproduces the text.
        assert_eq!(serialize(&back), text);
        // Rules sorted alphabetically in output.
        let a = text.find("[no-lossy-as]").expect("present");
        let b = text.find("[no-panic-lib]").expect("present");
        assert!(a < b);
    }

    #[test]
    fn empty_rules_and_zero_counts_are_dropped() {
        let mut counts: Counts = BTreeMap::new();
        counts.entry("safety-comment".into()).or_default();
        counts
            .entry("no-panic-lib".into())
            .or_default()
            .insert("a.rs".into(), 0);
        let text = serialize(&counts);
        assert!(!text.contains("safety-comment"));
        assert!(!text.contains("a.rs"));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("\"a.rs\" = 3\n").is_err(), "entry before header");
        assert!(parse("[r]\na.rs = 3\n").is_err(), "unquoted path");
        assert!(parse("[r]\n\"a.rs\" = x\n").is_err(), "bad count");
        assert!(parse("[r]\n\"a.rs\" = 0\n").is_err(), "zero count");
        assert!(parse("[]\n").is_err(), "empty rule");
        assert!(parse("nonsense\n").is_err());
        assert!(parse("# just a comment\n\n").expect("ok").is_empty());
    }
}
