//! Concurrent depth-1 optimum cache keyed by canonical graph class and
//! restart count.
//!
//! The paper's pipelines re-optimize the cheap `p = 1` instance for every
//! graph, but QAOA landscapes are invariant under graph isomorphism — all
//! graphs in one canonical class (see [`qaoa::canonical::graph_key`]) share
//! their depth-1 optimum. This cache memoizes that optimum per
//! [`Level1Key`] — the canonical class *plus* the multistart restarts
//! count, since the best-of-`restarts` optimum also depends on how many
//! starts the solve draws — so the cached paths — corpus generation
//! ([`crate::corpus`]), depth-1 batch jobs, and
//! [`Engine::run_two_level_batch`](crate::Engine::run_two_level_batch)
//! — never solve the same `(class, restarts)` pair twice, and jobs with
//! different restart counts never serve each other's bits. (The Table-I
//! sweep in [`crate::compare`] deliberately bypasses the cache: its
//! contract is bit-parity with the serial `evaluation::compare`, whose
//! protocol re-optimizes level 1 per graph.)
//!
//! **Single-flight misses:** concurrent misses on one class are collapsed
//! to a single solve. The first thread to miss publishes an in-flight slot
//! (while still holding the shard lock, so publication is race-free) and
//! computes; latecomers block on the slot's lock and read the finished
//! value as a hit. This makes the hit/miss counts — not just the cached
//! values — a pure function of the job queue, identical at any worker
//! count and under any schedule, and never spends two solves on one class.
//! (The values were already schedule-independent: the engine seeds every
//! depth-1 solve from the canonical class hash and runs it on the canonical
//! representative graph.)

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::seed;

use qaoa::canonical::CanonicalGraphKey;
use qaoa::{InstanceOutcome, QaoaError};

const SHARDS: usize = 16;

/// The cache key: a canonical graph class together with the multistart
/// restarts count its depth-1 optimum was (or will be) computed with.
///
/// A cached optimum is a pure function of `(master seed, class, restarts)`
/// — the engine seeds the solve RNG from the class hash *and* the restarts
/// count — so two jobs over isomorphic graphs share an entry only when
/// their restart counts also agree. Keeping `restarts` in the key (rather
/// than scoping a whole cache to one value) lets one cache — in memory or
/// persisted via [`crate::persist`] — serve a job server or a sequence of
/// runs that mix restart counts, without ever conflating their results.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Level1Key {
    /// Canonical isomorphism class of the problem graph.
    pub class: CanonicalGraphKey,
    /// Random multistart count of the solve.
    pub restarts: usize,
}

impl Level1Key {
    /// Convenience constructor.
    #[must_use]
    pub fn new(class: CanonicalGraphKey, restarts: usize) -> Self {
        Self { class, restarts }
    }
}

/// A published cache slot: `None` while its solve is in flight (the solver
/// holds the lock for the duration), `Some` once finished.
type Slot = Arc<Mutex<Option<InstanceOutcome>>>;

/// One shard's map. Ordered (`BTreeMap`, not `HashMap`) so that any future
/// per-shard iteration is deterministic by construction, not by an extra
/// sort — the workspace-wide `no-unordered-iter` policy.
type Shard = BTreeMap<Level1Key, Slot>;

/// Locks a shard, recovering the map on poisoning. Every critical section
/// here is a plain map get/insert/remove — nothing is ever half-written
/// under the lock (leaders solve *outside* it) — so a panicking peer
/// cannot leave state a recovered reader could misread, and one panicked
/// worker must not wedge the whole server's cache.
fn lock_shard(m: &Mutex<Shard>) -> MutexGuard<'_, Shard> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Sharded concurrent map from `(canonical graph class, restarts)` to the
/// depth-1 optimum, with single-flight miss handling.
#[derive(Debug)]
pub struct Level1Cache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl Level1Cache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    fn shard(&self, key: &Level1Key) -> &Mutex<Shard> {
        let h = key.class.hash64().wrapping_add(seed::wide(key.restarts));
        let idx = usize::try_from(h % seed::wide(SHARDS)).unwrap_or(0);
        &self.shards[idx]
    }

    /// Returns the cached depth-1 outcome for `key`, computing and
    /// inserting it via `solve` on a miss. The boolean is `true` on a hit.
    ///
    /// Exactly one caller solves each key: the first to miss runs `solve`
    /// (without holding the shard lock, so other keys proceed
    /// concurrently); concurrent callers for the same key wait for that
    /// solve and observe a hit.
    ///
    /// # Errors
    ///
    /// Propagates `solve` errors. Nothing is cached on error; waiting
    /// callers retry the solve themselves.
    pub fn get_or_solve(
        &self,
        key: &Level1Key,
        solve: impl FnOnce() -> Result<InstanceOutcome, QaoaError>,
    ) -> Result<(InstanceOutcome, bool), QaoaError> {
        // Option-wrapped so the retry loop can prove to the borrow checker
        // that the FnOnce runs at most once (the leader path always
        // returns).
        let mut solve = Some(solve);
        loop {
            // Fast path: an existing slot (finished or in flight) —
            // allocation-free.
            let existing = lock_shard(self.shard(key)).get(key).cloned();
            let slot = match existing {
                Some(slot) => slot,
                None => {
                    // Slow path: publish a fresh slot locked by us,
                    // re-checking under the shard lock (another thread may
                    // have published one meanwhile). The slot guard is
                    // acquired *before* the shard lock is released so no
                    // latecomer can observe an unlocked empty slot.
                    let fresh: Slot = Arc::new(Mutex::new(None));
                    let (slot, leader_guard) = {
                        let mut shard = lock_shard(self.shard(key));
                        match shard.get(key) {
                            Some(raced) => (raced.clone(), None),
                            None => {
                                // lint:allow(no-panic-lib) `fresh` was allocated two lines up and never shared: try_lock cannot contend
                                let guard = fresh.try_lock().expect("freshly created slot");
                                shard.insert(key.clone(), fresh.clone());
                                // Extend the guard's borrow past the clone.
                                (fresh.clone(), Some(guard))
                            }
                        }
                    };
                    if let Some(mut guard) = leader_guard {
                        // Leader: solve while latecomers block on the slot.
                        // lint:allow(no-panic-lib) the leader branch is entered at most once per call: `solve` is still present
                        let solve = solve.take().expect("solve intact on leader path");
                        match solve() {
                            Ok(outcome) => {
                                self.misses.fetch_add(1, Ordering::Relaxed);
                                *guard = Some(outcome.clone());
                                return Ok((outcome, false));
                            }
                            Err(e) => {
                                // Withdraw the slot so future attempts
                                // re-solve.
                                self.withdraw(key, &slot);
                                return Err(e);
                            }
                        }
                    }
                    slot
                }
            };

            // Follower: block until the leader finishes, then read. A
            // poisoned slot means the leader *panicked* mid-solve; treat it
            // exactly like a failed solve (the value is still `None`).
            let finished = match slot.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            if let Some(outcome) = finished.as_ref() {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((outcome.clone(), true));
            }
            drop(finished);
            // The leader failed. On an `Err` it withdraws the slot itself;
            // after a panic the abandoned slot would wedge the key forever,
            // so withdraw it here too (idempotent) and retry from scratch.
            self.withdraw(key, &slot);
        }
    }

    /// Removes `slot`'s entry for `key`, if — and only if — the map still
    /// holds that exact slot. A replacement slot published by a newer
    /// leader must survive, else its in-flight solve would be duplicated.
    fn withdraw(&self, key: &Level1Key, slot: &Slot) {
        let mut shard = lock_shard(self.shard(key));
        if shard.get(key).is_some_and(|s| Arc::ptr_eq(s, slot)) {
            shard.remove(key);
        }
    }

    /// Returns the *finished* outcome for `key`, if any, without solving
    /// and without touching the hit/miss counters — the tier probe used by
    /// the prediction service ([`crate::server`]), which must decide
    /// cheaply whether a class is already solved rather than trigger a
    /// solve. An in-flight (being-solved) entry reads as absent instead of
    /// blocking on its leader.
    #[must_use]
    pub fn peek(&self, key: &Level1Key) -> Option<InstanceOutcome> {
        let slot = lock_shard(self.shard(key)).get(key).cloned()?;
        let finished = match slot.try_lock() {
            Ok(guard) => guard.clone(),
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner().clone(),
            Err(std::sync::TryLockError::WouldBlock) => None,
        };
        finished
    }

    /// Inserts a finished outcome for `key` without touching the hit/miss
    /// counters — the pre-warming path used by cache persistence
    /// ([`crate::persist`]). An existing entry (finished or in flight) is
    /// kept: by the determinism contract every solve of one key produces
    /// the same bits, so whichever value is already there is the right one.
    /// Returns `true` when the entry was actually inserted.
    pub fn insert(&self, key: Level1Key, outcome: InstanceOutcome) -> bool {
        let mut shard = lock_shard(self.shard(&key));
        if shard.contains_key(&key) {
            return false;
        }
        shard.insert(key, Arc::new(Mutex::new(Some(outcome))));
        true
    }

    /// Unions every finished entry of `other` into this cache (existing
    /// entries win — by the determinism contract both sides hold the same
    /// bits). Hit/miss counters are untouched. Returns the number of
    /// entries actually inserted.
    ///
    /// This is the shard-merge primitive: [`crate::shard`] forwards a
    /// coordinator cache into each per-shard engine and folds the shard
    /// caches back, so isomorphic classes spanning shard boundaries are
    /// solved once per run instead of once per shard.
    pub fn merge_from(&self, other: &Level1Cache) -> usize {
        let mut inserted = 0;
        for (key, outcome) in other.snapshot() {
            if self.insert(key, outcome) {
                inserted += 1;
            }
        }
        inserted
    }

    /// A snapshot of every *finished* entry, sorted by key for
    /// deterministic iteration.
    ///
    /// Slots whose lock is held at the moment of the scan are skipped
    /// rather than waited on. The holder is usually a leader mid-solve
    /// (arbitrarily long — blocking here is not an option, and waiting
    /// would also invert the shard→slot lock order the leader's error path
    /// uses, risking deadlock), but a concurrent *hit* also holds the lock
    /// for the microseconds it takes to clone the value — so a snapshot
    /// taken while a batch is executing may miss a few finished entries.
    /// Take snapshots between batches (as the drivers do) for an exact
    /// view; a mid-batch snapshot is merely conservative, never wrong.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(Level1Key, InstanceOutcome)> {
        let mut entries = Vec::new();
        for shard in &self.shards {
            for (key, slot) in lock_shard(shard).iter() {
                // A poisoned (panicked-leader) slot still holds `None`.
                let finished = match slot.try_lock() {
                    Ok(guard) => guard.clone(),
                    Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner().clone(),
                    Err(std::sync::TryLockError::WouldBlock) => None,
                };
                if let Some(outcome) = finished {
                    entries.push((key.clone(), outcome));
                }
            }
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (i.e. solves) so far.
    #[must_use]
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct `(class, restarts)` entries held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).len()).sum()
    }

    /// `true` when nothing has been cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and zeroes the hit/miss counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            lock_shard(shard).clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

impl Default for Level1Cache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use optimize::Termination;
    use qaoa::canonical::graph_key;

    fn fake_outcome(tag: f64) -> InstanceOutcome {
        InstanceOutcome {
            params: vec![tag, tag],
            expectation: tag,
            approximation_ratio: 1.0,
            function_calls: 3,
            gradient_calls: 0,
            termination: Termination::FtolSatisfied,
        }
    }

    /// Cache key for `g` at the tests' default restarts count.
    fn k(g: &graphs::Graph) -> Level1Key {
        Level1Key::new(graph_key(g), 2)
    }

    #[test]
    fn miss_then_hit() {
        let cache = Level1Cache::new();
        let key = k(&generators::cycle(5));
        let (first, hit) = cache.get_or_solve(&key, || Ok(fake_outcome(1.0))).unwrap();
        assert!(!hit);
        assert_eq!(first.expectation, 1.0);
        // Second lookup must not invoke the solver.
        let (second, hit) = cache
            .get_or_solve(&key, || panic!("should not solve"))
            .unwrap();
        assert!(hit);
        assert_eq!(second.expectation, 1.0);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
    }

    #[test]
    fn isomorphic_keys_share_an_entry() {
        let cache = Level1Cache::new();
        let a = generators::cycle(6);
        // Same cycle with relabeled vertices.
        let b = graphs::Graph::from_edges(6, &[(2, 4), (4, 0), (0, 5), (5, 1), (1, 3), (3, 2)])
            .unwrap();
        let ka = k(&a);
        let kb = k(&b);
        assert_eq!(ka, kb);
        cache.get_or_solve(&ka, || Ok(fake_outcome(2.0))).unwrap();
        let (found, hit) = cache
            .get_or_solve(&kb, || panic!("isomorph must hit"))
            .unwrap();
        assert!(hit);
        assert_eq!(found.expectation, 2.0);
    }

    #[test]
    fn same_class_different_restarts_are_distinct_entries() {
        let g = generators::cycle(6);
        let k2 = Level1Key::new(graph_key(&g), 2);
        let k3 = Level1Key::new(graph_key(&g), 3);
        assert_ne!(k2, k3);
        let cache = Level1Cache::new();
        cache.get_or_solve(&k2, || Ok(fake_outcome(2.0))).unwrap();
        // Same class, different restarts: a different key — must solve.
        let (out, hit) = cache.get_or_solve(&k3, || Ok(fake_outcome(3.0))).unwrap();
        assert!(!hit, "restart counts must not conflate");
        assert_eq!(out.expectation, 3.0);
        assert_eq!(cache.len(), 2);
        // Each restart count keeps serving its own bits.
        let (out, hit) = cache.get_or_solve(&k2, || panic!("cached")).unwrap();
        assert!(hit);
        assert_eq!(out.expectation, 2.0);
    }

    #[test]
    fn errors_do_not_poison() {
        let cache = Level1Cache::new();
        let key = k(&generators::path(4));
        let err = cache.get_or_solve(&key, || Err(QaoaError::InvalidDepth { depth: 0 }));
        assert!(err.is_err());
        assert!(cache.is_empty());
        let (_, hit) = cache.get_or_solve(&key, || Ok(fake_outcome(3.0))).unwrap();
        assert!(!hit);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn insert_prewarms_without_counting() {
        let cache = Level1Cache::new();
        let key = k(&generators::cycle(8));
        assert!(cache.insert(key.clone(), fake_outcome(5.0)));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 0, 1));
        // The pre-warmed entry serves lookups as a hit, no solve.
        let (out, hit) = cache
            .get_or_solve(&key, || panic!("pre-warmed key must not solve"))
            .unwrap();
        assert!(hit);
        assert_eq!(out.expectation, 5.0);
        // A second insert keeps the existing value.
        assert!(!cache.insert(key.clone(), fake_outcome(9.0)));
        let (out, _) = cache.get_or_solve(&key, || Ok(fake_outcome(9.0))).unwrap();
        assert_eq!(out.expectation, 5.0);
    }

    #[test]
    fn snapshot_sees_finished_entries_only() {
        let cache = Level1Cache::new();
        let ka = k(&generators::cycle(5));
        let kb = k(&generators::path(5));
        cache.get_or_solve(&ka, || Ok(fake_outcome(1.0))).unwrap();
        cache.insert(kb.clone(), fake_outcome(2.0));
        let snap = cache.snapshot();
        assert_eq!(snap.len(), 2);
        // Deterministic (sorted) order, values intact.
        let mut keys: Vec<_> = snap.iter().map(|(k, _)| k.clone()).collect();
        let sorted = {
            let mut s = keys.clone();
            s.sort();
            s
        };
        assert_eq!(keys, sorted);
        keys.sort();
        assert!(keys.contains(&ka) && keys.contains(&kb));
        // An in-flight slot is skipped, not waited on.
        let kc = k(&generators::star(5));
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                cache
                    .get_or_solve(&kc, || {
                        barrier.wait(); // solve in flight...
                        barrier.wait(); // ...until the snapshot is taken
                        Ok(fake_outcome(3.0))
                    })
                    .unwrap();
            });
            barrier.wait();
            assert_eq!(cache.snapshot().len(), 2);
            barrier.wait();
        });
        assert_eq!(cache.snapshot().len(), 3);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = Level1Cache::new();
        let key = k(&generators::star(4));
        cache.get_or_solve(&key, || Ok(fake_outcome(1.0))).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn concurrent_misses_are_single_flight() {
        // Many threads racing on one cold key: exactly one solve must run;
        // everyone else waits and records a hit. Repeated rounds widen the
        // collision window.
        use std::sync::atomic::{AtomicUsize, Ordering};
        for round in 0..50 {
            let cache = Level1Cache::new();
            let key = k(&generators::cycle(5 + round % 3));
            let solves = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        let (out, _) = cache
                            .get_or_solve(&key, || {
                                solves.fetch_add(1, Ordering::Relaxed);
                                Ok(fake_outcome(7.0))
                            })
                            .unwrap();
                        assert_eq!(out.expectation, 7.0);
                    });
                }
            });
            assert_eq!(solves.load(Ordering::Relaxed), 1, "round {round}");
            assert_eq!((cache.hits(), cache.misses()), (7, 1), "round {round}");
        }
    }

    #[test]
    fn failed_leader_lets_followers_retry() {
        // A leader that errors must not poison the key: concurrent or later
        // callers re-solve and succeed.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = Level1Cache::new();
        let key = k(&generators::path(5));
        let attempts = AtomicUsize::new(0);
        let mut failures = 0;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        cache.get_or_solve(&key, || {
                            if attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                                Err(QaoaError::InvalidDepth { depth: 0 })
                            } else {
                                Ok(fake_outcome(4.0))
                            }
                        })
                    })
                })
                .collect();
            for h in handles {
                match h.join().expect("no panic") {
                    Ok((out, _)) => assert_eq!(out.expectation, 4.0),
                    Err(_) => failures += 1,
                }
            }
        });
        assert_eq!(failures, 1, "exactly the failing leader errors");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn panicked_leader_does_not_wedge_the_key() {
        // A leader that *panics* mid-solve poisons and abandons its slot;
        // later callers must recover (treat it as a failed solve) instead
        // of panicking on the poisoned lock.
        let cache = Level1Cache::new();
        let key = k(&generators::cycle(7));
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = cache.get_or_solve(&key, || panic!("solver blew up"));
        }));
        assert!(unwound.is_err());
        let (out, hit) = cache.get_or_solve(&key, || Ok(fake_outcome(6.0))).unwrap();
        assert!(!hit, "abandoned slot must be withdrawn, not served");
        assert_eq!(out.expectation, 6.0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_access_is_coherent() {
        let cache = Level1Cache::new();
        let keys: Vec<_> = (3..9).map(|n| k(&generators::cycle(n))).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for (i, key) in keys.iter().enumerate() {
                        let (out, _) = cache
                            .get_or_solve(key, || Ok(fake_outcome(i as f64)))
                            .unwrap();
                        assert_eq!(out.expectation, i as f64);
                    }
                });
            }
        });
        assert_eq!(cache.len(), keys.len());
        assert_eq!(cache.hits() + cache.misses(), 4 * keys.len());
    }
}
