//! Concurrent depth-1 optimum cache keyed by canonical graph class.
//!
//! The paper's pipelines re-optimize the cheap `p = 1` instance for every
//! graph, but QAOA landscapes are invariant under graph isomorphism — all
//! graphs in one canonical class (see [`qaoa::canonical::graph_key`]) share
//! their depth-1 optimum. This cache memoizes that optimum per class, so
//! the cached paths — corpus generation ([`crate::corpus`]), depth-1 batch
//! jobs, and [`Engine::run_two_level_batch`](crate::Engine::run_two_level_batch)
//! — never solve the same class twice. (The Table-I sweep in
//! [`crate::compare`] deliberately bypasses the cache: its contract is
//! bit-parity with the serial `evaluation::compare`, whose protocol
//! re-optimizes level 1 per graph.)
//!
//! **Determinism under races:** the engine seeds every depth-1 solve from
//! the canonical class hash and runs it on the canonical representative
//! graph, so any two threads that miss concurrently compute *bit-identical*
//! values — whichever insert wins, every reader sees the same outcome, and
//! a cached run equals an uncached one exactly.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use qaoa::canonical::CanonicalGraphKey;
use qaoa::{InstanceOutcome, QaoaError};

const SHARDS: usize = 16;

/// Sharded concurrent map from canonical graph class to its depth-1
/// optimum.
#[derive(Debug)]
pub struct Level1Cache {
    shards: Vec<Mutex<HashMap<CanonicalGraphKey, InstanceOutcome>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl Level1Cache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    fn shard(&self, key: &CanonicalGraphKey) -> &Mutex<HashMap<CanonicalGraphKey, InstanceOutcome>> {
        &self.shards[(key.hash64() % SHARDS as u64) as usize]
    }

    /// Returns the cached depth-1 outcome for `key`, computing and
    /// inserting it via `solve` on a miss. The boolean is `true` on a hit.
    ///
    /// The lock is **not** held during `solve`; concurrent misses on the
    /// same class may both compute, which is safe because the engine makes
    /// the computation a pure function of the key (see module docs).
    ///
    /// # Errors
    ///
    /// Propagates `solve` errors (nothing is inserted on error).
    pub fn get_or_solve(
        &self,
        key: &CanonicalGraphKey,
        solve: impl FnOnce() -> Result<InstanceOutcome, QaoaError>,
    ) -> Result<(InstanceOutcome, bool), QaoaError> {
        if let Some(found) = self
            .shard(key)
            .lock()
            .expect("cache shard lock")
            .get(key)
            .cloned()
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((found, true));
        }
        let outcome = solve()?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().expect("cache shard lock");
        let stored = shard.entry(key.clone()).or_insert_with(|| outcome.clone());
        Ok((stored.clone(), false))
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (i.e. solves) so far.
    #[must_use]
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct canonical classes held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").len())
            .sum()
    }

    /// `true` when no class has been cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and zeroes the hit/miss counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard lock").clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

impl Default for Level1Cache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use optimize::Termination;
    use qaoa::canonical::graph_key;

    fn fake_outcome(tag: f64) -> InstanceOutcome {
        InstanceOutcome {
            params: vec![tag, tag],
            expectation: tag,
            approximation_ratio: 1.0,
            function_calls: 3,
            termination: Termination::FtolSatisfied,
        }
    }

    #[test]
    fn miss_then_hit() {
        let cache = Level1Cache::new();
        let key = graph_key(&generators::cycle(5));
        let (first, hit) = cache.get_or_solve(&key, || Ok(fake_outcome(1.0))).unwrap();
        assert!(!hit);
        assert_eq!(first.expectation, 1.0);
        // Second lookup must not invoke the solver.
        let (second, hit) = cache
            .get_or_solve(&key, || panic!("should not solve"))
            .unwrap();
        assert!(hit);
        assert_eq!(second.expectation, 1.0);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
    }

    #[test]
    fn isomorphic_keys_share_an_entry() {
        let cache = Level1Cache::new();
        let a = generators::cycle(6);
        // Same cycle with relabeled vertices.
        let b = graphs::Graph::from_edges(6, &[(2, 4), (4, 0), (0, 5), (5, 1), (1, 3), (3, 2)])
            .unwrap();
        let ka = graph_key(&a);
        let kb = graph_key(&b);
        assert_eq!(ka, kb);
        cache.get_or_solve(&ka, || Ok(fake_outcome(2.0))).unwrap();
        let (found, hit) = cache.get_or_solve(&kb, || panic!("isomorph must hit")).unwrap();
        assert!(hit);
        assert_eq!(found.expectation, 2.0);
    }

    #[test]
    fn errors_do_not_poison() {
        let cache = Level1Cache::new();
        let key = graph_key(&generators::path(4));
        let err = cache.get_or_solve(&key, || {
            Err(QaoaError::InvalidDepth { depth: 0 })
        });
        assert!(err.is_err());
        assert!(cache.is_empty());
        let (_, hit) = cache.get_or_solve(&key, || Ok(fake_outcome(3.0))).unwrap();
        assert!(!hit);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = Level1Cache::new();
        let key = graph_key(&generators::star(4));
        cache.get_or_solve(&key, || Ok(fake_outcome(1.0))).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn concurrent_access_is_coherent() {
        let cache = Level1Cache::new();
        let keys: Vec<_> = (3..9).map(|n| graph_key(&generators::cycle(n))).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for (i, key) in keys.iter().enumerate() {
                        let (out, _) = cache
                            .get_or_solve(key, || Ok(fake_outcome(i as f64)))
                            .unwrap();
                        assert_eq!(out.expectation, i as f64);
                    }
                });
            }
        });
        assert_eq!(cache.len(), keys.len());
        assert_eq!(cache.hits() + cache.misses(), 4 * keys.len());
    }
}
