//! Deterministic per-job RNG seed derivation.
//!
//! Every job the engine runs draws its randomness from an RNG seeded by a
//! **pure function** of the batch's master seed and a stable job key —
//! never from worker identity, scheduling order, or shared-stream position.
//! That is the whole determinism story: with seeds fixed per job, any
//! worker count (and any interleaving) produces bit-identical results.

use qaoa::stablehash::{fnv1a, splitmix64};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mixes a sequence of words into one seed (order-sensitive), built on the
/// shared [`qaoa::stablehash::splitmix64`] so derivation stays bit-stable
/// across crates.
#[must_use]
pub fn mix(master: u64, words: &[u64]) -> u64 {
    let mut acc = splitmix64(master);
    for &w in words {
        acc = splitmix64(acc ^ w);
    }
    acc
}

/// FNV-1a digest of a domain string, used to separate seed streams (e.g.
/// `"corpus"` vs `"batch"`) so equal indices in different contexts never
/// collide.
#[must_use]
pub fn domain_hash(domain: &str) -> u64 {
    fnv1a(domain.as_bytes())
}

/// Derives the seed of job `index` in `domain` under `master`.
#[must_use]
pub fn derive(master: u64, domain: &str, index: u64) -> u64 {
    mix(master, &[domain_hash(domain), index])
}

/// Derives a seed keyed by two coordinates (e.g. `(graph, depth)`).
#[must_use]
pub fn derive2(master: u64, domain: &str, a: u64, b: u64) -> u64 {
    mix(master, &[domain_hash(domain), a, b])
}

/// An [`StdRng`] for job `index` in `domain` under `master`.
#[must_use]
pub fn job_rng(master: u64, domain: &str, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive(master, domain, index))
}

/// Widens a `usize` count/index into the `u64` seed-mixing domain.
///
/// Every stable key and seed derivation mixes machine-sized quantities
/// (node counts, depths, restart counts, job indices) into `u64` words;
/// this is the one sanctioned place that conversion happens, so call
/// sites stay free of ad-hoc `as` casts.
#[must_use]
pub fn wide(x: usize) -> u64 {
    // lint:allow(no-lossy-as) usize -> u64 is value-preserving on every supported target (all are <= 64-bit)
    x as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_pure() {
        assert_eq!(derive(7, "corpus", 3), derive(7, "corpus", 3));
        assert_eq!(derive2(7, "corpus", 3, 1), derive2(7, "corpus", 3, 1));
    }

    #[test]
    fn domains_and_indices_separate_streams() {
        let base = derive(7, "corpus", 0);
        assert_ne!(base, derive(7, "batch", 0));
        assert_ne!(base, derive(7, "corpus", 1));
        assert_ne!(base, derive(8, "corpus", 0));
        assert_ne!(derive2(7, "x", 1, 2), derive2(7, "x", 2, 1));
    }

    #[test]
    fn job_rngs_are_reproducible() {
        let mut a = job_rng(42, "test", 5);
        let mut b = job_rng(42, "test", 5);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn mix_is_order_sensitive() {
        assert_ne!(mix(1, &[2, 3]), mix(1, &[3, 2]));
        assert_ne!(mix(1, &[]), mix(2, &[]));
    }
}
