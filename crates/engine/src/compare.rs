//! Parallel naive-vs-ML comparison sweeps (Table I) on the engine.
//!
//! The serial `qaoa::evaluation::compare` decomposes into independent
//! per-graph jobs because both protocols seed per graph
//! (`evaluation::graph_seed`). This module fans those jobs — every
//! `(cell, protocol, graph)` triple — across the pool and reassembles the
//! rows in cell order, reproducing the serial sweep bit-for-bit at any
//! worker count.

use graphs::Graph;
use optimize::Optimizer;
use qaoa::evaluation::{
    self, cell_seed, graph_seed, row_from_samples, ComparisonRow, EvaluationConfig,
};
use qaoa::{ParameterPredictor, QaoaError};

use crate::pool::Pool;

/// One unit of sweep work.
enum SweepJob<'a> {
    Naive {
        cell: usize,
        optimizer: &'a (dyn Optimizer + Send + Sync),
        depth: usize,
        graph: &'a Graph,
        seed: u64,
    },
    TwoLevel {
        cell: usize,
        optimizer: &'a (dyn Optimizer + Send + Sync),
        depth: usize,
        graph: &'a Graph,
        seed: u64,
    },
}

/// Runs the full Table-I comparison in parallel. Output is identical to
/// `qaoa::evaluation::compare` on the same inputs.
///
/// # Errors
///
/// Propagates the first (in job order) protocol error.
pub fn compare(
    graphs: &[Graph],
    optimizers: &[Box<dyn Optimizer + Send + Sync>],
    predictor: &ParameterPredictor,
    config: &EvaluationConfig,
    pool: &Pool,
) -> Result<Vec<ComparisonRow>, QaoaError> {
    // Flatten the sweep into per-graph jobs, remembering cell coordinates.
    let mut jobs: Vec<SweepJob> = Vec::new();
    let mut cells: Vec<(String, usize)> = Vec::new();
    for (oi, optimizer) in optimizers.iter().enumerate() {
        for (di, &depth) in config.depths.iter().enumerate() {
            let cell = cells.len();
            let seed = cell_seed(config.seed, oi, di);
            cells.push((optimizer.name().to_string(), depth));
            for (gi, graph) in graphs.iter().enumerate() {
                jobs.push(SweepJob::Naive {
                    cell,
                    optimizer: optimizer.as_ref(),
                    depth,
                    graph,
                    seed: graph_seed(seed, gi),
                });
            }
            for (gi, graph) in graphs.iter().enumerate() {
                jobs.push(SweepJob::TwoLevel {
                    cell,
                    optimizer: optimizer.as_ref(),
                    depth,
                    graph,
                    seed: graph_seed(seed.wrapping_add(500), gi),
                });
            }
        }
    }

    type JobSamples = (usize, bool, Vec<(f64, usize)>);
    let results: Vec<Result<JobSamples, QaoaError>> =
        pool.run_ordered_fanout(jobs.len(), |i, inner| {
            qaoa::eval::with_within_state_threads(inner, || match &jobs[i] {
                SweepJob::Naive {
                    cell,
                    optimizer,
                    depth,
                    graph,
                    seed,
                } => {
                    let samples = evaluation::naive_protocol_graph(
                        graph,
                        *depth,
                        *optimizer,
                        config.naive_starts,
                        &config.options,
                        *seed,
                        &config.scenario,
                    )?;
                    Ok((*cell, false, samples))
                }
                SweepJob::TwoLevel {
                    cell,
                    optimizer,
                    depth,
                    graph,
                    seed,
                } => {
                    let sample = evaluation::two_level_protocol_graph(
                        graph,
                        *depth,
                        *optimizer,
                        predictor,
                        config.level1_starts,
                        &config.options,
                        *seed,
                        &config.scenario,
                    )?;
                    Ok((*cell, true, vec![sample]))
                }
            })
        });

    // Reassemble per-cell sample vectors. Jobs come back in submission
    // order, which is graph order within each protocol within each cell —
    // exactly the serial concatenation.
    let mut naive: Vec<Vec<(f64, usize)>> = vec![Vec::new(); cells.len()];
    let mut ml: Vec<Vec<(f64, usize)>> = vec![Vec::new(); cells.len()];
    for result in results {
        let (cell, is_ml, samples) = result?;
        if is_ml {
            ml[cell].extend(samples);
        } else {
            naive[cell].extend(samples);
        }
    }
    Ok(cells
        .iter()
        .enumerate()
        .map(|(cell, (name, depth))| row_from_samples(name, *depth, &naive[cell], &ml[cell]))
        .collect())
}

/// Parallel counterpart of `qaoa::evaluation::naive_protocol`: identical
/// samples, fanned per graph.
///
/// # Errors
///
/// Propagates the first per-graph error.
#[allow(clippy::too_many_arguments)] // mirrors the serial protocol signature
pub fn naive_protocol(
    graphs: &[Graph],
    depth: usize,
    optimizer: &(dyn Optimizer + Sync),
    n_starts: usize,
    options: &optimize::Options,
    seed: u64,
    scenario: &qaoa::Scenario,
    pool: &Pool,
) -> Result<Vec<(f64, usize)>, QaoaError> {
    let per_graph: Vec<Result<Vec<(f64, usize)>, QaoaError>> =
        pool.run_ordered_fanout(graphs.len(), |gi, inner| {
            qaoa::eval::with_within_state_threads(inner, || {
                evaluation::naive_protocol_graph(
                    &graphs[gi],
                    depth,
                    optimizer,
                    n_starts,
                    options,
                    graph_seed(seed, gi),
                    scenario,
                )
            })
        });
    let mut samples = Vec::with_capacity(graphs.len() * n_starts);
    for result in per_graph {
        samples.extend(result?);
    }
    Ok(samples)
}

/// Parallel counterpart of `qaoa::evaluation::two_level_protocol`:
/// identical samples, fanned per graph.
///
/// # Errors
///
/// Propagates the first per-graph error.
#[allow(clippy::too_many_arguments)] // mirrors the serial protocol signature
pub fn two_level_protocol(
    graphs: &[Graph],
    depth: usize,
    optimizer: &(dyn Optimizer + Sync),
    predictor: &ParameterPredictor,
    level1_starts: usize,
    options: &optimize::Options,
    seed: u64,
    scenario: &qaoa::Scenario,
    pool: &Pool,
) -> Result<Vec<(f64, usize)>, QaoaError> {
    let per_graph: Vec<Result<(f64, usize), QaoaError>> =
        pool.run_ordered_fanout(graphs.len(), |gi, inner| {
            qaoa::eval::with_within_state_threads(inner, || {
                evaluation::two_level_protocol_graph(
                    &graphs[gi],
                    depth,
                    optimizer,
                    predictor,
                    level1_starts,
                    options,
                    graph_seed(seed, gi),
                    scenario,
                )
            })
        });
    per_graph.into_iter().collect()
}
