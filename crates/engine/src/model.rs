//! Versioned persistence of trained parameter predictors.
//!
//! A [`ParameterPredictor`] is the expensive half of the paper's
//! train-once / predict-many promise: training solves hundreds of QAOA
//! instances, while prediction is a handful of regressor evaluations. This
//! module saves the trained predictor to a versioned `QMODEL1` text file and
//! rebuilds it in another process, so a serving loop never pays the
//! training cost — and the rebuilt predictor answers **bit-identically** to
//! the in-memory original (the `ml` crate's `to_params`/`from_params`
//! round-trip guarantee, float payloads as IEEE-754 bit hex like
//! [`crate::wire`]).
//!
//! File format (line-delimited):
//!
//! ```text
//! QMODEL1 seed=<master seed> kind=<abbr> features=<3|6> max-depth=<p> intermediate=<-|m>
//! MODEL gamma 1 <ints> <floats>
//! MODEL beta 1 <ints> <floats>
//! ...
//! END <model count>
//! ints   := "-" | u64 ("," u64)*
//! floats := "-" | hex64 ("," hex64)*    (IEEE-754 bits, 16 lowercase hex)
//! ```
//!
//! One `MODEL` line per stage regressor, γ stages first then β stages, each
//! carrying that model's exported parameter streams. The `END` trailer
//! makes truncation detectable: a file that stops mid-stream never parses.
//!
//! The header scopes the artifact three ways: the version tag (format
//! changes bump [`MODEL_VERSION`] and orphan old files), the model kind
//! (each stage line is decoded by that kind's own layout), and the corpus
//! master seed — a model trained on another seed's corpus would silently
//! change served answers, so it is treated exactly like a stale version.
//!
//! **Failure policy** (same as [`crate::persist`]): a missing, truncated,
//! corrupt, version-mismatched, or seed-mismatched file is *never* a hard
//! error — [`load`] reports [`ModelLoad::Discarded`] and the driver
//! retrains and overwrites. Writes go to a per-process temp file followed
//! by an atomic rename, so readers never observe a half-written artifact.

use std::io::Write;
use std::path::Path;

use ml::{ModelKind, ModelParams, Regressor};
use qaoa::ParameterPredictor;

use crate::wire::{fmt_floats, parse_floats, parse_int, WireError};

/// Version tag opening the model-file header; bump alongside any format
/// change so stale files are discarded rather than misread.
pub const MODEL_VERSION: &str = "QMODEL1";

/// What [`load`] found on disk.
#[derive(Debug)]
pub enum ModelLoad {
    /// No file at the path — train from scratch.
    Missing,
    /// The file was valid; the rebuilt predictor is ready to serve.
    Loaded(ParameterPredictor),
    /// The file was unreadable, corrupt, version- or seed-mismatched and
    /// was ignored wholesale (retrain and overwrite it).
    Discarded(String),
}

impl ModelLoad {
    /// One-line human summary for driver logs.
    #[must_use]
    pub fn summary(&self) -> String {
        match self {
            ModelLoad::Missing => "no model file; training from scratch".into(),
            ModelLoad::Loaded(p) => {
                format!("loaded {} model (max depth {})", p.kind(), p.max_depth())
            }
            ModelLoad::Discarded(why) => format!("model file discarded ({why}); retraining"),
        }
    }
}

fn fmt_ints(v: &[u64]) -> String {
    if v.is_empty() {
        return "-".into();
    }
    v.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
}

fn parse_ints(s: &str) -> Result<Vec<u64>, WireError> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|part| parse_int::<u64>(part, "model int field"))
        .collect()
}

fn err(message: impl Into<String>) -> WireError {
    WireError {
        message: message.into(),
    }
}

/// Encodes a trained predictor as the full text of a `QMODEL1` file.
///
/// # Errors
///
/// Fails only if a stage model refuses to export (an unfitted model, which
/// a trained predictor never contains).
pub fn encode(predictor: &ParameterPredictor, master_seed: u64) -> Result<String, WireError> {
    let features = if predictor.intermediate_depth().is_some() {
        6
    } else {
        3
    };
    let intermediate = predictor
        .intermediate_depth()
        .map_or_else(|| "-".into(), |m| m.to_string());
    let mut out = format!(
        "{MODEL_VERSION} seed={master_seed} kind={} features={features} max-depth={} intermediate={intermediate}\n",
        predictor.kind().abbreviation(),
        predictor.max_depth(),
    );
    let mut count = 0usize;
    for (param, models) in [
        ("gamma", predictor.gamma_models()),
        ("beta", predictor.beta_models()),
    ] {
        for (i, model) in models.iter().enumerate() {
            let exported = model
                .to_params()
                .map_err(|e| err(format!("stage {param} {} export failed: {e}", i + 1)))?;
            out.push_str(&format!(
                "MODEL {param} {} {} {}\n",
                i + 1,
                fmt_ints(&exported.ints),
                fmt_floats(&exported.floats),
            ));
            count += 1;
        }
    }
    out.push_str(&format!("END {count}\n"));
    Ok(out)
}

/// Parses the full text of a `QMODEL1` file scoped to `master_seed`.
///
/// # Errors
///
/// Rejects a missing/mismatched/misseeded header, any malformed stage
/// line, a missing or wrong `END` trailer, or stage lists that do not
/// assemble into a valid predictor — the whole file is untrustworthy
/// (partial loads could hide truncation behind a shallower model).
pub fn parse_model(text: &str, master_seed: u64) -> Result<ParameterPredictor, WireError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or_else(|| err("model file is empty"))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != MODEL_VERSION {
        return Err(err(format!(
            "model header `{}` is not a {MODEL_VERSION} header",
            header.trim()
        )));
    }
    let field = |i: usize, prefix: &str| -> Result<&str, WireError> {
        fields[i].strip_prefix(prefix).ok_or_else(|| {
            err(format!(
                "model header field `{}` needs `{prefix}`",
                fields[i]
            ))
        })
    };
    let seed: u64 = parse_int(field(1, "seed=")?, "model seed")?;
    if seed != master_seed {
        return Err(err(format!(
            "model trained under seed {seed}, this run uses {master_seed}"
        )));
    }
    let kind_abbr = field(2, "kind=")?;
    let kind = ModelKind::from_abbreviation(kind_abbr)
        .ok_or_else(|| err(format!("unknown model kind `{kind_abbr}`")))?;
    let features: usize = parse_int(field(3, "features=")?, "feature count")?;
    let max_depth: usize = parse_int(field(4, "max-depth=")?, "max depth")?;
    let intermediate = match field(5, "intermediate=")? {
        "-" => None,
        m => Some(parse_int::<usize>(m, "intermediate depth")?),
    };
    let expected_features = if intermediate.is_some() { 6 } else { 3 };
    if features != expected_features {
        return Err(err(format!(
            "feature schema {features} contradicts intermediate={} (expected {expected_features})",
            fields[5]
        )));
    }

    let mut gamma_models: Vec<Box<dyn Regressor>> = Vec::new();
    let mut beta_models: Vec<Box<dyn Regressor>> = Vec::new();
    let mut ended = false;
    for line in lines {
        if ended {
            return Err(err("content after the END trailer"));
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.first().copied() {
            Some("MODEL") => {
                if fields.len() != 5 {
                    return Err(err(format!(
                        "MODEL line needs 5 fields, got {}",
                        fields.len()
                    )));
                }
                let stage: usize = parse_int(fields[2], "model stage")?;
                let exported = ModelParams {
                    ints: parse_ints(fields[3])?,
                    floats: parse_floats(fields[4])?,
                };
                let model = kind
                    .from_params(&exported)
                    .map_err(|e| err(format!("stage {} {} rejected: {e}", fields[1], stage)))?;
                let list = match fields[1] {
                    "gamma" => &mut gamma_models,
                    "beta" => &mut beta_models,
                    other => return Err(err(format!("unknown parameter kind `{other}`"))),
                };
                if stage != list.len() + 1 {
                    return Err(err(format!(
                        "{} stage {stage} out of order (expected {})",
                        fields[1],
                        list.len() + 1
                    )));
                }
                list.push(model);
            }
            Some("END") => {
                let count: usize = parse_int(fields.get(1).copied().unwrap_or(""), "model count")?;
                if fields.len() != 2 || count != gamma_models.len() + beta_models.len() {
                    return Err(err(format!(
                        "END trailer count {count} does not match {} stage lines",
                        gamma_models.len() + beta_models.len()
                    )));
                }
                ended = true;
            }
            _ => return Err(err(format!("unrecognized model line `{line}`"))),
        }
    }
    if !ended {
        return Err(err("model file truncated (no END trailer)"));
    }
    ParameterPredictor::from_parts(kind, max_depth, intermediate, gamma_models, beta_models)
        .map_err(|e| err(format!("model stages do not assemble: {e}")))
}

/// Loads the predictor persisted at `path`, tolerating every failure mode
/// (see the module docs).
pub fn load(path: &Path, master_seed: u64) -> ModelLoad {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return ModelLoad::Missing,
        Err(e) => return ModelLoad::Discarded(e.to_string()),
    };
    match parse_model(&text, master_seed) {
        Ok(predictor) => ModelLoad::Loaded(predictor),
        Err(e) => ModelLoad::Discarded(e.message),
    }
}

/// Writes `predictor` to `path` via a per-process temp file and atomic
/// rename, replacing whatever was there.
///
/// # Errors
///
/// Propagates I/O errors, and surfaces (as [`std::io::ErrorKind::Other`])
/// the never-in-practice case of a stage model refusing to export.
pub fn save(predictor: &ParameterPredictor, path: &Path, master_seed: u64) -> std::io::Result<()> {
    let text = encode(predictor, master_seed).map_err(std::io::Error::other)?;
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    {
        let mut file = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        file.write_all(text.as_bytes())?;
        file.flush()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaoa::datagen::{DataGenConfig, ParameterDataset};

    fn tiny_corpus() -> ParameterDataset {
        ParameterDataset::generate(&DataGenConfig {
            n_graphs: 5,
            n_nodes: 5,
            edge_probability: 0.6,
            max_depth: 3,
            restarts: 2,
            seed: 33,
            options: Default::default(),
            trend_preference_margin: 1e-3,
        })
        .unwrap()
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("qmodel_{}_{tag}.qm", std::process::id()))
    }

    #[test]
    fn save_load_round_trip_is_bit_identical() {
        let corpus = tiny_corpus();
        for kind in ModelKind::EXTENDED {
            let trained = ParameterPredictor::train(kind, &corpus).unwrap();
            let path = temp_path(&format!("roundtrip_{kind}"));
            save(&trained, &path, 2020).unwrap();
            let ModelLoad::Loaded(loaded) = load(&path, 2020) else {
                panic!("{kind} artifact must load");
            };
            assert_eq!(loaded.kind(), kind);
            assert_eq!(loaded.max_depth(), trained.max_depth());
            for pt in 1..=trained.max_depth() {
                let a = trained.predict(1.2, 0.6, pt).unwrap();
                let b = loaded.predict(1.2, 0.6, pt).unwrap();
                let a_bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
                let b_bits: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
                assert_eq!(a_bits, b_bits, "{kind} depth {pt}");
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn missing_file_is_a_cold_start() {
        assert!(matches!(
            load(Path::new("/nonexistent/model.qm"), 2020),
            ModelLoad::Missing
        ));
    }

    #[test]
    fn corrupt_stale_and_misseeded_files_are_discarded() {
        let corpus = tiny_corpus();
        let trained = ParameterPredictor::train(ModelKind::Linear, &corpus).unwrap();
        let good = encode(&trained, 2020).unwrap();
        let truncated: String = good.lines().take(3).map(|l| format!("{l}\n")).collect();
        let reseeded = good.replacen("seed=2020", "seed=7", 1);
        let cases = [
            ("garbage", "complete nonsense\n".to_string()),
            ("stale", good.replacen("QMODEL1", "QMODEL0", 1)),
            ("otherseed", reseeded),
            ("truncated", truncated),
            ("empty", String::new()),
            ("badkind", good.replacen("kind=LM", "kind=WAT", 1)),
        ];
        for (tag, text) in cases {
            let path = temp_path(tag);
            std::fs::write(&path, text).unwrap();
            assert!(
                matches!(load(&path, 2020), ModelLoad::Discarded(_)),
                "{tag} must be discarded"
            );
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn load_statuses_summarize() {
        assert!(ModelLoad::Missing.summary().contains("training"));
        assert!(ModelLoad::Discarded("why".into()).summary().contains("why"));
    }
}
