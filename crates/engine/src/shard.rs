//! Sharded corpus generation: split the §III-A ensemble over workers by
//! graph-index range, with a bit-parity guarantee and worker failover.
//!
//! ROADMAP item 1: corpus generation scales past one machine by handing
//! each worker a contiguous range of global graph indices over a live,
//! streaming transport. The pieces compose — [`crate::corpus::solve_range`]
//! seeds every cell from its *global* index, the `QW1` wire format moves
//! records bit-exactly, and [`crate::persist::save_merge`] unions cache
//! files — so both failover and streaming are pure bookkeeping:
//!
//! * [`ShardPlan`] — a validated partition of `0..n_graphs` into
//!   contiguous, non-overlapping, covering index ranges (empty and
//!   singleton ranges included),
//! * [`run_local`] — one [`crate::corpus`] worker per range, each on its
//!   own engine/pool: the single-process rehearsal of the multi-machine
//!   topology,
//! * [`run_streaming`] — the live coordinator: an event loop over any
//!   [`ShardTransport`] that dispatches ranges to workers, streams-merges
//!   `RECORD` lines into the sink in global graph-index order with
//!   **bounded buffering**, and **re-tasks** a dead or timed-out worker's
//!   range onto a survivor,
//! * [`run_wire`] — [`run_streaming`] collecting into a
//!   [`ParameterDataset`], for callers that want the corpus in memory.
//!
//! Transports live in [`crate::transport`]:
//! [`crate::transport::LoopbackTransport`] (in-process reference
//! implementation) and [`crate::transport::SubprocessTransport`] (spawned
//! `qaoa-serve` worker processes).
//!
//! # The bit-parity guarantee
//!
//! For a fixed corpus spec, **any** valid plan at **any** worker/thread
//! count merges to output bit-identical to the unsharded run:
//!
//! * every `(graph, depth ≥ 2)` cell draws from an RNG derived from the
//!   *global* graph index, never from shard-local position,
//! * every depth-1 cell is a pure function of
//!   `(master seed, canonical class, restarts)` — solved on the canonical
//!   representative, seeded from the class hash — so it does not matter
//!   *which* shard solves a class first,
//! * records are emitted in range order (= graph-index order), exactly the
//!   order the unsharded generator emits,
//! * per-shard caches union into one entry set equal to the unsharded
//!   run's, so a merged cache file ([`crate::persist::save_merge`]) is
//!   byte-identical too.
//!
//! # Failover re-tasking
//!
//! The same guarantee is what makes failover safe: a re-run range returns
//! **identical bytes**, so when a worker dies (transport reports
//! [`crate::transport::TransportError::Dead`]) or falls silent past
//! [`StreamOptions::timeout`], the coordinator kills it, pushes its
//! unfinished range back on the queue, and a survivor re-runs it. Records
//! the dead worker already streamed past the emit frontier are replayed by
//! the survivor and skipped by position — their `(graph, depth)`
//! coordinates are still validated, so a worker that disagrees with the
//! already-emitted prefix is a protocol error, not silent corruption. Dead
//! workers are never re-spawned, which naturally bounds retries: a range
//! can be re-tasked at most `workers - 1` times before
//! [`ShardError::Transport`] reports the fleet lost.
//!
//! # Streaming merge and the memory bound
//!
//! The coordinator never holds the corpus. Records for the **frontier**
//! range (the earliest not-fully-emitted range) stream straight to the
//! sink as they arrive; records for later in-flight ranges are buffered
//! only until the frontier catches up. Dispatch is throttled to a window
//! of [`StreamOptions::window_per_worker`] × workers ranges beyond the
//! frontier, so peak buffering is bounded by a constant number of
//! in-flight shard windows — independent of corpus size
//! ([`ShardReport::peak_buffered_records`] tracks the high-water mark, and
//! `tests/tests/failover.rs` asserts the bound).
//!
//! `tests/tests/shard.rs` pins the parity property down with a
//! mini-proptest over arbitrary partitions; `tests/tests/failover.rs`
//! does the same under injected worker death and stalls; CI diffs
//! `qaoa-shard` output (loopback and spawned subprocess workers, with and
//! without a kill) against the unsharded `table1` corpus byte-for-byte.

use std::collections::BTreeSet;
use std::fmt;
use std::ops::Range;
use std::time::{Duration, Instant};

use qaoa::datagen::{DataGenConfig, OptimalRecord, ParameterDataset};
use qaoa::QaoaError;

use crate::batch::Engine;
use crate::cache::Level1Cache;
use crate::corpus;
use crate::transport::{ShardTransport, TransportError};
use crate::wire;

/// A failed shard plan, protocol exchange, worker fleet, or local solve.
#[derive(Debug)]
pub enum ShardError {
    /// The plan is not a valid partition (or does not match the spec).
    Plan(String),
    /// A wire worker broke protocol (bad line, wrong/duplicate `DONE`,
    /// out-of-order records, or an in-band `ERR`). Protocol violations are
    /// never re-tasked: a worker that answers *wrong* (rather than not at
    /// all) would answer wrong again, and parity is already forfeit.
    Protocol {
        /// Index of the offending shard (range) within the plan.
        shard: usize,
        /// What went wrong.
        message: String,
    },
    /// The worker fleet failed underneath the coordinator: spawn failure,
    /// every worker lost, or a stray line after completion.
    Transport(String),
    /// The record sink (the caller's output writer) failed.
    Sink(String),
    /// A local solve failed.
    Solve(QaoaError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Plan(message) => write!(f, "shard plan: {message}"),
            ShardError::Protocol { shard, message } => {
                write!(f, "shard {shard}: {message}")
            }
            ShardError::Transport(message) => write!(f, "shard transport: {message}"),
            ShardError::Sink(message) => write!(f, "shard sink: {message}"),
            ShardError::Solve(e) => write!(f, "shard solve: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<QaoaError> for ShardError {
    fn from(e: QaoaError) -> Self {
        ShardError::Solve(e)
    }
}

/// A validated partition of `0..n_graphs` into contiguous index ranges.
///
/// Invariants (enforced by both constructors): ranges are in ascending
/// order, non-overlapping, and cover `0..n_graphs` exactly — every global
/// graph index belongs to precisely one range. Empty ranges are legal
/// anywhere (a shard may simply have nothing to do), which is what lets
/// [`ShardPlan::split_even`] hand out more shards than graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    n_graphs: usize,
    ranges: Vec<Range<usize>>,
}

impl ShardPlan {
    /// Splits `0..n_graphs` into `shards` near-equal contiguous ranges
    /// (the first `n_graphs % shards` ranges hold one extra graph). A
    /// `shards` of 0 is treated as 1.
    #[must_use]
    pub fn split_even(n_graphs: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let base = n_graphs / shards;
        let extra = n_graphs % shards;
        let mut ranges = Vec::with_capacity(shards);
        let mut cursor = 0;
        for i in 0..shards {
            let len = base + usize::from(i < extra);
            ranges.push(cursor..cursor + len);
            cursor += len;
        }
        Self { n_graphs, ranges }
    }

    /// Validates a caller-supplied partition of `0..n_graphs`.
    ///
    /// # Errors
    ///
    /// Rejects inverted ranges, gaps, overlaps, and partitions that do not
    /// cover `0..n_graphs` exactly. An empty range list is valid only for
    /// an empty ensemble.
    pub fn from_ranges(n_graphs: usize, ranges: Vec<Range<usize>>) -> Result<Self, ShardError> {
        let mut cursor = 0;
        for (i, range) in ranges.iter().enumerate() {
            if range.start > range.end {
                return Err(ShardError::Plan(format!(
                    "range {i} ({}..{}) is inverted",
                    range.start, range.end
                )));
            }
            if range.start != cursor {
                return Err(ShardError::Plan(format!(
                    "range {i} starts at {} but the previous range ended at {cursor} \
                     (ranges must tile 0..{n_graphs} without gaps or overlaps)",
                    range.start
                )));
            }
            cursor = range.end;
        }
        if cursor != n_graphs {
            return Err(ShardError::Plan(format!(
                "ranges cover 0..{cursor} but the ensemble has {n_graphs} graphs"
            )));
        }
        Ok(Self { n_graphs, ranges })
    }

    /// The partitioned ranges, in ascending graph-index order.
    #[must_use]
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Number of shards (ranges) in the plan.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.ranges.len()
    }

    /// Size of the ensemble this plan partitions.
    #[must_use]
    pub fn n_graphs(&self) -> usize {
        self.n_graphs
    }

    fn check_spec(&self, config: &DataGenConfig) -> Result<(), ShardError> {
        if self.n_graphs != config.n_graphs {
            return Err(ShardError::Plan(format!(
                "plan partitions {} graphs but the spec generates {}",
                self.n_graphs, config.n_graphs
            )));
        }
        Ok(())
    }
}

/// Accounting for one shard of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// The global graph-index range this shard covered.
    pub range: Range<usize>,
    /// `(graph, depth)` cells produced.
    pub cells: usize,
    /// Total function calls across the shard's records.
    pub function_calls: usize,
    /// Depth-1 solves served from cache (0 for wire shards, whose workers
    /// do not report hit counts through `DONE`).
    pub cache_hits: usize,
    /// Times this range was dispatched (1 + re-tasks after worker loss).
    pub attempts: usize,
}

/// Accounting for one sharded corpus run.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Per-shard stats, in plan order.
    pub per_shard: Vec<ShardStats>,
    /// End-to-end coordinator wall-clock time.
    pub wall: Duration,
    /// Ranges re-tasked onto a survivor after their worker was lost.
    pub retasked: usize,
    /// Workers declared dead (transport failure or liveness timeout).
    pub lost_workers: usize,
    /// High-water mark of records buffered for not-yet-frontier ranges —
    /// the coordinator's peak memory beyond the one record in flight.
    /// Bounded by the dispatch window, never by corpus size.
    pub peak_buffered_records: usize,
}

impl ShardReport {
    /// Total `(graph, depth)` cells across all shards.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.per_shard.iter().map(|s| s.cells).sum()
    }

    /// Total function calls across all shards.
    #[must_use]
    pub fn function_calls(&self) -> usize {
        self.per_shard.iter().map(|s| s.function_calls).sum()
    }

    /// Total depth-1 cache hits across all shards.
    #[must_use]
    pub fn cache_hits(&self) -> usize {
        self.per_shard.iter().map(|s| s.cache_hits).sum()
    }

    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{} shards / {} cells in {:.2?} ({} level-1 cache hits, {} fn calls)",
            self.per_shard.len(),
            self.cells(),
            self.wall,
            self.cache_hits(),
            self.function_calls(),
        );
        if self.lost_workers > 0 {
            line.push_str(&format!(
                "; lost {} worker(s), re-tasked {} range(s)",
                self.lost_workers, self.retasked
            ));
        }
        line
    }
}

/// Runs a sharded corpus generation in-process: one
/// [`corpus::solve_range`] worker per range, each on its own engine (with
/// `threads_per_shard` pool workers), merged in graph-index order.
///
/// `shared_cache` plays the coordinator's depth-1 cache: each shard engine
/// is pre-warmed from it before solving and folded back into it after, so
/// canonical classes spanning shard boundaries are solved once per run —
/// and a caller that loaded the cache from a `--cache-file` gets the same
/// warm-start any unsharded driver gets. Pass a fresh
/// [`Level1Cache::new()`] when no persistence is wanted.
///
/// The merged dataset is **bit-identical** to
/// [`corpus::generate`] with the same spec, for any valid plan, any
/// `threads_per_shard`, and any warm/cold cache state.
///
/// # Errors
///
/// Rejects a plan that does not match the spec; propagates solve errors.
pub fn run_local(
    config: &DataGenConfig,
    plan: &ShardPlan,
    threads_per_shard: usize,
    shared_cache: &Level1Cache,
) -> Result<(ParameterDataset, ShardReport), ShardError> {
    plan.check_spec(config)?;
    let start = Instant::now();
    let graphs = corpus::ensemble(config);
    let mut records = Vec::with_capacity(config.n_graphs * config.max_depth);
    let mut per_shard = Vec::with_capacity(plan.shards());
    for range in plan.ranges() {
        let engine = Engine::new(threads_per_shard);
        engine.cache().merge_from(shared_cache);
        let (shard_records, report) = corpus::solve_range(&graphs, range.clone(), config, &engine)?;
        shared_cache.merge_from(engine.cache());
        per_shard.push(ShardStats {
            range: range.clone(),
            cells: report.cells,
            function_calls: report.function_calls,
            cache_hits: report.cache_hits,
            attempts: 1,
        });
        records.extend(shard_records);
    }
    let dataset = ParameterDataset::from_parts(graphs, records, config.max_depth)?;
    Ok((
        dataset,
        ShardReport {
            per_shard,
            wall: start.elapsed(),
            retasked: 0,
            lost_workers: 0,
            peak_buffered_records: 0,
        },
    ))
}

/// Tuning knobs for [`run_streaming`].
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Continuous silence from a busy worker after which the coordinator
    /// declares it dead, kills it, and re-tasks its range.
    pub timeout: Duration,
    /// How many ranges beyond the emit frontier may be open (dispatched
    /// and possibly buffered) **per worker**; clamped to at least 1. This
    /// is the coordinator's memory bound: peak buffering never exceeds
    /// `window_per_worker × workers` ranges' worth of records.
    pub window_per_worker: usize,
}

impl Default for StreamOptions {
    fn default() -> Self {
        Self {
            timeout: Duration::from_secs(30),
            window_per_worker: 2,
        }
    }
}

/// How long one poll of a busy worker waits before the coordinator moves
/// on to the next. Small enough to keep every worker fed; the liveness
/// decision accumulates [`StreamOptions::timeout`] of silence on top.
const POLL_QUANTUM: Duration = Duration::from_millis(10);

/// Per-range progress in the coordinator's event loop.
struct RangeProgress {
    range: Range<usize>,
    /// Records already handed to the sink. Survives re-tasking: a
    /// survivor's replay of this prefix is coordinate-checked and skipped.
    emitted: usize,
    /// Records held for a not-yet-frontier range (current attempt only).
    buffered: Vec<OptimalRecord>,
    /// Records received in the current attempt (= position in the range's
    /// canonical record order).
    received: usize,
    /// Function-call sum over the current attempt's records.
    function_calls: usize,
    done: bool,
    /// Dispatch count (1 + re-tasks).
    attempts: usize,
}

enum WorkerState {
    Idle,
    /// Serving the range at this plan index.
    Busy(usize),
    /// Dead or closed; never dispatched to again.
    Gone,
}

/// Runs a sharded corpus generation live over a [`ShardTransport`],
/// streaming merged records to `sink` in global graph-index order.
///
/// This is the coordinator event loop behind [`run_wire`] and the
/// `qaoa-shard` worker modes: it lazily opens a `SHARD` session per
/// worker, dispatches `RANGE`s within the frontier window, validates and
/// merges incoming `RECORD`/`DONE` lines, re-tasks ranges lost to worker
/// death or timeout, and closes (on success) or kills (on error) every
/// worker before returning. See the module docs for the failover and
/// memory-bound semantics.
///
/// The sink sees exactly the unsharded record sequence — bit-identical,
/// in order, each record exactly once — regardless of worker count,
/// scheduling, or injected faults.
///
/// # Errors
///
/// Rejects plan/spec mismatches ([`ShardError::Plan`]) and protocol
/// violations ([`ShardError::Protocol`]); reports a fleet with no
/// survivors as [`ShardError::Transport`] and a failing sink as
/// [`ShardError::Sink`].
pub fn run_streaming<T, S>(
    config: &DataGenConfig,
    plan: &ShardPlan,
    transport: &mut T,
    options: &StreamOptions,
    sink: &mut S,
) -> Result<ShardReport, ShardError>
where
    T: ShardTransport,
    S: FnMut(OptimalRecord) -> Result<(), String>,
{
    plan.check_spec(config)?;
    let outcome = stream_loop(config, plan, transport, options, sink);
    // Success: a graceful close lets workers fold/persist their caches.
    // Failure: kill what's left so no worker outlives its coordinator.
    // Both are idempotent no-ops on workers already gone.
    for worker in 0..transport.workers() {
        if outcome.is_ok() {
            transport.close(worker);
        } else {
            transport.kill(worker);
        }
    }
    outcome
}

fn stream_loop<T, S>(
    config: &DataGenConfig,
    plan: &ShardPlan,
    transport: &mut T,
    options: &StreamOptions,
    sink: &mut S,
) -> Result<ShardReport, ShardError>
where
    T: ShardTransport,
    S: FnMut(OptimalRecord) -> Result<(), String>,
{
    let start = Instant::now();
    let max_depth = config.max_depth;
    let shard_line = wire::encode_shard(config);
    let n_workers = transport.workers();
    let window = options
        .window_per_worker
        .max(1)
        .saturating_mul(n_workers.max(1));

    let mut ranges: Vec<RangeProgress> = plan
        .ranges()
        .iter()
        .map(|range| RangeProgress {
            range: range.clone(),
            emitted: 0,
            buffered: Vec::new(),
            received: 0,
            function_calls: 0,
            done: false,
            attempts: 0,
        })
        .collect();
    let mut pending: BTreeSet<usize> = (0..ranges.len()).collect();
    let mut workers: Vec<WorkerState> = (0..n_workers).map(|_| WorkerState::Idle).collect();
    let mut shard_sent = vec![false; n_workers];
    let mut last_heard = vec![Instant::now(); n_workers];
    let mut frontier = 0usize;
    let mut buffered_records = 0usize;
    let mut peak_buffered = 0usize;
    let mut retasked = 0usize;
    let mut lost_workers = 0usize;

    while frontier < ranges.len() {
        // Dispatch: hand the lowest pending ranges to idle workers, but
        // never reach more than `window` ranges past the frontier — that
        // cap is the memory bound.
        #[allow(clippy::needless_range_loop)] // workers + transport borrow together
        for worker in 0..n_workers {
            if !matches!(workers[worker], WorkerState::Idle) {
                continue;
            }
            let Some(&next) = pending.iter().next() else {
                break;
            };
            if next >= frontier.saturating_add(window) {
                break;
            }
            pending.remove(&next);
            let tasked = if shard_sent[worker] {
                transport.send_line(worker, &wire::encode_range(&ranges[next].range))
            } else {
                transport.send_line(worker, &shard_line).and_then(|()| {
                    shard_sent[worker] = true;
                    transport.send_line(worker, &wire::encode_range(&ranges[next].range))
                })
            };
            match tasked {
                Ok(()) => {
                    ranges[next].attempts += 1;
                    workers[worker] = WorkerState::Busy(next);
                    last_heard[worker] = Instant::now();
                }
                Err(_) => {
                    // The worker died before taking the range: requeue it
                    // and retire the worker. Not a re-task — nothing ran.
                    pending.insert(next);
                    workers[worker] = WorkerState::Gone;
                    lost_workers += 1;
                    transport.kill(worker);
                }
            }
        }

        if workers.iter().all(|w| matches!(w, WorkerState::Gone)) {
            let unfinished = ranges.iter().filter(|r| !r.done).count();
            return Err(ShardError::Transport(format!(
                "all {n_workers} workers lost with {unfinished} of {} ranges unfinished",
                ranges.len()
            )));
        }

        // Poll: give every busy worker one receive quantum, then drain
        // whatever else it already queued without waiting.
        #[allow(clippy::needless_range_loop)] // workers + transport borrow together
        for worker in 0..n_workers {
            let WorkerState::Busy(shard) = workers[worker] else {
                continue;
            };
            match transport.recv_line(worker, POLL_QUANTUM) {
                Ok(line) => {
                    last_heard[worker] = Instant::now();
                    handle_line(
                        &line,
                        shard,
                        worker,
                        max_depth,
                        &mut ranges,
                        &mut frontier,
                        &mut workers,
                        &mut buffered_records,
                        &mut peak_buffered,
                        sink,
                    )?;
                    while let WorkerState::Busy(shard) = workers[worker] {
                        match transport.recv_line(worker, Duration::ZERO) {
                            Ok(line) => {
                                last_heard[worker] = Instant::now();
                                handle_line(
                                    &line,
                                    shard,
                                    worker,
                                    max_depth,
                                    &mut ranges,
                                    &mut frontier,
                                    &mut workers,
                                    &mut buffered_records,
                                    &mut peak_buffered,
                                    sink,
                                )?;
                            }
                            Err(TransportError::Timeout) => break,
                            Err(TransportError::Dead(_)) => {
                                lose_worker(
                                    transport,
                                    worker,
                                    &mut workers,
                                    &mut ranges,
                                    &mut pending,
                                    &mut buffered_records,
                                    &mut retasked,
                                    &mut lost_workers,
                                );
                                break;
                            }
                        }
                    }
                }
                Err(TransportError::Timeout) => {
                    if last_heard[worker].elapsed() >= options.timeout {
                        lose_worker(
                            transport,
                            worker,
                            &mut workers,
                            &mut ranges,
                            &mut pending,
                            &mut buffered_records,
                            &mut retasked,
                            &mut lost_workers,
                        );
                    }
                }
                Err(TransportError::Dead(_)) => {
                    lose_worker(
                        transport,
                        worker,
                        &mut workers,
                        &mut ranges,
                        &mut pending,
                        &mut buffered_records,
                        &mut retasked,
                        &mut lost_workers,
                    );
                }
            }
        }
    }

    // Every range is fully emitted. A surviving worker with more to say
    // broke protocol (e.g. a duplicate DONE) — check before closing.
    #[allow(clippy::needless_range_loop)] // workers + transport borrow together
    for worker in 0..n_workers {
        if matches!(workers[worker], WorkerState::Gone) {
            continue;
        }
        if let Ok(line) = transport.recv_line(worker, Duration::ZERO) {
            return Err(ShardError::Transport(format!(
                "worker {worker} sent an unexpected line after all ranges completed: {line}"
            )));
        }
    }

    let per_shard = ranges
        .iter()
        .map(|r| ShardStats {
            range: r.range.clone(),
            cells: r.received,
            function_calls: r.function_calls,
            cache_hits: 0,
            attempts: r.attempts.max(1),
        })
        .collect();
    Ok(ShardReport {
        per_shard,
        wall: start.elapsed(),
        retasked,
        lost_workers,
        peak_buffered_records: peak_buffered,
    })
}

/// Retires a dead worker: its in-flight range (if any) loses the current
/// attempt's partial state and goes back on the queue for a survivor.
/// Already-emitted records keep their `emitted` watermark — the survivor's
/// replay of that prefix is validated and skipped, never re-emitted.
#[allow(clippy::too_many_arguments)]
fn lose_worker<T: ShardTransport>(
    transport: &mut T,
    worker: usize,
    workers: &mut [WorkerState],
    ranges: &mut [RangeProgress],
    pending: &mut BTreeSet<usize>,
    buffered_records: &mut usize,
    retasked: &mut usize,
    lost_workers: &mut usize,
) {
    if let WorkerState::Busy(shard) = workers[worker] {
        let progress = &mut ranges[shard];
        *buffered_records -= progress.buffered.len();
        progress.buffered.clear();
        progress.received = 0;
        progress.function_calls = 0;
        pending.insert(shard);
        *retasked += 1;
    }
    workers[worker] = WorkerState::Gone;
    *lost_workers += 1;
    transport.kill(worker);
}

/// Validates and merges one line from the worker serving `shard`.
///
/// Records must arrive in exact `(graph_id, depth)` order — graph-index
/// major, depth minor, the order the unsharded generator emits — and the
/// `DONE` marker must match the tasked range with consistent cell and
/// function-call counts. Any disagreement is a hard
/// [`ShardError::Protocol`].
#[allow(clippy::too_many_arguments)]
fn handle_line<S>(
    line: &str,
    shard: usize,
    worker: usize,
    max_depth: usize,
    ranges: &mut [RangeProgress],
    frontier: &mut usize,
    workers: &mut [WorkerState],
    buffered_records: &mut usize,
    peak_buffered: &mut usize,
    sink: &mut S,
) -> Result<(), ShardError>
where
    S: FnMut(OptimalRecord) -> Result<(), String>,
{
    let fail = |message: String| ShardError::Protocol { shard, message };
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(());
    }
    match wire::message_type(line).map_err(|e| fail(e.to_string()))? {
        "RECORD" => {
            let record = wire::decode_record(line).map_err(|e| fail(e.to_string()))?;
            let progress = &mut ranges[shard];
            let cells = progress.range.len() * max_depth;
            if progress.received >= cells {
                return Err(fail(format!(
                    "more than {cells} records for {}..{}",
                    progress.range.start, progress.range.end
                )));
            }
            // Enforce the exact merge order up front: graph-index-major,
            // depth-minor — the order the unsharded generator emits.
            let expected_graph = progress.range.start + progress.received / max_depth;
            let expected_depth = 1 + progress.received % max_depth;
            if record.graph_id != expected_graph || record.depth != expected_depth {
                return Err(fail(format!(
                    "record {} out of order: got (graph {}, depth {}), \
                     expected (graph {expected_graph}, depth {expected_depth})",
                    progress.received, record.graph_id, record.depth
                )));
            }
            progress.function_calls += record.function_calls;
            if progress.received < progress.emitted {
                // A re-tasked survivor replaying the already-emitted
                // prefix: coordinates checked above, record dropped.
            } else if shard == *frontier {
                sink(record).map_err(ShardError::Sink)?;
                progress.emitted += 1;
            } else {
                progress.buffered.push(record);
                *buffered_records += 1;
                *peak_buffered = (*peak_buffered).max(*buffered_records);
            }
            progress.received += 1;
            Ok(())
        }
        "DONE" => {
            let marker = wire::decode_done(line).map_err(|e| fail(e.to_string()))?;
            let progress = &mut ranges[shard];
            if marker.range != progress.range {
                return Err(fail(format!(
                    "DONE for {}..{} but this shard was tasked {}..{}",
                    marker.range.start, marker.range.end, progress.range.start, progress.range.end
                )));
            }
            let cells = progress.range.len() * max_depth;
            if progress.received != cells {
                return Err(fail(format!(
                    "DONE after {} of {cells} records",
                    progress.received
                )));
            }
            if marker.cells != cells {
                return Err(fail(format!(
                    "DONE reports {} cells but {cells} records arrived",
                    marker.cells
                )));
            }
            if marker.function_calls != progress.function_calls {
                return Err(fail(format!(
                    "DONE reports {} function calls but the records sum to {}",
                    marker.function_calls, progress.function_calls
                )));
            }
            progress.done = true;
            workers[worker] = WorkerState::Idle;
            advance_frontier(ranges, frontier, max_depth, buffered_records, sink)
        }
        "ERR" => Err(fail(format!("worker answered: {line}"))),
        other => Err(fail(format!(
            "unexpected {other} message in a shard stream"
        ))),
    }
}

/// Pushes the emit frontier forward: drains the (new) frontier range's
/// buffered records to the sink, and steps past every range that is both
/// done and fully emitted.
fn advance_frontier<S>(
    ranges: &mut [RangeProgress],
    frontier: &mut usize,
    max_depth: usize,
    buffered_records: &mut usize,
    sink: &mut S,
) -> Result<(), ShardError>
where
    S: FnMut(OptimalRecord) -> Result<(), String>,
{
    while *frontier < ranges.len() {
        let progress = &mut ranges[*frontier];
        if !progress.buffered.is_empty() {
            *buffered_records -= progress.buffered.len();
            for record in progress.buffered.drain(..) {
                sink(record).map_err(ShardError::Sink)?;
                progress.emitted += 1;
            }
        }
        if progress.done && progress.emitted == progress.range.len() * max_depth {
            *frontier += 1;
        } else {
            break;
        }
    }
    Ok(())
}

/// Runs a sharded corpus generation over a [`ShardTransport`] and collects
/// the merged stream into a [`ParameterDataset`] — [`run_streaming`] with
/// an in-memory sink and default [`StreamOptions`], for callers (tests,
/// `run_wire` parity checks, small corpora) that want the dataset whole.
///
/// Graphs never travel: coordinator and workers derive the identical
/// ensemble from the spec's seed, so the wire carries records only.
///
/// # Errors
///
/// Same contract as [`run_streaming`].
pub fn run_wire<T: ShardTransport>(
    config: &DataGenConfig,
    plan: &ShardPlan,
    transport: &mut T,
) -> Result<(ParameterDataset, ShardReport), ShardError> {
    run_wire_with(config, plan, transport, &StreamOptions::default())
}

/// [`run_wire`] with explicit [`StreamOptions`] (timeout, dispatch
/// window).
///
/// # Errors
///
/// Same contract as [`run_streaming`].
pub fn run_wire_with<T: ShardTransport>(
    config: &DataGenConfig,
    plan: &ShardPlan,
    transport: &mut T,
    options: &StreamOptions,
) -> Result<(ParameterDataset, ShardReport), ShardError> {
    plan.check_spec(config)?;
    let graphs = corpus::ensemble(config);
    let mut records = Vec::with_capacity(config.n_graphs * config.max_depth);
    let report = run_streaming(config, plan, transport, options, &mut |record| {
        records.push(record);
        Ok(())
    })?;
    let dataset = ParameterDataset::from_parts(graphs, records, config.max_depth)?;
    Ok((dataset, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LoopbackTransport;

    #[test]
    fn split_even_tiles_exactly() {
        for (n, k) in [(10, 3), (24, 4), (5, 1), (3, 7), (0, 2), (1, 1)] {
            let plan = ShardPlan::split_even(n, k);
            assert_eq!(plan.shards(), k.max(1));
            assert_eq!(plan.n_graphs(), n);
            // Re-validating the generated ranges proves the invariants.
            let revalidated = ShardPlan::from_ranges(n, plan.ranges().to_vec()).unwrap();
            assert_eq!(revalidated, plan);
            // Near-equal: sizes differ by at most one.
            let sizes: Vec<usize> = plan.ranges().iter().map(std::ops::Range::len).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "{n} over {k}: sizes {sizes:?}");
        }
        assert_eq!(
            ShardPlan::split_even(7, 0).ranges(),
            ShardPlan::split_even(7, 1).ranges(),
            "0 shards clamps to 1"
        );
    }

    #[test]
    fn from_ranges_accepts_empty_and_singleton_ranges() {
        let plan = ShardPlan::from_ranges(4, vec![0..0, 0..1, 1..1, 1..4, 4..4]).unwrap();
        assert_eq!(plan.shards(), 5);
        assert!(ShardPlan::from_ranges(0, vec![]).is_ok());
        assert!(ShardPlan::from_ranges(0, vec![0..0, 0..0]).is_ok());
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // single-range *plans* are the point
    fn from_ranges_rejects_invalid_partitions() {
        // Gap, overlap, short cover, over-cover, inverted, empty-for-nonempty.
        assert!(ShardPlan::from_ranges(4, vec![0..1, 2..4]).is_err());
        assert!(ShardPlan::from_ranges(4, vec![0..2, 1..4]).is_err());
        assert!(ShardPlan::from_ranges(4, vec![0..3]).is_err());
        assert!(ShardPlan::from_ranges(4, vec![0..5]).is_err());
        #[allow(clippy::reversed_empty_ranges)]
        let inverted = ShardPlan::from_ranges(4, vec![3..0, 0..4]);
        assert!(inverted.is_err());
        assert!(ShardPlan::from_ranges(4, vec![]).is_err());
        assert!(
            ShardPlan::from_ranges(4, vec![1..4]).is_err(),
            "must start at 0"
        );
    }

    #[test]
    fn plan_spec_mismatch_is_rejected() {
        let config = DataGenConfig {
            n_graphs: 3,
            ..DataGenConfig::quick()
        };
        let plan = ShardPlan::split_even(4, 2);
        let cache = Level1Cache::new();
        assert!(matches!(
            run_local(&config, &plan, 1, &cache),
            Err(ShardError::Plan(_))
        ));
        let mut transport = LoopbackTransport::new(1, 1);
        assert!(matches!(
            run_wire(&config, &plan, &mut transport),
            Err(ShardError::Plan(_))
        ));
    }

    #[test]
    fn empty_plan_completes_without_workers_doing_anything() {
        let config = DataGenConfig {
            n_graphs: 0,
            ..DataGenConfig::quick()
        };
        let plan = ShardPlan::from_ranges(0, vec![]).unwrap();
        let mut transport = LoopbackTransport::new(1, 1);
        let (dataset, report) = run_wire(&config, &plan, &mut transport).unwrap();
        assert_eq!(dataset.records().len(), 0);
        assert_eq!(report.cells(), 0);
        assert_eq!(report.peak_buffered_records, 0);
    }
}
