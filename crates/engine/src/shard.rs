//! Sharded corpus generation: split the §III-A ensemble over workers by
//! graph-index range, with a bit-parity guarantee.
//!
//! ROADMAP step (c): corpus generation scales past one machine by handing
//! each worker a contiguous range of global graph indices. The pieces were
//! already in place — [`crate::corpus::solve_range`] seeds every cell from
//! its *global* index, the `QW1` wire format moves records bit-exactly, and
//! [`crate::persist::save_merge`] unions cache files — so sharding is pure
//! composition:
//!
//! * [`ShardPlan`] — a validated partition of `0..n_graphs` into
//!   contiguous, non-overlapping, covering index ranges (empty and
//!   singleton ranges included),
//! * [`run_local`] — one [`crate::corpus`] worker per range, each on its
//!   own engine/pool: the single-process rehearsal of the multi-machine
//!   topology, and what the `qaoa-shard` binary drives,
//! * [`run_wire`] — the same plan executed through the `QW1` protocol: the
//!   coordinator sends each worker a `SHARD` (corpus spec) line and a
//!   `RANGE` line, and reads `RECORD` lines plus one `DONE` marker back
//!   (see [`crate::server`], which speaks the worker side),
//! * [`loopback_transport`] — an in-process [`crate::server::serve`] worker
//!   per shard, for tests and single-machine wire rehearsals.
//!
//! # The bit-parity guarantee
//!
//! For a fixed corpus spec, **any** valid plan at **any** worker/thread
//! count merges to output bit-identical to the unsharded run:
//!
//! * every `(graph, depth ≥ 2)` cell draws from an RNG derived from the
//!   *global* graph index, never from shard-local position,
//! * every depth-1 cell is a pure function of
//!   `(master seed, canonical class, restarts)` — solved on the canonical
//!   representative, seeded from the class hash — so it does not matter
//!   *which* shard solves a class first,
//! * records are merged in range order (= graph-index order), exactly the
//!   order the unsharded generator emits,
//! * per-shard caches union into one entry set equal to the unsharded
//!   run's, so a merged cache file ([`crate::persist::save_merge`]) is
//!   byte-identical too.
//!
//! `tests/tests/shard.rs` pins the property down with a mini-proptest over
//! arbitrary partitions; CI diffs `qaoa-shard` output against the
//! unsharded `table1` corpus byte-for-byte.

use std::fmt;
use std::ops::Range;
use std::time::{Duration, Instant};

use qaoa::datagen::{DataGenConfig, OptimalRecord, ParameterDataset};
use qaoa::QaoaError;

use crate::batch::Engine;
use crate::cache::Level1Cache;
use crate::corpus;
use crate::wire;

/// A failed shard plan, protocol exchange, or underlying solve.
#[derive(Debug)]
pub enum ShardError {
    /// The plan is not a valid partition (or does not match the spec).
    Plan(String),
    /// A wire worker broke protocol (bad line, wrong/duplicate `DONE`,
    /// out-of-order records, or an in-band `ERR`).
    Protocol {
        /// Index of the offending shard within the plan.
        shard: usize,
        /// What went wrong.
        message: String,
    },
    /// A local solve failed.
    Solve(QaoaError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Plan(message) => write!(f, "shard plan: {message}"),
            ShardError::Protocol { shard, message } => {
                write!(f, "shard {shard}: {message}")
            }
            ShardError::Solve(e) => write!(f, "shard solve: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<QaoaError> for ShardError {
    fn from(e: QaoaError) -> Self {
        ShardError::Solve(e)
    }
}

/// A validated partition of `0..n_graphs` into contiguous index ranges.
///
/// Invariants (enforced by both constructors): ranges are in ascending
/// order, non-overlapping, and cover `0..n_graphs` exactly — every global
/// graph index belongs to precisely one range. Empty ranges are legal
/// anywhere (a shard may simply have nothing to do), which is what lets
/// [`ShardPlan::split_even`] hand out more shards than graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    n_graphs: usize,
    ranges: Vec<Range<usize>>,
}

impl ShardPlan {
    /// Splits `0..n_graphs` into `shards` near-equal contiguous ranges
    /// (the first `n_graphs % shards` ranges hold one extra graph). A
    /// `shards` of 0 is treated as 1.
    #[must_use]
    pub fn split_even(n_graphs: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let base = n_graphs / shards;
        let extra = n_graphs % shards;
        let mut ranges = Vec::with_capacity(shards);
        let mut cursor = 0;
        for i in 0..shards {
            let len = base + usize::from(i < extra);
            ranges.push(cursor..cursor + len);
            cursor += len;
        }
        Self { n_graphs, ranges }
    }

    /// Validates a caller-supplied partition of `0..n_graphs`.
    ///
    /// # Errors
    ///
    /// Rejects inverted ranges, gaps, overlaps, and partitions that do not
    /// cover `0..n_graphs` exactly. An empty range list is valid only for
    /// an empty ensemble.
    pub fn from_ranges(n_graphs: usize, ranges: Vec<Range<usize>>) -> Result<Self, ShardError> {
        let mut cursor = 0;
        for (i, range) in ranges.iter().enumerate() {
            if range.start > range.end {
                return Err(ShardError::Plan(format!(
                    "range {i} ({}..{}) is inverted",
                    range.start, range.end
                )));
            }
            if range.start != cursor {
                return Err(ShardError::Plan(format!(
                    "range {i} starts at {} but the previous range ended at {cursor} \
                     (ranges must tile 0..{n_graphs} without gaps or overlaps)",
                    range.start
                )));
            }
            cursor = range.end;
        }
        if cursor != n_graphs {
            return Err(ShardError::Plan(format!(
                "ranges cover 0..{cursor} but the ensemble has {n_graphs} graphs"
            )));
        }
        Ok(Self { n_graphs, ranges })
    }

    /// The partitioned ranges, in ascending graph-index order.
    #[must_use]
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Number of shards (ranges) in the plan.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.ranges.len()
    }

    /// Size of the ensemble this plan partitions.
    #[must_use]
    pub fn n_graphs(&self) -> usize {
        self.n_graphs
    }

    fn check_spec(&self, config: &DataGenConfig) -> Result<(), ShardError> {
        if self.n_graphs != config.n_graphs {
            return Err(ShardError::Plan(format!(
                "plan partitions {} graphs but the spec generates {}",
                self.n_graphs, config.n_graphs
            )));
        }
        Ok(())
    }
}

/// Accounting for one shard of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// The global graph-index range this shard covered.
    pub range: Range<usize>,
    /// `(graph, depth)` cells produced.
    pub cells: usize,
    /// Total function calls across the shard's records.
    pub function_calls: usize,
    /// Depth-1 solves served from cache (0 for wire shards, whose workers
    /// do not report hit counts through `DONE`).
    pub cache_hits: usize,
}

/// Accounting for one sharded corpus run.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Per-shard stats, in plan order.
    pub per_shard: Vec<ShardStats>,
    /// End-to-end coordinator wall-clock time.
    pub wall: Duration,
}

impl ShardReport {
    /// Total `(graph, depth)` cells across all shards.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.per_shard.iter().map(|s| s.cells).sum()
    }

    /// Total function calls across all shards.
    #[must_use]
    pub fn function_calls(&self) -> usize {
        self.per_shard.iter().map(|s| s.function_calls).sum()
    }

    /// Total depth-1 cache hits across all shards.
    #[must_use]
    pub fn cache_hits(&self) -> usize {
        self.per_shard.iter().map(|s| s.cache_hits).sum()
    }

    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} shards / {} cells in {:.2?} ({} level-1 cache hits, {} fn calls)",
            self.per_shard.len(),
            self.cells(),
            self.wall,
            self.cache_hits(),
            self.function_calls(),
        )
    }
}

/// Runs a sharded corpus generation in-process: one
/// [`corpus::solve_range`] worker per range, each on its own engine (with
/// `threads_per_shard` pool workers), merged in graph-index order.
///
/// `shared_cache` plays the coordinator's depth-1 cache: each shard engine
/// is pre-warmed from it before solving and folded back into it after, so
/// canonical classes spanning shard boundaries are solved once per run —
/// and a caller that loaded the cache from a `--cache-file` gets the same
/// warm-start any unsharded driver gets. Pass a fresh
/// [`Level1Cache::new()`] when no persistence is wanted.
///
/// The merged dataset is **bit-identical** to
/// [`corpus::generate`] with the same spec, for any valid plan, any
/// `threads_per_shard`, and any warm/cold cache state.
///
/// # Errors
///
/// Rejects a plan that does not match the spec; propagates solve errors.
pub fn run_local(
    config: &DataGenConfig,
    plan: &ShardPlan,
    threads_per_shard: usize,
    shared_cache: &Level1Cache,
) -> Result<(ParameterDataset, ShardReport), ShardError> {
    plan.check_spec(config)?;
    let start = Instant::now();
    let graphs = corpus::ensemble(config);
    let mut records = Vec::with_capacity(config.n_graphs * config.max_depth);
    let mut per_shard = Vec::with_capacity(plan.shards());
    for range in plan.ranges() {
        let engine = Engine::new(threads_per_shard);
        engine.cache().merge_from(shared_cache);
        let (shard_records, report) = corpus::solve_range(&graphs, range.clone(), config, &engine)?;
        shared_cache.merge_from(engine.cache());
        per_shard.push(ShardStats {
            range: range.clone(),
            cells: report.cells,
            function_calls: report.function_calls,
            cache_hits: report.cache_hits,
        });
        records.extend(shard_records);
    }
    let dataset = ParameterDataset::from_parts(graphs, records, config.max_depth)?;
    Ok((
        dataset,
        ShardReport {
            per_shard,
            wall: start.elapsed(),
        },
    ))
}

/// Runs a sharded corpus generation through the `QW1` wire protocol.
///
/// For each range in the plan, the coordinator composes a request script —
/// one `SHARD` line carrying the corpus spec, one `RANGE` line tasking the
/// index range — and hands it to `transport(shard_index, script)`, which
/// models one worker exchange (piping to a `qaoa-serve` process, an
/// in-process [`loopback_transport`] worker, a socket…). The response must
/// contain the range's `RECORD` lines in graph-index order followed by
/// exactly one matching `DONE` marker; anything else — an in-band `ERR`, a
/// wrong or duplicate `DONE`, missing or out-of-order records — is a
/// [`ShardError::Protocol`].
///
/// Graphs never travel: coordinator and workers derive the identical
/// ensemble from the spec's seed, so the exchange is records-only.
///
/// # Errors
///
/// Rejects plan/spec mismatches and every protocol violation above;
/// propagates transport errors.
pub fn run_wire<T>(
    config: &DataGenConfig,
    plan: &ShardPlan,
    transport: &mut T,
) -> Result<(ParameterDataset, ShardReport), ShardError>
where
    T: FnMut(usize, &str) -> Result<String, String>,
{
    plan.check_spec(config)?;
    let start = Instant::now();
    let graphs = corpus::ensemble(config);
    let mut records = Vec::with_capacity(config.n_graphs * config.max_depth);
    let mut per_shard = Vec::with_capacity(plan.shards());
    for (shard, range) in plan.ranges().iter().enumerate() {
        let script = format!(
            "{}\n{}\n",
            wire::encode_shard(config),
            wire::encode_range(range)
        );
        let response = transport(shard, &script).map_err(|message| ShardError::Protocol {
            shard,
            message: format!("transport failed: {message}"),
        })?;
        let (shard_records, stats) =
            parse_worker_response(shard, range, config.max_depth, &response)?;
        per_shard.push(stats);
        records.extend(shard_records);
    }
    let dataset = ParameterDataset::from_parts(graphs, records, config.max_depth)?;
    Ok((
        dataset,
        ShardReport {
            per_shard,
            wall: start.elapsed(),
        },
    ))
}

/// Validates one worker's response: `RECORD` lines in exact `(graph_id,
/// depth)` order for the tasked range, then exactly one matching `DONE`.
fn parse_worker_response(
    shard: usize,
    range: &Range<usize>,
    max_depth: usize,
    response: &str,
) -> Result<(Vec<OptimalRecord>, ShardStats), ShardError> {
    let fail = |message: String| ShardError::Protocol { shard, message };
    let mut records: Vec<OptimalRecord> = Vec::with_capacity(range.len() * max_depth);
    let mut done: Option<wire::RangeDone> = None;
    for line in response.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match wire::message_type(line).map_err(|e| fail(e.to_string()))? {
            "RECORD" => {
                if done.is_some() {
                    return Err(fail("RECORD after DONE".into()));
                }
                let record = wire::decode_record(line).map_err(|e| fail(e.to_string()))?;
                // Enforce the exact merge order up front: graph-index-major,
                // depth-minor — the order the unsharded generator emits.
                let expected_graph = range.start + records.len() / max_depth;
                let expected_depth = 1 + records.len() % max_depth;
                if record.graph_id != expected_graph || record.depth != expected_depth {
                    return Err(fail(format!(
                        "record {} out of order: got (graph {}, depth {}), \
                         expected (graph {expected_graph}, depth {expected_depth})",
                        records.len(),
                        record.graph_id,
                        record.depth
                    )));
                }
                records.push(record);
            }
            "DONE" => {
                let marker = wire::decode_done(line).map_err(|e| fail(e.to_string()))?;
                if marker.range != *range {
                    return Err(fail(format!(
                        "DONE for {}..{} but this shard was tasked {}..{}",
                        marker.range.start, marker.range.end, range.start, range.end
                    )));
                }
                if done.is_some() {
                    return Err(fail("duplicate DONE".into()));
                }
                done = Some(marker);
            }
            "ERR" => {
                return Err(fail(format!("worker answered: {line}")));
            }
            other => {
                return Err(fail(format!(
                    "unexpected {other} message in a shard response"
                )));
            }
        }
    }
    let done = done.ok_or_else(|| fail("response ended without DONE".into()))?;
    if records.len() != range.len() * max_depth {
        return Err(fail(format!(
            "expected {} records for {}..{} at max depth {max_depth}, got {}",
            range.len() * max_depth,
            range.start,
            range.end,
            records.len()
        )));
    }
    if done.cells != records.len() {
        return Err(fail(format!(
            "DONE reports {} cells but {} records arrived",
            done.cells,
            records.len()
        )));
    }
    let function_calls: usize = records.iter().map(|r| r.function_calls).sum();
    if done.function_calls != function_calls {
        return Err(fail(format!(
            "DONE reports {} function calls but the records sum to {function_calls}",
            done.function_calls
        )));
    }
    Ok((
        records,
        ShardStats {
            range: range.clone(),
            cells: done.cells,
            function_calls,
            cache_hits: 0,
        },
    ))
}

/// A [`run_wire`] transport backed by one in-process
/// [`crate::server::serve`] worker per exchange — each shard gets a fresh
/// engine with `threads` pool workers, exactly like piping the script to a
/// separate `qaoa-serve` process. Used by tests and single-machine wire
/// rehearsals.
pub fn loopback_transport(threads: usize) -> impl FnMut(usize, &str) -> Result<String, String> {
    move |_shard, script: &str| {
        let engine = Engine::new(threads);
        let mut out = Vec::new();
        crate::server::serve(
            std::io::Cursor::new(script.to_string()),
            &mut out,
            &engine,
            &optimize::Lbfgsb::default(),
            &crate::batch::BatchConfig::default(),
        )
        .map_err(|e| e.to_string())?;
        String::from_utf8(out).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_even_tiles_exactly() {
        for (n, k) in [(10, 3), (24, 4), (5, 1), (3, 7), (0, 2), (1, 1)] {
            let plan = ShardPlan::split_even(n, k);
            assert_eq!(plan.shards(), k.max(1));
            assert_eq!(plan.n_graphs(), n);
            // Re-validating the generated ranges proves the invariants.
            let revalidated = ShardPlan::from_ranges(n, plan.ranges().to_vec()).unwrap();
            assert_eq!(revalidated, plan);
            // Near-equal: sizes differ by at most one.
            let sizes: Vec<usize> = plan.ranges().iter().map(std::ops::Range::len).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "{n} over {k}: sizes {sizes:?}");
        }
        assert_eq!(
            ShardPlan::split_even(7, 0).ranges(),
            ShardPlan::split_even(7, 1).ranges(),
            "0 shards clamps to 1"
        );
    }

    #[test]
    fn from_ranges_accepts_empty_and_singleton_ranges() {
        let plan = ShardPlan::from_ranges(4, vec![0..0, 0..1, 1..1, 1..4, 4..4]).unwrap();
        assert_eq!(plan.shards(), 5);
        assert!(ShardPlan::from_ranges(0, vec![]).is_ok());
        assert!(ShardPlan::from_ranges(0, vec![0..0, 0..0]).is_ok());
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // single-range *plans* are the point
    fn from_ranges_rejects_invalid_partitions() {
        // Gap, overlap, short cover, over-cover, inverted, empty-for-nonempty.
        assert!(ShardPlan::from_ranges(4, vec![0..1, 2..4]).is_err());
        assert!(ShardPlan::from_ranges(4, vec![0..2, 1..4]).is_err());
        assert!(ShardPlan::from_ranges(4, vec![0..3]).is_err());
        assert!(ShardPlan::from_ranges(4, vec![0..5]).is_err());
        #[allow(clippy::reversed_empty_ranges)]
        let inverted = ShardPlan::from_ranges(4, vec![3..0, 0..4]);
        assert!(inverted.is_err());
        assert!(ShardPlan::from_ranges(4, vec![]).is_err());
        assert!(
            ShardPlan::from_ranges(4, vec![1..4]).is_err(),
            "must start at 0"
        );
    }

    #[test]
    fn plan_spec_mismatch_is_rejected() {
        let config = DataGenConfig {
            n_graphs: 3,
            ..DataGenConfig::quick()
        };
        let plan = ShardPlan::split_even(4, 2);
        let cache = Level1Cache::new();
        assert!(matches!(
            run_local(&config, &plan, 1, &cache),
            Err(ShardError::Plan(_))
        ));
        let mut transport = loopback_transport(1);
        assert!(matches!(
            run_wire(&config, &plan, &mut transport),
            Err(ShardError::Plan(_))
        ));
    }
}
