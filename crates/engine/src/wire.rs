//! Versioned, line-delimited wire format for engine jobs and results.
//!
//! One message per line, every line self-identifying:
//!
//! ```text
//! line     := "QW1" SP type SP payload
//! type     := "KEY" | "RECORD" | "JOB" | "OUTCOME" | "REPORT" | "ENTRY"
//!           | "SHARD" | "RANGE" | "DONE" | "RUN" | "ERR"
//!           | "PREDICT" | "PREDICTED"
//! KEY      := n_nodes SP edges               — qaoa::canonical::CanonicalGraphKey
//! RECORD   := graph_id SP depth SP f64 SP f64 SP fc SP floats SP floats
//!                                            — qaoa::datagen::OptimalRecord
//! JOB      := depth SP restarts SP n_nodes SP edges
//!                                            — engine::Job
//! OUTCOME  := floats SP f64 SP f64 SP fc SP gc SP term
//!                                            — qaoa::InstanceOutcome
//! REPORT   := threads SP wall_ns SP fc SP gc SP hits SP misses SP jobstats
//!                                            — engine::BatchReport
//! ENTRY    := restarts SP KEY-payload SP OUTCOME-payload
//!                                            — one persisted cache entry
//! SHARD    := n_graphs SP n_nodes SP edge_p(f64) SP max_depth SP restarts
//!             SP seed SP trend_margin(f64)   — corpus spec opening a shard
//!                                              session (→ DataGenConfig)
//! RANGE    := start SP end                   — half-open global graph-index
//!                                              range tasked to a worker
//! DONE     := start SP end SP cells SP fc    — worker's completion marker
//!                                              for one finished RANGE
//! PREDICT  := id SP depth SP restarts SP n_nodes SP edges
//!                                            — parameter request: answer
//!                                              initialization parameters
//!                                              for this graph at this depth
//! PREDICTED:= id SP tier SP floats           — the answer: tier 1 (cached
//!                                              exact optimum), 2 (model
//!                                              prediction) or 3 (optimized
//!                                              with warm start)
//! RUN      := "-"                            — server flush sentinel
//! ERR      := free text                      — server-side failure notice
//! edges    := "-" | edge ("," edge)*   edge := u "-" v [":" hex64]
//! floats   := "-" | hex64 ("," hex64)*
//! f64      := hex64 (IEEE-754 bits, 16 lowercase hex digits)
//! jobstats := "-" | stat ("," stat)*   stat := wall_ns ":" fc ":" gc ":" ("h"|"m")
//! ```
//!
//! Floats travel as the hex of their IEEE-754 bit pattern, so every
//! round-trip is **bit-exact** — the property that lets a persisted cache
//! preserve the engine's serial == parallel parity guarantee. An omitted
//! edge weight (`u-v` with no `:hex64`) decodes as 1.0, which keeps
//! hand-written job lines readable (see the README's serve example).
//!
//! The vendored `serde` stand-ins are no-op markers (no real
//! serialization), so the codec is hand-rolled here against the stable
//! accessors the data types expose ([`CanonicalGraphKey::edges`],
//! [`Termination::as_token`], public fields elsewhere). Bump [`MAGIC`]
//! whenever any payload changes shape; decoders reject other versions,
//! which the persistence layer ([`crate::persist`]) turns into
//! "discard and regenerate".

use std::fmt;
use std::time::Duration;

use graphs::Graph;
use optimize::Termination;
use qaoa::canonical::CanonicalGraphKey;
use qaoa::datagen::{DataGenConfig, OptimalRecord};
use qaoa::InstanceOutcome;

use crate::batch::{BatchReport, Job, JobStats};
use crate::cache::Level1Key;

/// Version tag prefixing every wire line.
pub const MAGIC: &str = "QW1";

/// A malformed or version-mismatched wire line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Human-readable description of the first problem found.
    pub message: String,
}

impl WireError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire: {}", self.message)
    }
}

impl std::error::Error for WireError {}

// --- scalar helpers --------------------------------------------------------

pub(crate) fn fmt_f64(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

pub(crate) fn parse_f64(s: &str) -> Result<f64, WireError> {
    let bits = u64::from_str_radix(s, 16)
        .map_err(|e| WireError::new(format!("bad f64 bits `{s}`: {e}")))?;
    Ok(f64::from_bits(bits))
}

pub(crate) fn parse_int<T: std::str::FromStr<Err = std::num::ParseIntError>>(
    s: &str,
    what: &str,
) -> Result<T, WireError> {
    s.parse()
        .map_err(|e| WireError::new(format!("bad {what} `{s}`: {e}")))
}

pub(crate) fn fmt_floats(v: &[f64]) -> String {
    if v.is_empty() {
        return "-".into();
    }
    v.iter().map(|&x| fmt_f64(x)).collect::<Vec<_>>().join(",")
}

pub(crate) fn parse_floats(s: &str) -> Result<Vec<f64>, WireError> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',').map(parse_f64).collect()
}

fn fmt_edges(edges: impl Iterator<Item = (u32, u32, u64)>) -> String {
    let parts: Vec<String> = edges
        .map(|(u, v, bits)| format!("{u}-{v}:{bits:016x}"))
        .collect();
    if parts.is_empty() {
        "-".into()
    } else {
        parts.join(",")
    }
}

fn parse_edges(s: &str) -> Result<Vec<(u32, u32, u64)>, WireError> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|part| {
            let (endpoints, bits) = match part.split_once(':') {
                Some((e, w)) => (
                    e,
                    u64::from_str_radix(w, 16)
                        .map_err(|e| WireError::new(format!("bad weight in `{part}`: {e}")))?,
                ),
                // Unweighted shorthand for hand-written job lines.
                None => (part, 1.0f64.to_bits()),
            };
            let (u, v) = endpoints
                .split_once('-')
                .ok_or_else(|| WireError::new(format!("bad edge `{part}` (expected u-v)")))?;
            Ok((
                parse_int::<u32>(u, "edge endpoint")?,
                parse_int::<u32>(v, "edge endpoint")?,
                bits,
            ))
        })
        .collect()
}

/// Strips the magic and the expected type token, returning the payload
/// fields.
fn payload<'a>(line: &'a str, expected: &str) -> Result<Vec<&'a str>, WireError> {
    let mut fields = line.split_whitespace();
    match fields.next() {
        Some(MAGIC) => {}
        Some(other) => {
            return Err(WireError::new(format!(
                "unsupported wire version `{other}` (this codec speaks {MAGIC})"
            )))
        }
        None => return Err(WireError::new("empty line")),
    }
    match fields.next() {
        Some(t) if t == expected => {}
        Some(other) => {
            return Err(WireError::new(format!(
                "expected {expected} message, got {other}"
            )))
        }
        None => return Err(WireError::new("missing message type")),
    }
    Ok(fields.collect())
}

fn expect_fields<'a>(
    fields: Vec<&'a str>,
    n: usize,
    what: &str,
) -> Result<Vec<&'a str>, WireError> {
    if fields.len() == n {
        Ok(fields)
    } else {
        Err(WireError::new(format!(
            "{what} payload needs {n} fields, got {}",
            fields.len()
        )))
    }
}

/// The message type token of a line, for dispatch without full decoding.
///
/// # Errors
///
/// Rejects lines whose version tag is not [`MAGIC`].
pub fn message_type(line: &str) -> Result<&str, WireError> {
    let mut fields = line.split_whitespace();
    match fields.next() {
        Some(MAGIC) => {}
        Some(other) => {
            return Err(WireError::new(format!(
                "unsupported wire version `{other}` (this codec speaks {MAGIC})"
            )))
        }
        None => return Err(WireError::new("empty line")),
    }
    fields
        .next()
        .ok_or_else(|| WireError::new("missing message type"))
}

// --- KEY -------------------------------------------------------------------

/// Encodes a canonical graph key as one `KEY` line.
#[must_use]
pub fn encode_key(key: &CanonicalGraphKey) -> String {
    format!("{MAGIC} KEY {}", key_payload(key))
}

fn key_payload(key: &CanonicalGraphKey) -> String {
    format!(
        "{} {}",
        key.n_nodes(),
        fmt_edges(key.edges().iter().copied())
    )
}

/// Decodes a `KEY` line.
///
/// # Errors
///
/// Rejects malformed lines and edge lists violating the canonical-key
/// invariants (see [`CanonicalGraphKey::from_parts`]).
pub fn decode_key(line: &str) -> Result<CanonicalGraphKey, WireError> {
    let fields = expect_fields(payload(line, "KEY")?, 2, "KEY")?;
    key_from_fields(&fields)
}

fn key_from_fields(fields: &[&str]) -> Result<CanonicalGraphKey, WireError> {
    let n_nodes: usize = parse_int(fields[0], "n_nodes")?;
    let edges = parse_edges(fields[1])?;
    CanonicalGraphKey::from_parts(n_nodes, edges).map_err(WireError::new)
}

// --- RECORD ----------------------------------------------------------------

/// Encodes a corpus record as one `RECORD` line.
#[must_use]
pub fn encode_record(record: &OptimalRecord) -> String {
    format!(
        "{MAGIC} RECORD {} {} {} {} {} {} {}",
        record.graph_id,
        record.depth,
        fmt_f64(record.expectation),
        fmt_f64(record.approximation_ratio),
        record.function_calls,
        fmt_floats(&record.gammas),
        fmt_floats(&record.betas),
    )
}

/// Decodes a `RECORD` line.
///
/// # Errors
///
/// Rejects malformed lines.
pub fn decode_record(line: &str) -> Result<OptimalRecord, WireError> {
    let f = expect_fields(payload(line, "RECORD")?, 7, "RECORD")?;
    Ok(OptimalRecord {
        graph_id: parse_int(f[0], "graph_id")?,
        depth: parse_int(f[1], "depth")?,
        expectation: parse_f64(f[2])?,
        approximation_ratio: parse_f64(f[3])?,
        function_calls: parse_int(f[4], "function_calls")?,
        gammas: parse_floats(f[5])?,
        betas: parse_floats(f[6])?,
    })
}

// --- JOB -------------------------------------------------------------------

/// Encodes a batch job as one `JOB` line.
///
/// # Errors
///
/// Rejects a graph whose node indices overflow the wire format's `u32`
/// endpoint domain (the format caps registers far beyond anything a
/// statevector can simulate, so this only fires on corrupt input).
pub fn encode_job(job: &Job) -> Result<String, WireError> {
    Ok(format!(
        "{MAGIC} JOB {} {} {} {}",
        job.depth,
        job.restarts,
        job.graph.n_nodes(),
        fmt_edges(graph_wire_edges(&job.graph)?.into_iter()),
    ))
}

/// A graph's edges in the wire `(u32, u32, weight bits)` domain.
///
/// # Errors
///
/// Rejects node indices overflowing the wire format's `u32` endpoint domain
/// (the format caps registers far beyond anything a statevector can
/// simulate, so this only fires on corrupt input).
fn graph_wire_edges(graph: &Graph) -> Result<Vec<(u32, u32, u64)>, WireError> {
    let mut edges = Vec::with_capacity(graph.edges().len());
    for e in graph.edges() {
        let u = u32::try_from(e.u)
            .map_err(|_| WireError::new(format!("edge endpoint {} overflows u32", e.u)))?;
        let v = u32::try_from(e.v)
            .map_err(|_| WireError::new(format!("edge endpoint {} overflows u32", e.v)))?;
        edges.push((u, v, e.weight.to_bits()));
    }
    Ok(edges)
}

/// A wire `u32` endpoint in the `Graph` index domain. Infallible on every
/// target of 32 bits or more; checked anyway so a narrower port fails
/// loudly instead of aliasing vertices.
fn endpoint(x: u32) -> Result<usize, WireError> {
    usize::try_from(x).map_err(|_| WireError::new(format!("edge endpoint {x} overflows usize")))
}

/// Decodes a `JOB` line, validating it is *executable*: depth and restarts
/// at least 1, at least 2 nodes and 1 edge (the QAOA objective needs a
/// non-empty graph). Catching these at decode time lets the server answer
/// per line instead of failing a whole batch mid-run.
///
/// # Errors
///
/// Rejects malformed or non-executable jobs.
pub fn decode_job(line: &str) -> Result<Job, WireError> {
    let f = expect_fields(payload(line, "JOB")?, 4, "JOB")?;
    let depth: usize = parse_int(f[0], "depth")?;
    let restarts: usize = parse_int(f[1], "restarts")?;
    if depth == 0 || restarts == 0 {
        return Err(WireError::new("JOB needs depth >= 1 and restarts >= 1"));
    }
    let graph = executable_graph(f[2], f[3], "JOB")?;
    Ok(Job::new(graph, depth, restarts))
}

/// Decodes `n_nodes` + `edges` payload fields into an *executable* graph:
/// at least 2 nodes and 1 edge (the QAOA objective needs a non-empty
/// graph), finite weights, no duplicate edges. Shared by `JOB` and
/// `PREDICT` so both verbs accept exactly the same graphs.
fn executable_graph(n_nodes: &str, edges: &str, what: &str) -> Result<Graph, WireError> {
    let n_nodes: usize = parse_int(n_nodes, "n_nodes")?;
    let edges = parse_edges(edges)?;
    if n_nodes < 2 || edges.is_empty() {
        return Err(WireError::new(format!(
            "{what} needs >= 2 nodes and >= 1 edge"
        )));
    }
    let mut graph = Graph::new(n_nodes);
    let mut seen = std::collections::BTreeSet::new();
    for (u, v, bits) in edges {
        let weight = f64::from_bits(bits);
        if !weight.is_finite() {
            return Err(WireError::new(format!("edge {u}-{v}: non-finite weight")));
        }
        // `Graph::add_weighted_edge` keeps the first occurrence of a
        // duplicate pair and drops the rest without erroring; a line that
        // names an edge twice must be rejected here, not answered with a
        // confidently wrong outcome for a different graph.
        if !seen.insert((u.min(v), u.max(v))) {
            return Err(WireError::new(format!("edge {u}-{v}: duplicate edge")));
        }
        graph
            .add_weighted_edge(endpoint(u)?, endpoint(v)?, weight)
            .map_err(|e| WireError::new(format!("edge {u}-{v}: {e}")))?;
    }
    Ok(graph)
}

// --- PREDICT / PREDICTED ---------------------------------------------------

/// A parameter request: answer initialization parameters for `graph` at
/// `depth` without the client caring which tier produces them. `restarts`
/// scopes the depth-1 landscape the answer derives from (it selects the
/// [`Level1Key`] cache entry and seeds a tier-3 fallback solve).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictRequest {
    /// Client-chosen correlation id, echoed on the answer line.
    pub id: u64,
    /// Target circuit depth `p` (the answer carries `2·p` parameters).
    pub depth: usize,
    /// Multistart budget scoping the underlying depth-1 optimum.
    pub restarts: usize,
    /// The MaxCut instance to parameterize.
    pub graph: Graph,
}

/// Which path produced a `PREDICTED` answer; lower tiers are cheaper and
/// exact-er.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AnswerTier {
    /// Depth-1 request whose canonical class was already solved: the cached
    /// exact optimum.
    CachedExact,
    /// The trained model's prediction, seeded from the class's cached
    /// depth-1 optimum.
    Model,
    /// No usable cache entry: the optimizer ran (warm-started) and its
    /// optimum is answered.
    WarmStart,
}

impl AnswerTier {
    /// The tier's wire token (`1`, `2`, `3`).
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            AnswerTier::CachedExact => "1",
            AnswerTier::Model => "2",
            AnswerTier::WarmStart => "3",
        }
    }

    /// The inverse of [`AnswerTier::token`].
    #[must_use]
    pub fn from_token(s: &str) -> Option<AnswerTier> {
        match s {
            "1" => Some(AnswerTier::CachedExact),
            "2" => Some(AnswerTier::Model),
            "3" => Some(AnswerTier::WarmStart),
            _ => None,
        }
    }
}

impl fmt::Display for AnswerTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnswerTier::CachedExact => f.write_str("tier 1 (cached exact)"),
            AnswerTier::Model => f.write_str("tier 2 (model)"),
            AnswerTier::WarmStart => f.write_str("tier 3 (warm-start)"),
        }
    }
}

/// A `PREDICTED` answer line: the request id, the tier that produced the
/// answer, and the `[γ₁…γ_p, β₁…β_p]` parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicted {
    /// The request's correlation id.
    pub id: u64,
    /// Which tier answered.
    pub tier: AnswerTier,
    /// The answered parameters, `[γ₁…γ_p, β₁…β_p]`.
    pub params: Vec<f64>,
}

/// Encodes a parameter request as one `PREDICT` line.
///
/// # Errors
///
/// Rejects a graph whose node indices overflow the wire `u32` endpoint
/// domain (see [`encode_job`]).
pub fn encode_predict(request: &PredictRequest) -> Result<String, WireError> {
    Ok(format!(
        "{MAGIC} PREDICT {} {} {} {} {}",
        request.id,
        request.depth,
        request.restarts,
        request.graph.n_nodes(),
        fmt_edges(graph_wire_edges(&request.graph)?.into_iter()),
    ))
}

/// Decodes a `PREDICT` line, validating it is answerable (same graph rules
/// as [`decode_job`], depth and restarts at least 1).
///
/// # Errors
///
/// Rejects malformed or unanswerable requests.
pub fn decode_predict(line: &str) -> Result<PredictRequest, WireError> {
    let f = expect_fields(payload(line, "PREDICT")?, 5, "PREDICT")?;
    let id: u64 = parse_int(f[0], "request id")?;
    let depth: usize = parse_int(f[1], "depth")?;
    let restarts: usize = parse_int(f[2], "restarts")?;
    if depth == 0 || restarts == 0 {
        return Err(WireError::new("PREDICT needs depth >= 1 and restarts >= 1"));
    }
    let graph = executable_graph(f[3], f[4], "PREDICT")?;
    Ok(PredictRequest {
        id,
        depth,
        restarts,
        graph,
    })
}

/// Encodes a `PREDICTED` answer line.
#[must_use]
pub fn encode_predicted(answer: &Predicted) -> String {
    format!(
        "{MAGIC} PREDICTED {} {} {}",
        answer.id,
        answer.tier.token(),
        fmt_floats(&answer.params),
    )
}

/// Decodes a `PREDICTED` line.
///
/// # Errors
///
/// Rejects malformed lines, unknown tiers, and empty parameter lists (every
/// answer carries `2·p ≥ 2` parameters).
pub fn decode_predicted(line: &str) -> Result<Predicted, WireError> {
    let f = expect_fields(payload(line, "PREDICTED")?, 3, "PREDICTED")?;
    let id: u64 = parse_int(f[0], "request id")?;
    let tier = AnswerTier::from_token(f[1])
        .ok_or_else(|| WireError::new(format!("unknown answer tier `{}`", f[1])))?;
    let params = parse_floats(f[2])?;
    if params.is_empty() {
        return Err(WireError::new("PREDICTED carries no parameters"));
    }
    Ok(Predicted { id, tier, params })
}

// --- OUTCOME ---------------------------------------------------------------

/// Encodes an instance outcome as one `OUTCOME` line.
#[must_use]
pub fn encode_outcome(outcome: &InstanceOutcome) -> String {
    format!("{MAGIC} OUTCOME {}", outcome_payload(outcome))
}

/// The `OUTCOME` payload fields, shared by [`encode_outcome`] and
/// [`encode_entry`] (which embeds them after its own key fields) so the
/// two lines can never drift apart.
fn outcome_payload(outcome: &InstanceOutcome) -> String {
    format!(
        "{} {} {} {} {} {}",
        fmt_floats(&outcome.params),
        fmt_f64(outcome.expectation),
        fmt_f64(outcome.approximation_ratio),
        outcome.function_calls,
        outcome.gradient_calls,
        outcome.termination.as_token(),
    )
}

/// Decodes an `OUTCOME` line.
///
/// # Errors
///
/// Rejects malformed lines and unknown termination tokens.
pub fn decode_outcome(line: &str) -> Result<InstanceOutcome, WireError> {
    let f = expect_fields(payload(line, "OUTCOME")?, 6, "OUTCOME")?;
    outcome_from_fields(&f)
}

fn outcome_from_fields(f: &[&str]) -> Result<InstanceOutcome, WireError> {
    Ok(InstanceOutcome {
        params: parse_floats(f[0])?,
        expectation: parse_f64(f[1])?,
        approximation_ratio: parse_f64(f[2])?,
        function_calls: parse_int(f[3], "function_calls")?,
        gradient_calls: parse_int(f[4], "gradient_calls")?,
        termination: Termination::from_token(f[5])
            .ok_or_else(|| WireError::new(format!("unknown termination `{}`", f[5])))?,
    })
}

// --- REPORT ----------------------------------------------------------------

/// Encodes a batch report as one `REPORT` line.
#[must_use]
pub fn encode_report(report: &BatchReport) -> String {
    let stats: Vec<String> = report
        .jobs
        .iter()
        .map(|j| {
            format!(
                "{}:{}:{}:{}",
                j.wall.as_nanos(),
                j.function_calls,
                j.gradient_calls,
                if j.cache_hit { 'h' } else { 'm' },
            )
        })
        .collect();
    format!(
        "{MAGIC} REPORT {} {} {} {} {} {} {}",
        report.threads,
        report.wall.as_nanos(),
        report.total_function_calls,
        report.total_gradient_calls,
        report.cache_hits,
        report.cache_misses,
        if stats.is_empty() {
            "-".into()
        } else {
            stats.join(",")
        },
    )
}

/// Decodes a `REPORT` line.
///
/// # Errors
///
/// Rejects malformed lines.
pub fn decode_report(line: &str) -> Result<BatchReport, WireError> {
    let f = expect_fields(payload(line, "REPORT")?, 7, "REPORT")?;
    let jobs = if f[6] == "-" {
        Vec::new()
    } else {
        f[6].split(',')
            .map(|stat| {
                let parts: Vec<&str> = stat.split(':').collect();
                if parts.len() != 4 {
                    return Err(WireError::new(format!("bad job stat `{stat}`")));
                }
                Ok(JobStats {
                    wall: Duration::from_nanos(parse_int(parts[0], "job wall")?),
                    function_calls: parse_int(parts[1], "job fc")?,
                    gradient_calls: parse_int(parts[2], "job gc")?,
                    cache_hit: match parts[3] {
                        "h" => true,
                        "m" => false,
                        other => return Err(WireError::new(format!("bad cache flag `{other}`"))),
                    },
                })
            })
            .collect::<Result<_, _>>()?
    };
    Ok(BatchReport {
        threads: parse_int(f[0], "threads")?,
        wall: Duration::from_nanos(parse_int(f[1], "wall")?),
        total_function_calls: parse_int(f[2], "total fc")?,
        total_gradient_calls: parse_int(f[3], "total gc")?,
        cache_hits: parse_int(f[4], "cache hits")?,
        cache_misses: parse_int(f[5], "cache misses")?,
        jobs,
    })
}

// --- RUN / ERR -------------------------------------------------------------

/// The server's batch-flush sentinel line.
#[must_use]
pub fn encode_run() -> String {
    format!("{MAGIC} RUN -")
}

/// Encodes a server-side failure notice. Newlines in `message` are
/// flattened so the line stays one line.
#[must_use]
pub fn encode_err(message: &str) -> String {
    format!("{MAGIC} ERR {}", message.replace(['\n', '\r'], " "))
}

// --- cache entries ---------------------------------------------------------

/// Encodes one persisted cache entry — a [`Level1Key`] (canonical class
/// plus the restarts count the solve drew) and its finished depth-1
/// optimum — as one `ENTRY`-typed line
/// (`restarts` ++ `KEY` payload ++ `OUTCOME` payload). Carrying `restarts`
/// per entry lets one cache file serve runs and job-server sessions that
/// mix restart counts without conflating their (restart-dependent) optima.
#[must_use]
pub fn encode_entry(key: &Level1Key, outcome: &InstanceOutcome) -> String {
    format!(
        "{MAGIC} ENTRY {} {} {}",
        key.restarts,
        key_payload(&key.class),
        outcome_payload(outcome)
    )
}

/// Decodes an `ENTRY` line.
///
/// # Errors
///
/// Rejects malformed lines, including a restarts count of 0 (no solve ever
/// runs with zero restarts, so such an entry could never be served).
pub fn decode_entry(line: &str) -> Result<(Level1Key, InstanceOutcome), WireError> {
    let f = expect_fields(payload(line, "ENTRY")?, 9, "ENTRY")?;
    let restarts: usize = parse_int(f[0], "restarts")?;
    if restarts == 0 {
        return Err(WireError::new("ENTRY needs restarts >= 1"));
    }
    let class = key_from_fields(&f[1..3])?;
    let outcome = outcome_from_fields(&f[3..])?;
    Ok((Level1Key::new(class, restarts), outcome))
}

// --- SHARD / RANGE / DONE --------------------------------------------------

/// Encodes a corpus specification as one `SHARD` line — the message a shard
/// coordinator opens a worker session with.
///
/// Only the numeric fields of [`DataGenConfig`] travel; optimizer `options`
/// are not wire-encoded and always decode to `Options::default()`, which is
/// what every driver in this repository runs with. A coordinator using
/// non-default options must not expect wire workers to reproduce its bits.
#[must_use]
pub fn encode_shard(config: &DataGenConfig) -> String {
    format!(
        "{MAGIC} SHARD {} {} {} {} {} {} {}",
        config.n_graphs,
        config.n_nodes,
        fmt_f64(config.edge_probability),
        config.max_depth,
        config.restarts,
        config.seed,
        fmt_f64(config.trend_preference_margin),
    )
}

/// Largest ensemble a `SHARD` line may declare. A worker materializes the
/// full ensemble when it opens a session, so an unbounded `n_graphs` would
/// let one client line drive an arbitrarily large allocation (a
/// `usize::MAX` count overflows `Vec` capacity outright). The ceiling is
/// ~3000× the paper's 330-graph corpus — far beyond any realistic run —
/// while keeping a hostile or corrupted line answerable with `ERR`.
pub const MAX_SHARD_GRAPHS: usize = 1_000_000;

/// Largest graph a `SHARD` line may declare, for the same reason as
/// [`MAX_SHARD_GRAPHS`]: ensemble generation flips O(`n_nodes`²) coins per
/// graph, so a billion-node spec would hang the worker before it could
/// answer. The statevector simulator caps *useful* widths far lower (a
/// depth-1 solve at 30 nodes already needs a 2³⁰-amplitude state), so the
/// ceiling costs legitimate specs nothing.
pub const MAX_SHARD_NODES: usize = 30;

/// Decodes a `SHARD` line into a [`DataGenConfig`] (with default optimizer
/// options — see [`encode_shard`]).
///
/// # Errors
///
/// Rejects malformed lines and specs no corpus run could execute:
/// `n_nodes` outside `2..=`[`MAX_SHARD_NODES`], zero `max_depth` or
/// `restarts`, an edge probability outside `(0, 1]` or non-finite (the
/// ensemble draws *non-empty* graphs, which `p = 0` can never produce —
/// the generator would retry forever), a non-finite/negative trend margin,
/// or an ensemble larger than [`MAX_SHARD_GRAPHS`].
pub fn decode_shard(line: &str) -> Result<DataGenConfig, WireError> {
    let f = expect_fields(payload(line, "SHARD")?, 7, "SHARD")?;
    let n_graphs: usize = parse_int(f[0], "n_graphs")?;
    if n_graphs > MAX_SHARD_GRAPHS {
        return Err(WireError::new(format!(
            "SHARD n_graphs {n_graphs} exceeds the {MAX_SHARD_GRAPHS} limit"
        )));
    }
    let n_nodes: usize = parse_int(f[1], "n_nodes")?;
    let edge_probability = parse_f64(f[2])?;
    let max_depth: usize = parse_int(f[3], "max_depth")?;
    let restarts: usize = parse_int(f[4], "restarts")?;
    let seed: u64 = parse_int(f[5], "seed")?;
    let trend_preference_margin = parse_f64(f[6])?;
    if !(2..=MAX_SHARD_NODES).contains(&n_nodes) {
        return Err(WireError::new(format!(
            "SHARD needs 2 <= n_nodes <= {MAX_SHARD_NODES}"
        )));
    }
    if max_depth == 0 || restarts == 0 {
        return Err(WireError::new(
            "SHARD needs max_depth >= 1 and restarts >= 1",
        ));
    }
    // p = 0 is excluded because the ensemble draws non-empty graphs: the
    // generator would reject the empty graph and retry forever.
    if !(edge_probability > 0.0 && edge_probability <= 1.0) {
        return Err(WireError::new(
            "SHARD edge probability must be finite in (0, 1]",
        ));
    }
    if !trend_preference_margin.is_finite() || trend_preference_margin < 0.0 {
        return Err(WireError::new(
            "SHARD trend margin must be finite and non-negative",
        ));
    }
    Ok(DataGenConfig {
        n_graphs,
        n_nodes,
        edge_probability,
        max_depth,
        restarts,
        seed,
        options: Default::default(),
        trend_preference_margin,
    })
}

/// Encodes one half-open global graph-index range as a `RANGE` line — the
/// coordinator's "generate these corpus cells" task.
#[must_use]
pub fn encode_range(range: &std::ops::Range<usize>) -> String {
    format!("{MAGIC} RANGE {} {}", range.start, range.end)
}

/// Decodes a `RANGE` line.
///
/// # Errors
///
/// Rejects malformed lines and inverted ranges (`start > end`). Whether the
/// range fits the session's ensemble is a *contextual* check the server
/// makes against its current `SHARD` spec.
pub fn decode_range(line: &str) -> Result<std::ops::Range<usize>, WireError> {
    let f = expect_fields(payload(line, "RANGE")?, 2, "RANGE")?;
    let start: usize = parse_int(f[0], "range start")?;
    let end: usize = parse_int(f[1], "range end")?;
    if start > end {
        return Err(WireError::new(format!(
            "RANGE {start}..{end} is inverted (start must not exceed end)"
        )));
    }
    Ok(start..end)
}

/// A worker's completion marker for one finished `RANGE`: the range it
/// covered plus the `(graph, depth)` cell count and total function calls
/// spent, so the coordinator can account per-shard cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeDone {
    /// The half-open global graph-index range that finished.
    pub range: std::ops::Range<usize>,
    /// `(graph, depth)` cells solved (or served from cache).
    pub cells: usize,
    /// Total function calls across the range's records.
    pub function_calls: usize,
}

/// Encodes a worker's `DONE` line.
#[must_use]
pub fn encode_done(done: &RangeDone) -> String {
    format!(
        "{MAGIC} DONE {} {} {} {}",
        done.range.start, done.range.end, done.cells, done.function_calls,
    )
}

/// Decodes a `DONE` line.
///
/// # Errors
///
/// Rejects malformed lines and inverted ranges.
pub fn decode_done(line: &str) -> Result<RangeDone, WireError> {
    let f = expect_fields(payload(line, "DONE")?, 4, "DONE")?;
    let start: usize = parse_int(f[0], "range start")?;
    let end: usize = parse_int(f[1], "range end")?;
    if start > end {
        return Err(WireError::new(format!("DONE {start}..{end} is inverted")));
    }
    Ok(RangeDone {
        range: start..end,
        cells: parse_int(f[2], "cells")?,
        function_calls: parse_int(f[3], "function_calls")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use qaoa::canonical::graph_key;

    fn sample_outcome() -> InstanceOutcome {
        InstanceOutcome {
            params: vec![0.25, -1.5e-300, std::f64::consts::PI],
            expectation: 3.75,
            approximation_ratio: 0.9375,
            function_calls: 42,
            gradient_calls: 7,
            termination: Termination::GtolSatisfied,
        }
    }

    #[test]
    fn key_round_trip() {
        let key = graph_key(&generators::cycle(6));
        let line = encode_key(&key);
        assert!(line.starts_with("QW1 KEY "));
        assert_eq!(decode_key(&line).unwrap(), key);
    }

    #[test]
    fn outcome_round_trip_is_bit_exact() {
        let outcome = sample_outcome();
        let back = decode_outcome(&encode_outcome(&outcome)).unwrap();
        assert_eq!(back.params.len(), outcome.params.len());
        for (a, b) in outcome.params.iter().zip(&back.params) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(back.expectation.to_bits(), outcome.expectation.to_bits());
        assert_eq!(back.termination, outcome.termination);
    }

    #[test]
    fn job_round_trip_and_unweighted_shorthand() {
        let job = Job::new(generators::cycle(5), 2, 3);
        let line = encode_job(&job).expect("encode");
        let back = decode_job(&line).unwrap();
        assert_eq!(back.depth, 2);
        assert_eq!(back.restarts, 3);
        assert_eq!(back.graph, job.graph);
        // Hand-written form: weights default to 1.0.
        let short = decode_job("QW1 JOB 1 2 3 0-1,1-2").unwrap();
        assert_eq!(short.graph.edges()[0].weight, 1.0);
        // Re-encoding writes explicit weights; the round trip still holds.
        let reencoded = encode_job(&short).expect("encode");
        assert!(reencoded.contains(':'));
        assert_eq!(decode_job(&reencoded).unwrap().graph, short.graph);
    }

    #[test]
    fn job_decode_rejects_non_executable() {
        assert!(decode_job("QW1 JOB 0 2 3 0-1").is_err());
        assert!(decode_job("QW1 JOB 1 0 3 0-1").is_err());
        assert!(decode_job("QW1 JOB 1 2 3 -").is_err());
        assert!(decode_job("QW1 JOB 1 2 1 0-1").is_err());
        assert!(decode_job("QW1 JOB 1 2 3 0-9").is_err());
        assert!(decode_job(&format!("QW1 JOB 1 2 3 0-1:{:016x}", f64::NAN.to_bits())).is_err());
        // Duplicate edges (in either orientation, any weights) are rejected
        // rather than silently collapsed to the first occurrence.
        assert!(decode_job("QW1 JOB 1 2 3 0-1,0-1,1-2").is_err());
        let dup = format!(
            "QW1 JOB 1 2 3 0-1:{:016x},1-0:{:016x}",
            2.0f64.to_bits(),
            3.0f64.to_bits()
        );
        assert!(decode_job(&dup).is_err());
    }

    #[test]
    fn predict_round_trip_and_validation() {
        let request = PredictRequest {
            id: 7,
            depth: 4,
            restarts: 3,
            graph: generators::cycle(5),
        };
        let line = encode_predict(&request).unwrap();
        assert!(line.starts_with("QW1 PREDICT 7 "));
        assert_eq!(decode_predict(&line).unwrap(), request);
        // Unweighted shorthand works like JOB's.
        let short = decode_predict("QW1 PREDICT 0 2 1 3 0-1,1-2").unwrap();
        assert_eq!(short.graph.edges()[0].weight, 1.0);
        // Same executability rules as JOB.
        assert!(
            decode_predict("QW1 PREDICT 0 0 1 3 0-1").is_err(),
            "depth 0"
        );
        assert!(
            decode_predict("QW1 PREDICT 0 1 0 3 0-1").is_err(),
            "restarts 0"
        );
        assert!(decode_predict("QW1 PREDICT 0 1 1 3 -").is_err(), "no edges");
        assert!(
            decode_predict("QW1 PREDICT 0 1 1 3 0-1,0-1").is_err(),
            "dup edge"
        );
        assert!(
            decode_predict("QW1 PREDICT 0 1 1 3 0-9").is_err(),
            "bad endpoint"
        );
    }

    #[test]
    fn predicted_round_trip_is_bit_exact() {
        let answer = Predicted {
            id: 12,
            tier: AnswerTier::Model,
            params: vec![0.25, -1.5e-300, std::f64::consts::PI, 0.5],
        };
        let line = encode_predicted(&answer);
        let back = decode_predicted(&line).unwrap();
        assert_eq!(back.id, 12);
        assert_eq!(back.tier, AnswerTier::Model);
        for (a, b) in answer.params.iter().zip(&back.params) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for tier in [
            AnswerTier::CachedExact,
            AnswerTier::Model,
            AnswerTier::WarmStart,
        ] {
            assert_eq!(AnswerTier::from_token(tier.token()), Some(tier));
        }
        assert!(
            decode_predicted("QW1 PREDICTED 1 4 deadbeefdeadbeef").is_err(),
            "bad tier"
        );
        assert!(
            decode_predicted("QW1 PREDICTED 1 2 -").is_err(),
            "no params"
        );
    }

    #[test]
    fn record_round_trip() {
        let record = OptimalRecord {
            graph_id: 12,
            depth: 3,
            gammas: vec![1.0, 2.0, 3.0],
            betas: vec![0.1, 0.2, 0.3],
            expectation: 5.5,
            approximation_ratio: 0.99,
            function_calls: 321,
        };
        let back = decode_record(&encode_record(&record)).unwrap();
        assert_eq!(back.graph_id, 12);
        assert_eq!(back.gammas, record.gammas);
        assert_eq!(back.betas, record.betas);
        assert_eq!(back.function_calls, 321);
    }

    #[test]
    fn report_round_trip() {
        let report = BatchReport {
            jobs: vec![
                JobStats {
                    wall: Duration::from_nanos(1234),
                    function_calls: 10,
                    gradient_calls: 2,
                    cache_hit: true,
                },
                JobStats {
                    wall: Duration::from_micros(9),
                    function_calls: 20,
                    gradient_calls: 0,
                    cache_hit: false,
                },
            ],
            wall: Duration::from_millis(3),
            threads: 4,
            total_function_calls: 30,
            total_gradient_calls: 2,
            cache_hits: 1,
            cache_misses: 1,
        };
        let back = decode_report(&encode_report(&report)).unwrap();
        assert_eq!(back.threads, 4);
        assert_eq!(back.wall, report.wall);
        assert_eq!(back.jobs.len(), 2);
        assert!(back.jobs[0].cache_hit);
        assert_eq!(back.jobs[1].function_calls, 20);
        // Empty report encodes the "-" placeholder.
        let empty = BatchReport {
            jobs: vec![],
            wall: Duration::ZERO,
            threads: 1,
            total_function_calls: 0,
            total_gradient_calls: 0,
            cache_hits: 0,
            cache_misses: 0,
        };
        assert!(decode_report(&encode_report(&empty))
            .unwrap()
            .jobs
            .is_empty());
    }

    #[test]
    fn entry_round_trip() {
        let key = Level1Key::new(graph_key(&generators::path(4)), 3);
        let outcome = sample_outcome();
        let (k, o) = decode_entry(&encode_entry(&key, &outcome)).unwrap();
        assert_eq!(k, key);
        assert_eq!(k.restarts, 3);
        assert_eq!(o.expectation.to_bits(), outcome.expectation.to_bits());
        // A restarts-less (pre-restarts-keyed) entry or restarts=0 is
        // malformed, not silently accepted under a default.
        let line = encode_entry(&key, &outcome);
        let old_format = line.replacen("ENTRY 3 ", "ENTRY ", 1);
        assert!(decode_entry(&old_format).is_err());
        let zero = line.replacen("ENTRY 3 ", "ENTRY 0 ", 1);
        assert!(decode_entry(&zero).is_err());
    }

    #[test]
    fn shard_round_trip_is_bit_exact() {
        let config = DataGenConfig {
            n_graphs: 24,
            n_nodes: 6,
            edge_probability: 0.5,
            max_depth: 4,
            restarts: 3,
            seed: u64::MAX,
            options: Default::default(),
            trend_preference_margin: 1e-3,
        };
        let back = decode_shard(&encode_shard(&config)).unwrap();
        assert_eq!(back, config);
        assert_eq!(
            back.edge_probability.to_bits(),
            config.edge_probability.to_bits()
        );
    }

    #[test]
    fn shard_decode_rejects_non_executable_specs() {
        let good = encode_shard(&DataGenConfig::quick());
        assert!(decode_shard(&good).is_ok());
        // n_nodes < 2, max_depth = 0, restarts = 0.
        assert!(decode_shard(&good.replacen(" 6 ", " 1 ", 1)).is_err());
        let f: Vec<&str> = good.split(' ').collect();
        let with = |idx: usize, val: &str| {
            let mut f = f.clone();
            f[idx] = val;
            f.join(" ")
        };
        // Payload fields start at index 2 (after "QW1 SHARD").
        assert!(decode_shard(&with(5, "0")).is_err(), "max_depth 0");
        assert!(decode_shard(&with(6, "0")).is_err(), "restarts 0");
        // Edge probability out of range / non-finite — and p = 0, which
        // would make the non-empty-graph generator retry forever when the
        // worker eagerly derives the ensemble.
        assert!(decode_shard(&with(4, &fmt_f64(1.5))).is_err());
        assert!(decode_shard(&with(4, &fmt_f64(f64::NAN))).is_err());
        assert!(decode_shard(&with(4, &fmt_f64(0.0))).is_err());
        assert!(decode_shard(&with(4, &fmt_f64(-0.0))).is_err());
        assert!(decode_shard(&with(4, &fmt_f64(1.0))).is_ok());
        // Trend margin negative / non-finite.
        assert!(decode_shard(&with(8, &fmt_f64(-1.0))).is_err());
        assert!(decode_shard(&with(8, &fmt_f64(f64::INFINITY))).is_err());
        // Wrong arity.
        assert!(decode_shard("QW1 SHARD 1 2 3").is_err());
        // An ensemble size past the protocol ceiling must answer ERR at
        // decode time, not reach the worker's eager ensemble allocation
        // (usize::MAX once overflowed Vec capacity and killed the loop).
        assert!(decode_shard(&with(2, &format!("{}", MAX_SHARD_GRAPHS + 1))).is_err());
        assert!(decode_shard(&with(2, &format!("{}", usize::MAX))).is_err());
        assert!(decode_shard(&with(2, &format!("{MAX_SHARD_GRAPHS}"))).is_ok());
        // Same ceiling logic for the graph width: O(n^2) ensemble
        // generation must not be reachable with a billion-node spec.
        assert!(decode_shard(&with(3, &format!("{}", MAX_SHARD_NODES + 1))).is_err());
        assert!(decode_shard(&with(3, "4000000000")).is_err());
        assert!(decode_shard(&with(3, &format!("{MAX_SHARD_NODES}"))).is_ok());
    }

    #[test]
    fn range_round_trip_and_validation() {
        for range in [0..0, 0..5, 3..3, 7..24] {
            assert_eq!(decode_range(&encode_range(&range)).unwrap(), range);
        }
        assert!(decode_range("QW1 RANGE 5 3").is_err(), "inverted");
        assert!(decode_range("QW1 RANGE 5").is_err(), "missing end");
        assert!(decode_range("QW1 RANGE -1 3").is_err(), "negative");
    }

    #[test]
    fn done_round_trip_and_validation() {
        let done = RangeDone {
            range: 4..9,
            cells: 20,
            function_calls: 12345,
        };
        assert_eq!(decode_done(&encode_done(&done)).unwrap(), done);
        assert!(decode_done("QW1 DONE 9 4 0 0").is_err(), "inverted");
        assert!(decode_done("QW1 DONE 4 9 0").is_err(), "missing fc");
    }

    #[test]
    fn version_and_type_mismatches_are_rejected() {
        assert!(decode_key("QW2 KEY 3 0-1").is_err());
        assert!(decode_key("QW1 JOB 1 2 3 0-1").is_err());
        assert!(decode_key("").is_err());
        assert!(message_type("QW1 RUN -").unwrap() == "RUN");
        assert!(message_type("QW9 RUN -").is_err());
        assert!(encode_err("multi\nline").lines().count() == 1);
    }
}
