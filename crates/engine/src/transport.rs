//! Pluggable line transports for the streaming shard coordinator.
//!
//! [`crate::shard::run_streaming`] drives workers through the
//! [`ShardTransport`] trait: a full-duplex, line-oriented channel per
//! worker with incremental receive and worker-death detection. Three
//! implementations ship here:
//!
//! * [`LoopbackTransport`] — the reference implementation: one in-process
//!   thread per worker running [`crate::server::serve`] over in-memory
//!   channel pipes. Behaviorally identical to a subprocess (lines arrive
//!   incrementally, a killed worker hangs up mid-stream) without process
//!   overhead; what tests and single-machine wire rehearsals use.
//! * [`SubprocessTransport`] — the production transport: spawns real
//!   worker processes (normally `qaoa-serve`) and speaks `QW1` over their
//!   stdin/stdout. Worker exit, a closed pipe, or a kill all surface as
//!   [`TransportError::Dead`], which the coordinator answers by re-tasking
//!   the worker's range on a survivor.
//! * [`KillAfter`] / [`StallAfter`] — fault injectors wrapping any inner
//!   transport: deterministic worker death and silent stalls, used by the
//!   failover test-suite and `qaoa-shard --kill-worker`.
//!
//! The trait is deliberately clock-free: `recv_line` takes a wait budget
//! as a [`Duration`] and reports [`TransportError::Timeout`] when nothing
//! arrived, but only the coordinator (an allowed wall-clock module)
//! decides when accumulated silence becomes worker death.

use std::collections::VecDeque;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::batch::{BatchConfig, Engine};
use crate::cache::Level1Cache;

/// Why a transport operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The worker is gone for good: its process exited, a pipe closed, its
    /// thread hung up, or it was already killed. Every later operation on
    /// the same worker fails the same way.
    Dead(String),
    /// No complete line arrived within the wait budget. The worker may
    /// simply still be computing — the coordinator decides when silence
    /// becomes death.
    Timeout,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Dead(message) => write!(f, "worker dead: {message}"),
            TransportError::Timeout => write!(f, "no line within the wait budget"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A full-duplex, line-oriented channel to a fixed set of workers.
///
/// Workers are addressed `0..workers()`. Lines carry no trailing newline.
/// A worker that reports [`TransportError::Dead`] once is gone: the
/// coordinator never re-spawns it, it re-tasks the dead worker's work onto
/// survivors (safe because re-run ranges return bit-identical records).
pub trait ShardTransport {
    /// Number of worker slots (dead ones included).
    fn workers(&self) -> usize;

    /// Sends one line (newline appended by the transport) to a worker.
    ///
    /// # Errors
    ///
    /// [`TransportError::Dead`] when the worker cannot accept input.
    fn send_line(&mut self, worker: usize, line: &str) -> Result<(), TransportError>;

    /// Receives the next complete line from a worker, waiting at most
    /// roughly `wait` (implementations may overshoot while assembling a
    /// partially-arrived line).
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] when no line arrived in time;
    /// [`TransportError::Dead`] when the worker hung up.
    fn recv_line(&mut self, worker: usize, wait: Duration) -> Result<String, TransportError>;

    /// Forcibly tears a worker down (kill the process, hang up the
    /// channel). Idempotent; a no-op for workers already gone.
    fn kill(&mut self, worker: usize);

    /// Gracefully shuts a worker down: signals end-of-input and waits for
    /// it to finish (fold caches, persist state, exit). Idempotent; a
    /// no-op for workers already gone.
    fn close(&mut self, worker: usize);
}

// --- loopback --------------------------------------------------------------

/// Byte chunks from a worker, reassembled into lines on the receive side.
type ChunkReceiver = mpsc::Receiver<Vec<u8>>;

struct LoopbackWorker {
    /// `None` once end-of-input was signalled (close) or the slot killed.
    input: Option<mpsc::Sender<String>>,
    output: Option<ChunkReceiver>,
    /// Complete lines already assembled but not yet handed out.
    pending: VecDeque<String>,
    /// Bytes of a line still missing its terminator.
    partial: Vec<u8>,
    handle: Option<JoinHandle<()>>,
    /// Why the slot is unusable, once it is.
    fate: Option<String>,
}

/// The reference [`ShardTransport`]: one in-process [`crate::server::serve`]
/// worker thread per slot, wired over in-memory channel pipes.
///
/// Each worker owns a fresh [`Engine`] with `threads` pool workers, exactly
/// like one spawned `qaoa-serve` process. With [`LoopbackTransport::with_cache`]
/// the workers additionally warm-start from (and fold back into) a shared
/// depth-1 cache, mirroring what per-worker `--cache-file`s plus a merge
/// give the subprocess transport.
pub struct LoopbackTransport {
    slots: Vec<LoopbackWorker>,
}

impl LoopbackTransport {
    /// `workers` in-process serve workers, `threads` pool workers each, no
    /// shared cache (each worker still caches internally).
    #[must_use]
    pub fn new(workers: usize, threads: usize) -> Self {
        Self::with_cache(workers, threads, BatchConfig::default().master_seed, None)
    }

    /// [`LoopbackTransport::new`] plus a shared depth-1 cache: every worker
    /// pre-warms from `cache` at spawn and folds its entries back when it
    /// finishes (on [`ShardTransport::close`]). `master_seed` must equal
    /// the corpus spec's seed for the worker-side fold to engage (the
    /// server only folds seed-matching sessions — see
    /// [`crate::server`]).
    #[must_use]
    pub fn with_cache(
        workers: usize,
        threads: usize,
        master_seed: u64,
        cache: Option<Arc<Level1Cache>>,
    ) -> Self {
        let slots = (0..workers.max(1))
            .map(|_| {
                let (input_tx, input_rx) = mpsc::channel::<String>();
                let (output_tx, output_rx) = mpsc::channel::<Vec<u8>>();
                let shared = cache.clone();
                let handle = std::thread::spawn(move || {
                    loopback_worker(threads, master_seed, shared, input_rx, output_tx);
                });
                LoopbackWorker {
                    input: Some(input_tx),
                    output: Some(output_rx),
                    pending: VecDeque::new(),
                    partial: Vec::new(),
                    handle: Some(handle),
                    fate: None,
                }
            })
            .collect();
        Self { slots }
    }

    fn slot(&mut self, worker: usize) -> Result<&mut LoopbackWorker, TransportError> {
        let count = self.slots.len();
        self.slots.get_mut(worker).ok_or_else(|| {
            TransportError::Dead(format!("worker {worker} of {count} (no such slot)"))
        })
    }
}

/// One worker thread: a fresh engine serving the channel-piped request
/// stream until end-of-input, then a fold into the shared cache. The fold
/// also runs when serve aborts early (coordinator hung up): depth-1 entries
/// are pure functions of their key, so folding a partial set is always
/// sound.
fn loopback_worker(
    threads: usize,
    master_seed: u64,
    shared: Option<Arc<Level1Cache>>,
    input: mpsc::Receiver<String>,
    output: mpsc::Sender<Vec<u8>>,
) {
    let engine = Engine::new(threads);
    if let Some(cache) = &shared {
        engine.cache().merge_from(cache);
    }
    let config = BatchConfig {
        master_seed,
        ..BatchConfig::default()
    };
    let reader = ChannelReader {
        rx: input,
        buf: Vec::new(),
        pos: 0,
    };
    let writer = ChannelWriter { tx: output };
    let _ = crate::server::serve(
        reader,
        writer,
        &engine,
        &optimize::Lbfgsb::default(),
        &config,
    );
    if let Some(cache) = &shared {
        cache.merge_from(engine.cache());
    }
}

/// Worker-side stdin stand-in: lines from an mpsc channel, exposed as
/// `BufRead`. A hung-up sender reads as end-of-file.
struct ChannelReader {
    rx: mpsc::Receiver<String>,
    buf: Vec<u8>,
    pos: usize,
}

impl Read for ChannelReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let available = self.fill_buf()?;
        let n = available.len().min(out.len());
        out[..n].copy_from_slice(&available[..n]);
        self.consume(n);
        Ok(n)
    }
}

impl BufRead for ChannelReader {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        if self.pos >= self.buf.len() {
            match self.rx.recv() {
                Ok(line) => {
                    self.buf = line.into_bytes();
                    self.buf.push(b'\n');
                    self.pos = 0;
                }
                // Coordinator dropped the sender: end of input.
                Err(mpsc::RecvError) => {
                    self.buf.clear();
                    self.pos = 0;
                }
            }
        }
        Ok(&self.buf[self.pos..])
    }

    fn consume(&mut self, amt: usize) {
        self.pos = (self.pos + amt).min(self.buf.len());
    }
}

/// Worker-side stdout stand-in: every write ships its bytes to the
/// coordinator immediately (the pipe itself never buffers, so worker
/// flush discipline only matters for real pipes).
struct ChannelWriter {
    tx: mpsc::Sender<Vec<u8>>,
}

impl Write for ChannelWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.tx.send(buf.to_vec()).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::BrokenPipe, "coordinator hung up")
        })?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl ShardTransport for LoopbackTransport {
    fn workers(&self) -> usize {
        self.slots.len()
    }

    fn send_line(&mut self, worker: usize, line: &str) -> Result<(), TransportError> {
        let slot = self.slot(worker)?;
        if let Some(fate) = &slot.fate {
            return Err(TransportError::Dead(fate.clone()));
        }
        let Some(input) = &slot.input else {
            return Err(TransportError::Dead("input already closed".into()));
        };
        if input.send(line.to_string()).is_err() {
            let fate = "worker thread hung up".to_string();
            slot.fate = Some(fate.clone());
            return Err(TransportError::Dead(fate));
        }
        Ok(())
    }

    fn recv_line(&mut self, worker: usize, wait: Duration) -> Result<String, TransportError> {
        let slot = self.slot(worker)?;
        loop {
            if let Some(line) = slot.pending.pop_front() {
                return Ok(line);
            }
            if let Some(fate) = &slot.fate {
                return Err(TransportError::Dead(fate.clone()));
            }
            let Some(output) = &slot.output else {
                return Err(TransportError::Dead("output already closed".into()));
            };
            match output.recv_timeout(wait) {
                Ok(chunk) => {
                    for byte in chunk {
                        if byte == b'\n' {
                            let line = String::from_utf8_lossy(&slot.partial).into_owned();
                            slot.partial.clear();
                            slot.pending.push_back(line);
                        } else {
                            slot.partial.push(byte);
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => return Err(TransportError::Timeout),
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // A trailing partial line from a dead worker is not a
                    // line; it is discarded with the worker.
                    let fate = "worker hung up (end of stream)".to_string();
                    slot.fate = Some(fate.clone());
                    return Err(TransportError::Dead(fate));
                }
            }
        }
    }

    fn kill(&mut self, worker: usize) {
        if let Some(slot) = self.slots.get_mut(worker) {
            // Dropping both channel ends makes the worker's next read see
            // EOF and its next write fail, so the thread winds down on its
            // own; it is detached rather than joined because it may be
            // mid-solve and a kill must not block the coordinator.
            slot.input = None;
            slot.output = None;
            slot.handle = None;
            slot.pending.clear();
            slot.partial.clear();
            slot.fate.get_or_insert_with(|| "killed".to_string());
        }
    }

    fn close(&mut self, worker: usize) {
        if let Some(slot) = self.slots.get_mut(worker) {
            if slot.fate.is_some() {
                return;
            }
            slot.input = None; // end-of-input
            if let Some(handle) = slot.handle.take() {
                let _ = handle.join(); // cache fold completes before this returns
            }
            slot.output = None;
            slot.fate = Some("closed".to_string());
        }
    }
}

impl Drop for LoopbackTransport {
    fn drop(&mut self) {
        for worker in 0..self.slots.len() {
            self.kill(worker);
        }
    }
}

// --- subprocess ------------------------------------------------------------

struct SubprocessWorker {
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    lines: Option<mpsc::Receiver<String>>,
    reader: Option<JoinHandle<()>>,
    fate: Option<String>,
}

impl SubprocessWorker {
    /// Kills and reaps the child, hangs up the pipes. Idempotent.
    fn tear_down(&mut self, fate: &str) {
        self.stdin = None;
        self.lines = None;
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait(); // reap; no zombies
        }
        if let Some(reader) = self.reader.take() {
            let _ = reader.join(); // EOF after kill, returns promptly
        }
        self.fate.get_or_insert_with(|| fate.to_string());
    }
}

/// The production [`ShardTransport`]: spawned worker processes speaking
/// `QW1` over stdin/stdout (normally `qaoa-serve`; stderr passes through).
///
/// Worker death — a crash, a kill, an exit, a closed pipe — surfaces as
/// [`TransportError::Dead`] on the next send or receive, which is what the
/// coordinator's failover re-tasking keys off. [`ShardTransport::close`]
/// closes the worker's stdin and waits for a clean exit, giving workers
/// started with `--cache-file` the chance to persist what they solved.
pub struct SubprocessTransport {
    slots: Vec<SubprocessWorker>,
}

impl SubprocessTransport {
    /// Spawns `workers` copies of `command` (argv form: `command[0]` is the
    /// program, the rest its arguments).
    ///
    /// # Errors
    ///
    /// [`TransportError::Dead`] when the command is empty or any spawn
    /// fails; workers spawned before the failure are killed and reaped.
    pub fn spawn(command: &[String], workers: usize) -> Result<Self, TransportError> {
        if command.is_empty() {
            return Err(TransportError::Dead("empty worker command".into()));
        }
        let commands: Vec<Vec<String>> = (0..workers.max(1)).map(|_| command.to_vec()).collect();
        Self::spawn_each(&commands)
    }

    /// Spawns one worker per command in `commands` (each in argv form) —
    /// the constructor for workers that need per-worker arguments, e.g.
    /// distinct `--cache-file` paths so each process persists its own
    /// depth-1 cache for the coordinator to merge.
    ///
    /// # Errors
    ///
    /// [`TransportError::Dead`] when `commands` is empty, any command is
    /// empty, or any spawn fails; workers spawned before the failure are
    /// killed and reaped.
    pub fn spawn_each(commands: &[Vec<String>]) -> Result<Self, TransportError> {
        if commands.is_empty() {
            return Err(TransportError::Dead("no worker commands".into()));
        }
        let mut slots: Vec<SubprocessWorker> = Vec::with_capacity(commands.len());
        for (index, command) in commands.iter().enumerate() {
            let spawned = match command.split_first() {
                Some((program, args)) => spawn_worker(program, args),
                None => Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "empty worker command",
                )),
            };
            match spawned {
                Ok(slot) => slots.push(slot),
                Err(e) => {
                    for slot in &mut slots {
                        slot.tear_down("sibling spawn failed");
                    }
                    let program = command.first().map_or("<empty>", String::as_str);
                    return Err(TransportError::Dead(format!(
                        "spawning worker {index} ({program}): {e}"
                    )));
                }
            }
        }
        Ok(Self { slots })
    }

    fn slot(&mut self, worker: usize) -> Result<&mut SubprocessWorker, TransportError> {
        let count = self.slots.len();
        self.slots.get_mut(worker).ok_or_else(|| {
            TransportError::Dead(format!("worker {worker} of {count} (no such slot)"))
        })
    }
}

fn spawn_worker(program: &str, args: &[String]) -> std::io::Result<SubprocessWorker> {
    let mut child = Command::new(program)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()?;
    let stdin = child.stdin.take();
    let stdout = child.stdout.take().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::BrokenPipe, "child stdout not captured")
    })?;
    let (tx, rx) = mpsc::channel::<String>();
    // One reader thread per child decouples pipe draining from the
    // coordinator's poll loop: the child never blocks on a full pipe while
    // the coordinator is busy elsewhere.
    let reader = std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    Ok(SubprocessWorker {
        child: Some(child),
        stdin,
        lines: Some(rx),
        reader: Some(reader),
        fate: None,
    })
}

impl ShardTransport for SubprocessTransport {
    fn workers(&self) -> usize {
        self.slots.len()
    }

    fn send_line(&mut self, worker: usize, line: &str) -> Result<(), TransportError> {
        let slot = self.slot(worker)?;
        if let Some(fate) = &slot.fate {
            return Err(TransportError::Dead(fate.clone()));
        }
        let Some(stdin) = &mut slot.stdin else {
            return Err(TransportError::Dead("stdin already closed".into()));
        };
        let wrote = writeln!(stdin, "{line}").and_then(|()| stdin.flush());
        if let Err(e) = wrote {
            let fate = format!("write to worker failed: {e}");
            slot.tear_down(&fate);
            return Err(TransportError::Dead(fate));
        }
        Ok(())
    }

    fn recv_line(&mut self, worker: usize, wait: Duration) -> Result<String, TransportError> {
        let slot = self.slot(worker)?;
        if let Some(fate) = &slot.fate {
            return Err(TransportError::Dead(fate.clone()));
        }
        let Some(lines) = &slot.lines else {
            return Err(TransportError::Dead("stdout already closed".into()));
        };
        match lines.recv_timeout(wait) {
            Ok(line) => Ok(line),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                let fate = "worker stdout closed".to_string();
                slot.tear_down(&fate);
                Err(TransportError::Dead(fate))
            }
        }
    }

    fn kill(&mut self, worker: usize) {
        if let Some(slot) = self.slots.get_mut(worker) {
            slot.tear_down("killed");
        }
    }

    fn close(&mut self, worker: usize) {
        if let Some(slot) = self.slots.get_mut(worker) {
            if slot.fate.is_some() {
                return;
            }
            slot.stdin = None; // EOF: the worker finishes up and exits
            if let Some(mut child) = slot.child.take() {
                let _ = child.wait();
            }
            if let Some(reader) = slot.reader.take() {
                let _ = reader.join();
            }
            slot.lines = None;
            slot.fate = Some("closed".to_string());
        }
    }
}

impl Drop for SubprocessTransport {
    fn drop(&mut self) {
        for slot in &mut self.slots {
            slot.tear_down("transport dropped");
        }
    }
}

// --- fault injection -------------------------------------------------------

/// Fault injector: lets `victim` deliver `after` lines, then kills it.
///
/// The kill is real — the inner worker is torn down — so everything
/// downstream (re-tasking, cache-file merging) sees an honest mid-range
/// death, not a simulation. Used by the failover tests and
/// `qaoa-shard --kill-worker`.
pub struct KillAfter<T: ShardTransport> {
    inner: T,
    victim: usize,
    after: usize,
    seen: usize,
}

impl<T: ShardTransport> KillAfter<T> {
    /// Kills `victim` once it has delivered `after` lines.
    pub fn new(inner: T, victim: usize, after: usize) -> Self {
        Self {
            inner,
            victim,
            after,
            seen: 0,
        }
    }
}

impl<T: ShardTransport> ShardTransport for KillAfter<T> {
    fn workers(&self) -> usize {
        self.inner.workers()
    }

    fn send_line(&mut self, worker: usize, line: &str) -> Result<(), TransportError> {
        self.inner.send_line(worker, line)
    }

    fn recv_line(&mut self, worker: usize, wait: Duration) -> Result<String, TransportError> {
        if worker == self.victim {
            if self.seen >= self.after {
                self.inner.kill(worker);
                return Err(TransportError::Dead(format!(
                    "fault injection: worker {worker} killed after {} lines",
                    self.seen
                )));
            }
            let line = self.inner.recv_line(worker, wait)?;
            self.seen += 1;
            return Ok(line);
        }
        self.inner.recv_line(worker, wait)
    }

    fn kill(&mut self, worker: usize) {
        self.inner.kill(worker);
    }

    fn close(&mut self, worker: usize) {
        self.inner.close(worker);
    }
}

/// Fault injector: lets `victim` deliver `after` lines, then goes silent —
/// every later receive waits out its budget and reports
/// [`TransportError::Timeout`], so the coordinator's liveness timeout is
/// what declares the worker dead. Exercises the timeout → kill → re-task
/// path end to end.
pub struct StallAfter<T: ShardTransport> {
    inner: T,
    victim: usize,
    after: usize,
    seen: usize,
}

impl<T: ShardTransport> StallAfter<T> {
    /// Stalls `victim` once it has delivered `after` lines.
    pub fn new(inner: T, victim: usize, after: usize) -> Self {
        Self {
            inner,
            victim,
            after,
            seen: 0,
        }
    }
}

impl<T: ShardTransport> ShardTransport for StallAfter<T> {
    fn workers(&self) -> usize {
        self.inner.workers()
    }

    fn send_line(&mut self, worker: usize, line: &str) -> Result<(), TransportError> {
        self.inner.send_line(worker, line)
    }

    fn recv_line(&mut self, worker: usize, wait: Duration) -> Result<String, TransportError> {
        if worker == self.victim && self.seen >= self.after {
            // Emulate silence honestly: consume the wait, deliver nothing.
            std::thread::sleep(wait);
            return Err(TransportError::Timeout);
        }
        let line = self.inner.recv_line(worker, wait)?;
        if worker == self.victim {
            self.seen += 1;
        }
        Ok(line)
    }

    fn kill(&mut self, worker: usize) {
        self.inner.kill(worker);
    }

    fn close(&mut self, worker: usize) {
        self.inner.close(worker);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire;

    #[test]
    fn loopback_answers_a_predict_less_request_with_err() {
        let mut transport = LoopbackTransport::new(1, 1);
        transport.send_line(0, "QW1 PREDICT 0 1 2 4 0-1").unwrap();
        let line = transport.recv_line(0, Duration::from_secs(30)).unwrap();
        assert_eq!(wire::message_type(&line).unwrap(), "ERR");
        transport.close(0);
        assert!(matches!(
            transport.send_line(0, "x"),
            Err(TransportError::Dead(_))
        ));
    }

    #[test]
    fn loopback_recv_times_out_without_traffic() {
        let mut transport = LoopbackTransport::new(1, 1);
        assert_eq!(
            transport.recv_line(0, Duration::from_millis(10)),
            Err(TransportError::Timeout)
        );
    }

    #[test]
    fn killed_loopback_worker_reports_dead() {
        let mut transport = LoopbackTransport::new(2, 1);
        transport.kill(0);
        assert!(matches!(
            transport.recv_line(0, Duration::from_millis(10)),
            Err(TransportError::Dead(_))
        ));
        // The sibling is unaffected.
        transport.send_line(1, "QW1 RANGE 0 1").unwrap();
        let line = transport.recv_line(1, Duration::from_secs(30)).unwrap();
        assert_eq!(wire::message_type(&line).unwrap(), "ERR"); // RANGE before SHARD
    }

    #[test]
    fn out_of_range_worker_is_dead_not_panic() {
        let mut transport = LoopbackTransport::new(1, 1);
        assert!(matches!(
            transport.send_line(5, "x"),
            Err(TransportError::Dead(_))
        ));
    }

    #[test]
    fn empty_subprocess_command_is_rejected() {
        assert!(matches!(
            SubprocessTransport::spawn(&[], 2),
            Err(TransportError::Dead(_))
        ));
    }

    #[test]
    fn unspawnable_subprocess_command_is_dead() {
        let command = vec!["/nonexistent/qaoa-serve-definitely-missing".to_string()];
        assert!(matches!(
            SubprocessTransport::spawn(&command, 1),
            Err(TransportError::Dead(_))
        ));
    }

    #[test]
    fn kill_after_injects_death_and_stall_after_injects_timeouts() {
        let inner = LoopbackTransport::new(1, 1);
        let mut faulty = KillAfter::new(inner, 0, 1);
        faulty.send_line(0, "bogus").unwrap();
        faulty.send_line(0, "bogus again").unwrap();
        // First line (an ERR) passes; the second receive kills the worker.
        let first = faulty.recv_line(0, Duration::from_secs(30)).unwrap();
        assert_eq!(wire::message_type(&first).unwrap(), "ERR");
        assert!(matches!(
            faulty.recv_line(0, Duration::from_secs(30)),
            Err(TransportError::Dead(_))
        ));

        let inner = LoopbackTransport::new(1, 1);
        let mut stalled = StallAfter::new(inner, 0, 0);
        stalled.send_line(0, "bogus").unwrap();
        assert_eq!(
            stalled.recv_line(0, Duration::from_millis(5)),
            Err(TransportError::Timeout)
        );
        assert_eq!(
            stalled.recv_line(0, Duration::from_millis(5)),
            Err(TransportError::Timeout)
        );
    }
}
