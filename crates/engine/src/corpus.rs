//! Parallel training-corpus generation (§III-A) on the engine.
//!
//! The unit of parallelism is the **graph**: depths within one graph are
//! coupled by trend seeding (depth `p` is initialized from the depth-`p−1`
//! optimum), so one worker walks `p = 1..=max_depth` for its graph while
//! other graphs run concurrently.
//!
//! Unlike the serial `ParameterDataset::from_graphs`, which streams one RNG
//! across every cell, each `(graph, depth)` cell here draws from an RNG
//! derived from stable keys ([`crate::seed`]):
//!
//! * depth 1 — seeded from the graph's **canonical class hash** and solved
//!   on the canonical representative, so isomorphic graphs produce
//!   bit-identical depth-1 optima and share one [`Level1Cache`] entry,
//! * depth ≥ 2 — seeded from `(graph_index, depth)`.
//!
//! Consequently corpus output is a pure function of `(graphs, config)` —
//! identical at any worker count, with or without cache hits.

use std::ops::Range;
use std::time::{Duration, Instant};

use graphs::{generators, Graph};
use optimize::Lbfgsb;
use qaoa::datagen::{solve_depth, DataGenConfig, OptimalRecord, ParameterDataset};
use qaoa::QaoaError;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::batch::{BatchConfig, Engine};
use crate::seed;

/// Accounting for one corpus generation run.
#[derive(Debug, Clone)]
pub struct CorpusReport {
    /// Graphs solved.
    pub graphs: usize,
    /// `(graph, depth)` cells solved.
    pub cells: usize,
    /// End-to-end wall-clock time.
    pub wall: Duration,
    /// Worker count used.
    pub threads: usize,
    /// Depth-1 solves served from the isomorphism cache.
    pub cache_hits: usize,
    /// Total function calls across all records.
    pub function_calls: usize,
}

impl CorpusReport {
    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} graphs / {} cells on {} threads in {:.2?} ({} level-1 cache hits, {} fn calls)",
            self.graphs, self.cells, self.threads, self.wall, self.cache_hits, self.function_calls,
        )
    }
}

/// Generates the Erdős–Rényi ensemble of `config` — the exact graph
/// sequence the serial [`ParameterDataset::generate`] draws (one RNG
/// streamed across the whole ensemble). Exposed so the shard coordinator
/// ([`crate::shard`]) and wire workers ([`crate::server`]) materialize
/// identical ensembles from the spec alone.
#[must_use]
pub fn ensemble(config: &DataGenConfig) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    (0..config.n_graphs)
        .map(|_| {
            generators::erdos_renyi_nonempty(config.n_nodes, config.edge_probability, &mut rng)
        })
        .collect()
}

/// Generates the Erdős–Rényi ensemble of `config` and solves it in
/// parallel. The ensemble itself matches the serial
/// [`ParameterDataset::generate`] exactly (same seed stream); the records
/// come from the engine's per-cell seeding.
///
/// # Errors
///
/// Propagates problem-construction and optimizer errors.
pub fn generate(
    config: &DataGenConfig,
    engine: &Engine,
) -> Result<(ParameterDataset, CorpusReport), QaoaError> {
    from_graphs(ensemble(config), config, engine)
}

/// Solves a caller-supplied ensemble in parallel (one worker per graph).
///
/// # Errors
///
/// Propagates problem-construction and optimizer errors.
pub fn from_graphs(
    graphs: Vec<Graph>,
    config: &DataGenConfig,
    engine: &Engine,
) -> Result<(ParameterDataset, CorpusReport), QaoaError> {
    let (records, report) = solve_range(&graphs, 0..graphs.len(), config, engine)?;
    let dataset = ParameterDataset::from_parts(graphs, records, config.max_depth)?;
    Ok((dataset, report))
}

/// Solves the `(graph, depth)` cells of `range` (global graph indices into
/// `graphs`) in parallel, returning the records in graph-index order.
///
/// This is the shard worker's unit of work: every per-cell RNG is derived
/// from the **global** graph index, so a worker handed `graphs[a..b]` of a
/// larger ensemble produces exactly the records an unsharded run computes
/// for those indices — the bit-parity invariant [`crate::shard`] builds on.
///
/// # Errors
///
/// Propagates problem-construction and optimizer errors; rejects a range
/// extending past the ensemble.
pub fn solve_range(
    graphs: &[Graph],
    range: Range<usize>,
    config: &DataGenConfig,
    engine: &Engine,
) -> Result<(Vec<OptimalRecord>, CorpusReport), QaoaError> {
    if range.end > graphs.len() || range.start > range.end {
        return Err(QaoaError::InvalidRange {
            start: range.start,
            end: range.end,
            len: graphs.len(),
        });
    }
    let start = Instant::now();
    let batch_config = BatchConfig {
        master_seed: config.seed,
        options: config.options,
        use_cache: true,
        scenario: qaoa::Scenario::Exact,
    };
    let optimizer = Lbfgsb::default();

    let per_graph: Vec<Result<(Vec<OptimalRecord>, usize), QaoaError>> = engine
        .pool()
        .run_ordered_fanout(range.len(), |offset, inner| {
            qaoa::eval::with_within_state_threads(inner, || {
                let graph_id = range.start + offset;
                solve_graph(
                    &graphs[graph_id],
                    graph_id,
                    config,
                    engine,
                    &optimizer,
                    &batch_config,
                )
            })
        });

    let mut records = Vec::with_capacity(range.len() * config.max_depth);
    let mut cache_hits = 0;
    for result in per_graph {
        let (graph_records, hits) = result?;
        cache_hits += hits;
        records.extend(graph_records);
    }
    let function_calls = records.iter().map(|r| r.function_calls).sum();
    let report = CorpusReport {
        graphs: range.len(),
        cells: records.len(),
        wall: start.elapsed(),
        threads: engine.threads(),
        cache_hits,
        function_calls,
    };
    Ok((records, report))
}

/// Solves all depths of one graph; returns its records and the number of
/// depth-1 cache hits (0 or 1).
fn solve_graph(
    graph: &Graph,
    graph_id: usize,
    config: &DataGenConfig,
    engine: &Engine,
    optimizer: &Lbfgsb,
    batch_config: &BatchConfig,
) -> Result<(Vec<OptimalRecord>, usize), QaoaError> {
    let problem = qaoa::MaxCutProblem::new(graph)?;
    let mut records = Vec::with_capacity(config.max_depth);
    let mut prev: Option<(Vec<f64>, Vec<f64>)> = None;
    let mut cache_hits = 0;

    for depth in 1..=config.max_depth {
        let record = if depth == 1 {
            // Depth 1 goes through the isomorphism cache: solved on the
            // canonical representative, seeded from the class hash.
            let (outcome, hit) =
                engine.level1_cached(graph, optimizer, config.restarts, batch_config)?;
            if hit {
                cache_hits += 1;
            }
            let mut gammas = outcome.gammas().to_vec();
            let mut betas = outcome.betas().to_vec();
            qaoa::canonical::canonicalize(&mut gammas, &mut betas);
            OptimalRecord {
                graph_id,
                depth,
                gammas,
                betas,
                expectation: outcome.expectation,
                approximation_ratio: outcome.approximation_ratio,
                function_calls: outcome.function_calls,
            }
        } else {
            let mut rng = StdRng::seed_from_u64(seed::derive2(
                config.seed,
                "corpus",
                seed::wide(graph_id),
                seed::wide(depth),
            ));
            solve_depth(&problem, graph_id, depth, prev.as_ref(), config, &mut rng)?
        };
        prev = Some((record.gammas.clone(), record.betas.clone()));
        records.push(record);
    }
    Ok((records, cache_hits))
}
