//! A work-stealing batch executor on `std::thread::scope`.
//!
//! Jobs are indices `0..n`; each worker owns a deque seeded round-robin,
//! pops from its own back (LIFO, cache-friendly) and steals from other
//! workers' fronts (FIFO, coarsest-first) when empty. Results are
//! collected **in submission order** regardless of which worker ran what,
//! so callers see serial semantics.
//!
//! The executor is deliberately free of `unsafe`: per-worker deques are
//! `Mutex<VecDeque>` (jobs here are milliseconds-long optimizations, so
//! lock traffic is noise), and each worker accumulates `(index, result)`
//! pairs locally before a final ordered merge.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Mutex, PoisonError};

/// Locks tolerating poisoning: the queues hold plain job indices and the
/// panic slot holds plain data, so a panic between `lock()` and drop can
/// never leave either in a torn state — `into_inner` is sound, and it
/// keeps sibling workers alive (and the original panic visible) when one
/// job panics.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A fixed-width worker pool.
#[derive(Debug, Clone)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with exactly `threads` workers (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A pool sized to the machine's available parallelism.
    #[must_use]
    pub fn auto() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The within-job fan-out budget for a batch of `n_jobs`: pool workers
    /// divided evenly among the jobs that can run concurrently, never less
    /// than 1. A pure function of `(threads, n_jobs)` — independent of
    /// scheduling — so the budget itself can never introduce run-to-run
    /// variation. Small batches on a wide pool get leftover workers for
    /// within-state parallelism (`qaoa::eval::with_within_state_threads`);
    /// saturated batches get 1 (all parallelism stays across jobs).
    #[must_use]
    pub fn inner_threads(&self, n_jobs: usize) -> usize {
        self.threads / n_jobs.clamp(1, self.threads)
    }

    /// [`Pool::run_ordered`] with the per-job fan-out budget passed to each
    /// job as a second argument: `job(index, inner_threads)`. The budget is
    /// the same for every job in the batch (see [`Pool::inner_threads`]).
    pub fn run_ordered_fanout<T, F>(&self, n_jobs: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
    {
        let inner = self.inner_threads(n_jobs);
        self.run_ordered(n_jobs, |i| job(i, inner))
    }

    /// Runs `job(0..n_jobs)` across the pool, returning results in
    /// submission order. `job` must be a pure function of the index for the
    /// output to be schedule-independent — the engine guarantees this by
    /// deriving all per-job randomness from stable keys (see
    /// [`crate::seed`]).
    ///
    /// # Panics
    ///
    /// A panicking job does not take its siblings down: the panic is caught
    /// on the worker, the remaining workers finish their queues, and the
    /// payload of the lowest-indexed panicked job is then re-raised on the
    /// caller via `resume_unwind` — so the *original* panic surfaces, never
    /// a downstream poisoned-lock panic.
    pub fn run_ordered<T, F>(&self, n_jobs: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(n_jobs).max(1);
        if workers == 1 {
            return (0..n_jobs).map(job).collect();
        }

        // Round-robin initial distribution.
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w..n_jobs).step_by(workers).collect::<VecDeque<usize>>()))
            .collect();
        // The lowest-indexed job panic seen so far, to re-raise at the end.
        let first_panic: Mutex<Option<(usize, Box<dyn Any + Send>)>> = Mutex::new(None);

        let mut collected: Vec<Vec<(usize, T)>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let queues = &queues;
                let job = &job;
                let first_panic = &first_panic;
                handles.push(scope.spawn(move || {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        // Own queue first (LIFO back). The guard must drop
                        // before the steal scan below: holding the own lock
                        // while acquiring another worker's would let two
                        // drained workers deadlock on each other's queues.
                        let own = lock_unpoisoned(&queues[w]).pop_back();
                        // Steal (FIFO front) scanning from the next worker
                        // onward, taking one lock at a time.
                        let next = own.or_else(|| {
                            (1..workers).find_map(|offset| {
                                lock_unpoisoned(&queues[(w + offset) % workers]).pop_front()
                            })
                        });
                        match next {
                            Some(index) => {
                                match catch_unwind(AssertUnwindSafe(|| job(index))) {
                                    Ok(value) => local.push((index, value)),
                                    Err(payload) => {
                                        let mut slot = lock_unpoisoned(first_panic);
                                        if slot.as_ref().is_none_or(|(i, _)| index < *i) {
                                            *slot = Some((index, payload));
                                        }
                                        // This worker's batch is lost either
                                        // way; stop taking work.
                                        break;
                                    }
                                }
                            }
                            None => break,
                        }
                    }
                    local
                }));
            }
            for handle in handles {
                // Workers never unwind themselves: job panics are caught
                // above, so a join failure is a harness bug.
                // lint:allow(no-panic-lib) worker closures catch_unwind every job; a failed join has no recoverable meaning
                collected.push(handle.join().expect("pool worker must not panic"));
            }
        });

        if let Some((_, payload)) = lock_unpoisoned(&first_panic).take() {
            resume_unwind(payload);
        }

        // Ordered merge.
        let mut slots: Vec<Option<T>> = (0..n_jobs).map(|_| None).collect();
        for (index, value) in collected.into_iter().flatten() {
            debug_assert!(slots[index].is_none(), "job {index} ran twice");
            slots[index] = Some(value);
        }
        slots
            .into_iter()
            .enumerate()
            // lint:allow(no-panic-lib) the dispatch loop hands out each index exactly once; an empty slot is a harness bug, not input
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("job {i} never ran")))
            .collect()
    }
}

impl Default for Pool {
    fn default() -> Self {
        Self::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_in_submission_order() {
        let pool = Pool::new(4);
        let out = pool.run_ordered(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let pool = Pool::new(3);
        let counter = AtomicUsize::new(0);
        let out = pool.run_ordered(57, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 57);
        assert_eq!(out.len(), 57);
    }

    #[test]
    fn single_thread_and_empty_batches() {
        assert_eq!(Pool::new(1).run_ordered(5, |i| i), vec![0, 1, 2, 3, 4]);
        assert!(Pool::new(4).run_ordered(0, |i| i).is_empty());
        assert_eq!(Pool::new(0).threads(), 1);
    }

    #[test]
    fn uneven_jobs_are_stolen() {
        // One pathologically slow job; the other workers should drain the
        // rest. Functional check only: results stay ordered and complete.
        let pool = Pool::new(4);
        let out = pool.run_ordered(32, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i + 1
        });
        assert_eq!(out, (1..=32).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_jobs() {
        let pool = Pool::new(16);
        assert_eq!(pool.run_ordered(2, |i| i), vec![0, 1]);
    }

    #[test]
    fn inner_threads_splits_idle_workers() {
        let pool = Pool::new(8);
        // Saturated or oversubscribed batches keep all parallelism across jobs.
        assert_eq!(pool.inner_threads(8), 1);
        assert_eq!(pool.inner_threads(100), 1);
        // Narrow batches hand leftover workers to each job.
        assert_eq!(pool.inner_threads(2), 4);
        assert_eq!(pool.inner_threads(3), 2);
        assert_eq!(pool.inner_threads(1), 8);
        // Degenerate inputs stay sane.
        assert_eq!(pool.inner_threads(0), 8);
        assert_eq!(Pool::new(1).inner_threads(4), 1);
    }

    #[test]
    fn fanout_passes_one_budget_to_every_job() {
        let pool = Pool::new(4);
        let budgets = pool.run_ordered_fanout(2, |i, inner| (i, inner));
        assert_eq!(budgets, vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn job_panic_propagates_the_original_payload() {
        // Regression test: a panicking job used to poison its queue mutex,
        // killing sibling workers on `expect("queue lock")` — the caller
        // saw the *mask* panic instead of the original one.
        let pool = Pool::new(4);
        let ran = AtomicUsize::new(0);
        let unwound = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_ordered(32, |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 5 {
                    panic!("job five exploded");
                }
                i
            })
        }));
        let payload = unwound.expect_err("the job panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .expect("original payload type survives");
        assert!(
            message.contains("job five exploded"),
            "caller must see the job's panic, not a poisoned-lock panic: {message}"
        );
        // Sibling workers survived the poison and kept draining: far more
        // than the panicking worker's share ran.
        assert!(ran.load(Ordering::Relaxed) > 8);
    }

    #[test]
    fn lowest_indexed_panic_wins_when_every_job_panics() {
        // With every job panicking, each worker records its first pop; the
        // propagated payload must be the lowest *ran* index — and with
        // 2 workers over 2 jobs, job 0 always runs, so the winner is
        // deterministic.
        let pool = Pool::new(2);
        let unwound = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_ordered(2, |i| -> usize { panic!("boom {i}") })
        }));
        let payload = unwound.expect_err("must propagate");
        let message = payload.downcast_ref::<String>().expect("String payload");
        assert_eq!(message, "boom 0");
    }

    #[test]
    fn pool_is_reusable_after_a_panicked_batch() {
        let pool = Pool::new(3);
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_ordered(9, |i| {
                if i == 0 {
                    panic!("first batch dies");
                }
                i
            })
        }));
        // The next batch on the same pool runs clean.
        assert_eq!(pool.run_ordered(4, |i| i * 2), vec![0, 2, 4, 6]);
    }

    #[test]
    fn drain_stress_does_not_deadlock() {
        // Regression test: workers used to hold their own (empty) queue's
        // lock while trying to steal, so two simultaneously-draining
        // workers could deadlock. Thousands of tiny rounds make the
        // drain/steal collision window likely.
        let pool = Pool::new(2);
        for round in 0..5_000 {
            let out = pool.run_ordered(4, |i| i + round);
            assert_eq!(out.len(), 4);
        }
    }
}
