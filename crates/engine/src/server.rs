//! The job-server front end: a line-delimited request loop over
//! [`crate::wire`].
//!
//! The server reads messages from any `BufRead` (stdin in the `qaoa-serve`
//! binary), accumulates `JOB` lines, and executes the pending batch on the
//! engine whenever a `RUN` sentinel — or end of input — arrives. Outcomes
//! stream back **in submission order**, one `OUTCOME` line per job,
//! followed by one `REPORT` line per batch; the output is flushed after
//! every batch so interactive clients see results as soon as they exist.
//!
//! The same loop speaks the **worker side of shard tasking**
//! ([`crate::shard`]): a `SHARD` line opens a corpus session (the worker
//! derives the full ensemble from the spec's seed), and each subsequent
//! `RANGE` line generates that global graph-index range's corpus cells,
//! streaming `RECORD` lines back followed by one `DONE` marker. Range
//! tasking is validated in context — a `RANGE` before any `SHARD`, a range
//! past the ensemble, or one overlapping an already-served range answers
//! `ERR` (a coordinator bug must surface, not silently double-generate
//! records).
//!
//! With a trained model attached ([`serve_with_model`]), the loop is also a
//! **low-latency prediction service**: each `PREDICT` line is answered
//! immediately (no batching) with one `PREDICTED` line carrying
//! initialization parameters for the requested graph and depth, produced by
//! the cheapest able tier —
//!
//! 1. **cached exact** — a depth-1 request whose `(canonical class,
//!    restarts)` is already in the depth-1 cache answers the cached exact
//!    optimum,
//! 2. **model** — a deeper request whose class is cached answers the
//!    trained predictor's parameters, seeded from the cached depth-1
//!    optimum (the paper's predict-don't-optimize promise),
//! 3. **warm start** — a cold class runs the optimizer (the two-level flow
//!    at depth > 1, a plain depth-1 solve otherwise) through the engine's
//!    pool, which also warms the cache so follow-up requests answer from
//!    tiers 1–2.
//!
//! Deep (depth > 1) answers are memoized per `(class, restarts, depth)`
//! for the session, so a repeated request echoes its original tier and bits
//! even after the cache has warmed underneath it; depth-1 repeats are
//! already bit-stable through the cache itself. Per-tier request counts and latency
//! totals accumulate in the [`ServeSummary`]; nothing timing-derived is
//! ever written to `output`, so serving the same requests twice produces
//! bit-identical transcripts.
//!
//! Error containment: a malformed line answers with an `ERR` line and the
//! loop continues — one bad client line must not kill a server multiplexing
//! many. [`crate::wire::decode_job`] validates executability at decode
//! time (depth/restarts ≥ 1, non-empty graph), so batch execution itself
//! only fails on conditions a well-formed job cannot trigger; such a
//! failure answers with one `ERR` line for the whole batch.
//!
//! Determinism: outcomes are a pure function of `(job lines, master seed)`
//! — the engine derives every per-job RNG from stable keys, and depth-1
//! jobs go through the (optionally pre-warmed, see [`crate::persist`])
//! isomorphism cache, which never changes values, only cost. The cache is
//! keyed on `(canonical class, restarts)`, so isomorphic jobs in one
//! session whose restart counts differ never serve each other's optima.
//! Shard sessions run on their **own** engine (cache entries are pure
//! functions of the *session spec's* master seed, which need not match the
//! server's `--seed`); when the two seeds do agree, the session engine is
//! pre-warmed from the server cache and folded back after each range, so
//! `--cache-file` benefits shard work too.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, Write};
use std::ops::Range;
use std::time::{Duration, Instant};

use graphs::Graph;
use optimize::Optimizer;
use qaoa::canonical::graph_key;
use qaoa::datagen::DataGenConfig;
use qaoa::ParameterPredictor;

use crate::batch::{BatchConfig, Engine, Job};
use crate::cache::Level1Key;
use crate::corpus;
use crate::wire;
use crate::wire::AnswerTier;

/// Accounting for one [`serve`] session.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs executed successfully.
    pub jobs: usize,
    /// Batches flushed (RUN sentinels plus the implicit EOF flush).
    pub batches: usize,
    /// Shard ranges served (`RANGE` lines that completed with `DONE`).
    pub ranges: usize,
    /// Corpus cells generated across all served ranges.
    pub cells: usize,
    /// `ERR` lines emitted (malformed input, failed batches or ranges).
    pub errors: usize,
    /// Depth-1 cache hits across all batches.
    pub cache_hits: usize,
    /// Depth-1 cache misses (solves) across all batches.
    pub cache_misses: usize,
    /// `PREDICT` requests answered (memoized answers included, errors not).
    pub predicts: usize,
    /// `PREDICT` requests answered from the session memo (a repeat of an
    /// earlier request; counted into its original tier's stats too).
    pub predict_memo_hits: usize,
    /// Per-tier request counts and latency, indexed tier 1 → 3.
    pub tiers: [TierStats; 3],
}

/// Request count and cumulative latency of one answer tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// `PREDICT` requests this tier answered.
    pub requests: usize,
    /// Total wall-clock time spent answering them (decode to write).
    pub wall: Duration,
}

impl TierStats {
    /// Mean latency per answered request (zero when none were).
    #[must_use]
    pub fn mean_latency(&self) -> Duration {
        let n = u32::try_from(self.requests).unwrap_or(u32::MAX);
        if n == 0 {
            Duration::ZERO
        } else {
            self.wall / n
        }
    }

    /// Answers per second (zero when no time was spent).
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let n = u32::try_from(self.requests).unwrap_or(u32::MAX);
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            f64::from(n) / secs
        } else {
            0.0
        }
    }
}

impl ServeSummary {
    fn record_predict(&mut self, tier: AnswerTier, wall: Duration, memoized: bool) {
        self.predicts += 1;
        if memoized {
            self.predict_memo_hits += 1;
        }
        let slot = match tier {
            AnswerTier::CachedExact => &mut self.tiers[0],
            AnswerTier::Model => &mut self.tiers[1],
            AnswerTier::WarmStart => &mut self.tiers[2],
        };
        slot.requests += 1;
        slot.wall += wall;
    }

    /// Multi-line per-tier accounting of the session's `PREDICT` traffic,
    /// for the driver's stderr (latency never goes on the wire — transcripts
    /// stay bit-identical across runs).
    #[must_use]
    pub fn predict_report(&self) -> String {
        let mut lines = vec![format!(
            "{} PREDICT answers ({} memoized)",
            self.predicts, self.predict_memo_hits
        )];
        for (tier, stats) in [
            AnswerTier::CachedExact,
            AnswerTier::Model,
            AnswerTier::WarmStart,
        ]
        .into_iter()
        .zip(&self.tiers)
        {
            lines.push(format!(
                "  {tier}: {} answers, total {:.2?}, mean {:.2?}, {:.1}/s",
                stats.requests,
                stats.wall,
                stats.mean_latency(),
                stats.throughput(),
            ));
        }
        lines.join("\n")
    }
}

impl fmt::Display for ServeSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} jobs in {} batches, {} shard ranges / {} cells ({} errors, depth-1 cache {}/{} hit)",
            self.jobs,
            self.batches,
            self.ranges,
            self.cells,
            self.errors,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
        )?;
        if self.predicts > 0 {
            write!(
                f,
                ", {} predicts (tiers {}/{}/{})",
                self.predicts,
                self.tiers[0].requests,
                self.tiers[1].requests,
                self.tiers[2].requests,
            )?;
        }
        Ok(())
    }
}

/// One open shard-tasking session: the corpus spec a `SHARD` line declared,
/// the ensemble derived from it, the session's own engine, and the ranges
/// already served (for overlap rejection).
struct ShardSession {
    spec: DataGenConfig,
    graphs: Vec<Graph>,
    engine: Engine,
    served: Vec<Range<usize>>,
}

/// Runs the request loop until `input` is exhausted. Blank lines and
/// `#`-prefixed comment lines are ignored.
///
/// # Errors
///
/// Only transport failures (reading `input`, writing `output`) abort the
/// loop; every protocol-level problem is answered in-band with an `ERR`
/// line.
pub fn serve<R: BufRead, W: Write>(
    input: R,
    output: W,
    engine: &Engine,
    optimizer: &(dyn Optimizer + Sync),
    config: &BatchConfig,
) -> std::io::Result<ServeSummary> {
    serve_with_model(input, output, engine, optimizer, config, None)
}

/// [`serve`] with an optional trained predictor attached, which enables the
/// `PREDICT` verb (see the module docs for the answer tiers). Without a
/// predictor, `PREDICT` lines answer `ERR`.
///
/// # Errors
///
/// Same contract as [`serve`]: only transport failures abort the loop.
pub fn serve_with_model<R: BufRead, W: Write>(
    input: R,
    mut output: W,
    engine: &Engine,
    optimizer: &(dyn Optimizer + Sync),
    config: &BatchConfig,
    predictor: Option<&ParameterPredictor>,
) -> std::io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    let mut pending: Vec<Job> = Vec::new();
    let mut session: Option<ShardSession> = None;
    let mut memo: PredictMemo = BTreeMap::new();

    for line in input.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match wire::message_type(line) {
            Ok("JOB") => match wire::decode_job(line) {
                Ok(job) => pending.push(job),
                Err(e) => reject(&mut output, &mut summary, &e.to_string())?,
            },
            Ok("RUN") => {
                flush_batch(
                    &mut output,
                    engine,
                    optimizer,
                    config,
                    &mut pending,
                    &mut summary,
                )?;
            }
            Ok("SHARD") => match wire::decode_shard(line) {
                Ok(spec) => session = Some(open_session(spec, engine, config)),
                Err(e) => reject(&mut output, &mut summary, &e.to_string())?,
            },
            Ok("RANGE") => {
                serve_range(
                    &mut output,
                    line,
                    session.as_mut(),
                    engine,
                    config,
                    &mut summary,
                )?;
            }
            Ok("PREDICT") => {
                answer_predict(
                    &mut output,
                    line,
                    engine,
                    optimizer,
                    config,
                    predictor,
                    &mut memo,
                    &mut summary,
                )?;
            }
            Ok(other) => reject(
                &mut output,
                &mut summary,
                &format!(
                    "unexpected {other} message (the server accepts JOB, RUN, SHARD, RANGE, and PREDICT)"
                ),
            )?,
            Err(e) => reject(&mut output, &mut summary, &e.to_string())?,
        }
    }
    // EOF flushes the final batch, so `printf JOB... | qaoa-serve` works
    // without an explicit RUN.
    if !pending.is_empty() {
        flush_batch(
            &mut output,
            engine,
            optimizer,
            config,
            &mut pending,
            &mut summary,
        )?;
    }
    Ok(summary)
}

/// The session's answer memo for depth > 1 requests: `(class, restarts,
/// depth)` → the tier and parameters first answered. A repeated deep
/// request must echo the same bits, but after its tier-3 solve has warmed
/// the cache the repeat would re-route through tier 2 and answer the
/// *model's* parameters instead of the optimized ones — the memo pins the
/// original answer. Depth-1 requests don't need it: tiers 1 and 3 both
/// answer the cache's exact optimum, identical bits either way.
type PredictMemo = BTreeMap<(Level1Key, usize), (AnswerTier, Vec<f64>)>;

/// Handles one `PREDICT` line: picks the cheapest able tier, answers one
/// `PREDICTED` line, and accounts the tier's latency. Unanswerable
/// requests (no model, depth beyond the model, optimizer failure) answer
/// `ERR`.
#[allow(clippy::too_many_arguments)]
fn answer_predict<W: Write>(
    output: &mut W,
    line: &str,
    engine: &Engine,
    optimizer: &(dyn Optimizer + Sync),
    config: &BatchConfig,
    predictor: Option<&ParameterPredictor>,
    memo: &mut PredictMemo,
    summary: &mut ServeSummary,
) -> std::io::Result<()> {
    let start = Instant::now();
    let request = match wire::decode_predict(line) {
        Ok(request) => request,
        Err(e) => return reject(output, summary, &e.to_string()),
    };
    let Some(predictor) = predictor else {
        return reject(
            output,
            summary,
            &format!(
                "PREDICT {} needs a trained model (start the server with --model)",
                request.id
            ),
        );
    };
    if request.depth > predictor.max_depth() {
        return reject(
            output,
            summary,
            &format!(
                "PREDICT {} depth {} exceeds the model's max depth {}",
                request.id,
                request.depth,
                predictor.max_depth()
            ),
        );
    }
    let key = Level1Key::new(graph_key(&request.graph), request.restarts);
    let memo_key = (key.clone(), request.depth);
    if let Some((tier, params)) = memo.get(&memo_key).filter(|_| request.depth > 1) {
        let answer = wire::Predicted {
            id: request.id,
            tier: *tier,
            params: params.clone(),
        };
        writeln!(output, "{}", wire::encode_predicted(&answer))?;
        summary.record_predict(*tier, start.elapsed(), true);
        return output.flush();
    }
    let answered = match engine.cache().peek(&key) {
        // Tier 1: the request *is* a depth-1 solve we already hold.
        Some(level1) if request.depth == 1 => Ok((AnswerTier::CachedExact, level1.params)),
        // Tier 2: predict from the cached depth-1 optimum's features.
        Some(level1) => match (level1.params.first(), level1.params.get(1)) {
            (Some(&gamma1), Some(&beta1)) => predictor
                .predict(gamma1, beta1, request.depth)
                .map(|params| (AnswerTier::Model, params))
                .map_err(|e| e.to_string()),
            _ => Err("cached depth-1 optimum carries no parameters".into()),
        },
        // Tier 3, cold depth-1 request: solve it (and warm the cache).
        None if request.depth == 1 => engine
            .level1_cached(&request.graph, optimizer, request.restarts, config)
            .map(|(outcome, _)| (AnswerTier::WarmStart, outcome.params))
            .map_err(|e| e.to_string()),
        // Tier 3, cold deep request: the full two-level flow (depth-1 solve
        // warms the cache, the model's prediction warm-starts the target
        // depth), batched through the engine's pool.
        None => engine
            .run_two_level_batch(
                std::slice::from_ref(&request.graph),
                request.depth,
                optimizer,
                predictor,
                request.restarts,
                config,
            )
            .map_err(|e| e.to_string())
            .and_then(|(outcomes, _)| {
                outcomes
                    .into_iter()
                    .next()
                    .map(|o| (AnswerTier::WarmStart, o.params))
                    .ok_or_else(|| "two-level batch returned no outcome".into())
            }),
    };
    match answered {
        Ok((tier, params)) => {
            let answer = wire::Predicted {
                id: request.id,
                tier,
                params: params.clone(),
            };
            writeln!(output, "{}", wire::encode_predicted(&answer))?;
            if request.depth > 1 {
                memo.insert(memo_key, (tier, params));
            }
            summary.record_predict(tier, start.elapsed(), false);
            output.flush()
        }
        Err(e) => reject(
            output,
            summary,
            &format!("PREDICT {} failed: {e}", request.id),
        ),
    }
}

fn reject<W: Write>(
    output: &mut W,
    summary: &mut ServeSummary,
    message: &str,
) -> std::io::Result<()> {
    summary.errors += 1;
    writeln!(output, "{}", wire::encode_err(message))?;
    output.flush()
}

/// Opens a shard session for `spec`: derives the ensemble and gives the
/// session its own engine (cache purity — see the module docs), pre-warmed
/// from the server cache when the two master seeds agree.
fn open_session(spec: DataGenConfig, engine: &Engine, config: &BatchConfig) -> ShardSession {
    let session_engine = Engine::new(engine.threads());
    if spec.seed == config.master_seed {
        session_engine.cache().merge_from(engine.cache());
    }
    ShardSession {
        graphs: corpus::ensemble(&spec),
        spec,
        engine: session_engine,
        served: Vec::new(),
    }
}

/// Handles one `RANGE` line: contextual validation against the open
/// session, then the solve, streaming `RECORD` lines and the `DONE` marker.
fn serve_range<W: Write>(
    output: &mut W,
    line: &str,
    session: Option<&mut ShardSession>,
    engine: &Engine,
    config: &BatchConfig,
    summary: &mut ServeSummary,
) -> std::io::Result<()> {
    let range = match wire::decode_range(line) {
        Ok(range) => range,
        Err(e) => return reject(output, summary, &e.to_string()),
    };
    let Some(session) = session else {
        return reject(
            output,
            summary,
            "RANGE before SHARD (no corpus spec in this session)",
        );
    };
    if range.end > session.graphs.len() {
        return reject(
            output,
            summary,
            &format!(
                "RANGE {}..{} out of bounds (the SHARD spec has {} graphs)",
                range.start,
                range.end,
                session.graphs.len()
            ),
        );
    }
    // Overlap = a shared graph index, which an empty range cannot have —
    // plans legally contain empty ranges anywhere, including inside
    // another shard's span, so only non-empty pairs can conflict.
    if let Some(prior) = session
        .served
        .iter()
        .find(|s| !range.is_empty() && s.start < range.end && range.start < s.end)
    {
        return reject(
            output,
            summary,
            &format!(
                "RANGE {}..{} overlaps already-served range {}..{}",
                range.start, range.end, prior.start, prior.end
            ),
        );
    }
    // Solve and stream the range one pool-width of graphs at a time:
    // records go out (and flush) as each chunk completes, so a streaming
    // coordinator sees steady liveness on a long range instead of one
    // burst at the end. The bytes are identical to a whole-range solve —
    // every cell is a pure function of its global index, and the chunks
    // walk the range in order — and `DONE` carries the summed accounting.
    let chunk = session.engine.threads().max(1);
    let mut cells = 0;
    let mut function_calls = 0;
    let mut cursor = range.start;
    while cursor < range.end {
        let stop = range.end.min(cursor + chunk);
        match corpus::solve_range(
            &session.graphs,
            cursor..stop,
            &session.spec,
            &session.engine,
        ) {
            Ok((records, report)) => {
                for record in &records {
                    writeln!(output, "{}", wire::encode_record(record))?;
                }
                output.flush()?;
                cells += report.cells;
                function_calls += report.function_calls;
            }
            Err(e) => {
                return reject(
                    output,
                    summary,
                    &format!("range {}..{} failed: {e}", range.start, range.end),
                );
            }
        }
        cursor = stop;
    }
    writeln!(
        output,
        "{}",
        wire::encode_done(&wire::RangeDone {
            range: range.clone(),
            cells,
            function_calls,
        })
    )?;
    // An empty range covers no indices; keeping it out of the
    // served set means it can never (spuriously) conflict.
    if !range.is_empty() {
        session.served.push(range);
    }
    if session.spec.seed == config.master_seed {
        engine.cache().merge_from(session.engine.cache());
    }
    summary.ranges += 1;
    summary.cells += cells;
    output.flush()
}

fn flush_batch<W: Write>(
    output: &mut W,
    engine: &Engine,
    optimizer: &(dyn Optimizer + Sync),
    config: &BatchConfig,
    pending: &mut Vec<Job>,
    summary: &mut ServeSummary,
) -> std::io::Result<()> {
    summary.batches += 1;
    if pending.is_empty() {
        writeln!(output, "{}", wire::encode_report(&empty_report(engine)))?;
        return output.flush();
    }
    let jobs = std::mem::take(pending);
    match engine.run_batch(optimizer, &jobs, config) {
        Ok((outcomes, report)) => {
            for outcome in &outcomes {
                writeln!(output, "{}", wire::encode_outcome(outcome))?;
            }
            summary.jobs += outcomes.len();
            summary.cache_hits += report.cache_hits;
            summary.cache_misses += report.cache_misses;
            writeln!(output, "{}", wire::encode_report(&report))?;
        }
        Err(e) => {
            summary.errors += 1;
            writeln!(
                output,
                "{}",
                wire::encode_err(&format!("batch of {} jobs failed: {e}", jobs.len()))
            )?;
        }
    }
    output.flush()
}

fn empty_report(engine: &Engine) -> crate::batch::BatchReport {
    crate::batch::BatchReport {
        jobs: Vec::new(),
        wall: std::time::Duration::ZERO,
        threads: engine.threads(),
        total_function_calls: 0,
        total_gradient_calls: 0,
        cache_hits: 0,
        cache_misses: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimize::Lbfgsb;

    fn run_session(input: &str, engine: &Engine) -> (String, ServeSummary) {
        let mut out = Vec::new();
        let summary = serve(
            std::io::Cursor::new(input),
            &mut out,
            engine,
            &Lbfgsb::default(),
            &BatchConfig::default(),
        )
        .expect("transport never fails in-memory");
        (String::from_utf8(out).unwrap(), summary)
    }

    #[test]
    fn two_jobs_two_outcomes_in_order() {
        let input = "QW1 JOB 1 2 5 0-1,1-2,2-3,3-4,4-0\nQW1 JOB 2 2 4 0-1,1-2,2-3,3-0\n";
        let engine = Engine::new(2);
        let (out, summary) = run_session(input, &engine);
        let outcomes: Vec<&str> = out
            .lines()
            .filter(|l| l.starts_with("QW1 OUTCOME"))
            .collect();
        assert_eq!(outcomes.len(), 2);
        // Submission order: job 1 has depth 1 (2 params), job 2 depth 2 (4).
        assert_eq!(wire::decode_outcome(outcomes[0]).unwrap().params.len(), 2);
        assert_eq!(wire::decode_outcome(outcomes[1]).unwrap().params.len(), 4);
        assert_eq!(
            out.lines().filter(|l| l.starts_with("QW1 REPORT")).count(),
            1
        );
        assert_eq!(summary.jobs, 2);
        assert_eq!(summary.batches, 1);
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn run_sentinel_splits_batches_and_outcomes_are_deterministic() {
        let job = "QW1 JOB 1 2 5 0-1,1-2,2-3,3-4,4-0";
        let batched = format!("{job}\nQW1 RUN -\n{job}\n");
        let engine = Engine::new(2);
        let (out, summary) = run_session(&batched, &engine);
        assert_eq!(summary.batches, 2);
        assert_eq!(summary.jobs, 2);
        // Same job twice: bit-identical outcome lines, and the second batch
        // served it from the cache warmed by the first.
        let outcomes: Vec<&str> = out
            .lines()
            .filter(|l| l.starts_with("QW1 OUTCOME"))
            .collect();
        assert_eq!(outcomes[0], outcomes[1]);
        assert_eq!(summary.cache_hits, 1);
        assert_eq!(summary.cache_misses, 1);
    }

    #[test]
    fn isomorphic_jobs_with_different_restarts_do_not_conflate() {
        // Relabelings of one 5-cycle at restarts 2 and 3: the second job
        // must be solved under its own restart budget, not served the
        // first's cached optimum — and must match the same job run alone.
        let with_r2 = "QW1 JOB 1 2 5 0-1,1-2,2-3,3-4,4-0\nQW1 JOB 1 3 5 1-3,3-0,0-4,4-2,2-1\n";
        let engine = Engine::new(1);
        let (out, summary) = run_session(with_r2, &engine);
        assert_eq!(summary.cache_hits, 0);
        assert_eq!(summary.cache_misses, 2);
        let outcomes: Vec<&str> = out
            .lines()
            .filter(|l| l.starts_with("QW1 OUTCOME"))
            .collect();
        let (alone_out, _) = run_session("QW1 JOB 1 3 5 1-3,3-0,0-4,4-2,2-1\n", &Engine::new(1));
        let alone: Vec<&str> = alone_out
            .lines()
            .filter(|l| l.starts_with("QW1 OUTCOME"))
            .collect();
        assert_eq!(outcomes[1], alone[0], "restarts=3 outcome must be its own");
    }

    #[test]
    fn bad_lines_answer_err_and_the_loop_survives() {
        let input = "\
not even wire\n\
QW1 JOB 0 2 3 0-1\n\
QW1 KEY 3 0-1\n\
# a comment\n\
\n\
QW1 JOB 1 2 3 0-1,1-2\n";
        let engine = Engine::new(1);
        let (out, summary) = run_session(input, &engine);
        assert_eq!(summary.errors, 3);
        assert_eq!(summary.jobs, 1, "the good job still ran");
        assert_eq!(out.lines().filter(|l| l.starts_with("QW1 ERR")).count(), 3);
        assert_eq!(
            out.lines().filter(|l| l.starts_with("QW1 OUTCOME")).count(),
            1
        );
    }

    /// A quick-scale SHARD line (10 graphs, 6 nodes, p=0.5, depth 3,
    /// restarts 3, seed 2020, margin 1e-3).
    fn shard_line() -> String {
        wire::encode_shard(&qaoa::datagen::DataGenConfig::quick())
    }

    #[test]
    fn shard_session_serves_ranges_with_records_and_done() {
        let input = format!("{}\nQW1 RANGE 2 4\nQW1 RANGE 0 0\n", shard_line());
        let engine = Engine::new(2);
        let (out, summary) = run_session(&input, &engine);
        assert_eq!(summary.errors, 0, "output: {out}");
        assert_eq!(summary.ranges, 2);
        assert_eq!(summary.cells, 6, "2 graphs x depths 1..=3");
        let records: Vec<_> = out
            .lines()
            .filter(|l| l.starts_with("QW1 RECORD"))
            .map(|l| wire::decode_record(l).unwrap())
            .collect();
        assert_eq!(records.len(), 6);
        // Global graph ids, graph-major depth-minor order.
        let coords: Vec<(usize, usize)> = records.iter().map(|r| (r.graph_id, r.depth)).collect();
        assert_eq!(coords, vec![(2, 1), (2, 2), (2, 3), (3, 1), (3, 2), (3, 3)]);
        // One DONE per range, carrying the range's accounting; the empty
        // range completes with zero cells.
        let dones: Vec<_> = out
            .lines()
            .filter(|l| l.starts_with("QW1 DONE"))
            .map(|l| wire::decode_done(l).unwrap())
            .collect();
        assert_eq!(dones.len(), 2);
        assert_eq!(dones[0].range, 2..4);
        assert_eq!(dones[0].cells, 6);
        assert_eq!(
            dones[0].function_calls,
            records.iter().map(|r| r.function_calls).sum::<usize>()
        );
        assert_eq!(dones[1].range, 0..0);
        assert_eq!(dones[1].cells, 0);
    }

    #[test]
    fn range_records_match_a_direct_solve_bit_for_bit() {
        let spec = qaoa::datagen::DataGenConfig::quick();
        let input = format!("{}\nQW1 RANGE 4 6\n", wire::encode_shard(&spec));
        let (out, _) = run_session(&input, &Engine::new(2));
        let served: Vec<String> = out
            .lines()
            .filter(|l| l.starts_with("QW1 RECORD"))
            .map(String::from)
            .collect();
        let graphs = crate::corpus::ensemble(&spec);
        let (direct, _) =
            crate::corpus::solve_range(&graphs, 4..6, &spec, &Engine::new(1)).unwrap();
        let expected: Vec<String> = direct.iter().map(wire::encode_record).collect();
        assert_eq!(served, expected, "wire records must be bit-identical");
    }

    #[test]
    fn range_before_shard_answers_err_and_loop_survives() {
        let input = format!("QW1 RANGE 0 2\n{}\nQW1 RANGE 0 1\n", shard_line());
        let (out, summary) = run_session(&input, &Engine::new(1));
        assert_eq!(summary.errors, 1);
        assert_eq!(summary.ranges, 1, "the post-SHARD range still served");
        assert!(out.contains("RANGE before SHARD"));
    }

    #[test]
    fn out_of_bounds_range_answers_err_and_loop_survives() {
        // The quick spec has 10 graphs; 8..12 must be refused in context
        // even though the RANGE line itself is well-formed.
        let input = format!("{}\nQW1 RANGE 8 12\nQW1 RANGE 8 10\n", shard_line());
        let (out, summary) = run_session(&input, &Engine::new(1));
        assert_eq!(summary.errors, 1);
        assert_eq!(summary.ranges, 1);
        assert!(out.contains("out of bounds"));
    }

    #[test]
    fn overlapping_ranges_answer_err_and_loop_survives() {
        let input = format!(
            "{}\nQW1 RANGE 0 2\nQW1 RANGE 1 3\nQW1 RANGE 2 3\n",
            shard_line()
        );
        let (out, summary) = run_session(&input, &Engine::new(1));
        assert_eq!(summary.errors, 1, "output: {out}");
        assert_eq!(summary.ranges, 2, "disjoint follow-up range still served");
        assert!(out.contains("overlaps already-served range 0..2"));
        // A fresh SHARD resets the served set: re-serving 0..2 is fine.
        let reshard = format!("{0}\nQW1 RANGE 0 2\n{0}\nQW1 RANGE 0 2\n", shard_line());
        let (_, summary) = run_session(&reshard, &Engine::new(1));
        assert_eq!(summary.errors, 0);
        assert_eq!(summary.ranges, 2);
    }

    #[test]
    fn empty_ranges_never_overlap_anything() {
        // Plans legally contain empty ranges anywhere — including a point
        // strictly inside an already-served span — and an empty range
        // covers no indices, so it must serve (zero records + DONE), not
        // answer ERR. It must also never block a later real range.
        let input = format!(
            "{}\nQW1 RANGE 0 4\nQW1 RANGE 2 2\nQW1 RANGE 2 2\nQW1 RANGE 4 6\n",
            shard_line()
        );
        let (out, summary) = run_session(&input, &Engine::new(1));
        assert_eq!(summary.errors, 0, "output: {out}");
        assert_eq!(summary.ranges, 4);
        let dones: Vec<_> = out
            .lines()
            .filter(|l| l.starts_with("QW1 DONE"))
            .map(|l| wire::decode_done(l).unwrap())
            .collect();
        assert_eq!(dones.len(), 4);
        assert_eq!((dones[1].range.clone(), dones[1].cells), (2..2, 0));
        assert_eq!(dones[3].range, 4..6);
    }

    #[test]
    fn worker_only_lines_answer_err_without_killing_the_loop() {
        // DONE (and a duplicate of it) belongs to the worker->coordinator
        // direction; a server receiving one answers ERR per line, like any
        // unexpected message, and keeps serving.
        let input = format!(
            "QW1 DONE 0 2 4 100\nQW1 DONE 0 2 4 100\n{}\nQW1 RANGE 0 1\nQW1 SHARD bogus\nQW1 RANGE 0 0\n",
            shard_line()
        );
        let (out, summary) = run_session(&input, &Engine::new(1));
        assert_eq!(summary.errors, 3, "two DONEs + one malformed SHARD");
        assert_eq!(summary.ranges, 2, "ranges around the bad lines served");
        assert_eq!(out.lines().filter(|l| l.starts_with("QW1 ERR")).count(), 3);
        assert!(out.contains("unexpected DONE message"));
    }

    #[test]
    fn oversized_shard_spec_answers_err_and_loop_survives() {
        // Regression: a SHARD line declaring a near-usize::MAX ensemble
        // once reached the eager ensemble allocation and killed the whole
        // process with a capacity overflow. It must be refused at decode
        // time like any other non-executable spec.
        let input = format!(
            "QW1 SHARD {} 5 3fe0000000000000 2 2 99 3f50624dd2f1a9fc\n{}\nQW1 RANGE 0 1\n",
            usize::MAX,
            shard_line()
        );
        let (out, summary) = run_session(&input, &Engine::new(1));
        assert_eq!(summary.errors, 1);
        assert_eq!(summary.ranges, 1, "the sane follow-up session still works");
        assert!(out.contains("exceeds"));
    }

    #[test]
    fn shard_sessions_and_job_batches_coexist() {
        let input = format!(
            "QW1 JOB 1 2 5 0-1,1-2,2-3,3-4,4-0\n{}\nQW1 RANGE 0 1\nQW1 RUN -\n",
            shard_line()
        );
        let (out, summary) = run_session(&input, &Engine::new(1));
        assert_eq!(summary.errors, 0, "output: {out}");
        assert_eq!(summary.jobs, 1);
        assert_eq!(summary.ranges, 1);
        assert_eq!(
            out.lines().filter(|l| l.starts_with("QW1 OUTCOME")).count(),
            1
        );
        assert_eq!(out.lines().filter(|l| l.starts_with("QW1 DONE")).count(), 1);
    }

    fn trained_predictor() -> ParameterPredictor {
        let corpus = qaoa::datagen::ParameterDataset::generate(&qaoa::datagen::DataGenConfig {
            n_graphs: 5,
            n_nodes: 5,
            edge_probability: 0.6,
            max_depth: 3,
            restarts: 2,
            seed: 33,
            options: Default::default(),
            trend_preference_margin: 1e-3,
        })
        .unwrap();
        ParameterPredictor::train(ml::ModelKind::Linear, &corpus).unwrap()
    }

    fn run_model_session(
        input: &str,
        engine: &Engine,
        predictor: &ParameterPredictor,
    ) -> (String, ServeSummary) {
        let mut out = Vec::new();
        let summary = serve_with_model(
            std::io::Cursor::new(input),
            &mut out,
            engine,
            &Lbfgsb::default(),
            &BatchConfig::default(),
            Some(predictor),
        )
        .expect("transport never fails in-memory");
        (String::from_utf8(out).unwrap(), summary)
    }

    #[test]
    fn predict_without_model_answers_err_and_loop_survives() {
        let input = "QW1 PREDICT 1 1 2 5 0-1,1-2,2-3,3-4,4-0\nQW1 JOB 1 2 3 0-1,1-2\n";
        let (out, summary) = run_session(input, &Engine::new(1));
        assert_eq!(summary.errors, 1);
        assert_eq!(summary.predicts, 0);
        assert_eq!(summary.jobs, 1, "the job after the refused predict ran");
        assert!(out.contains("--model"), "output: {out}");
    }

    #[test]
    fn predict_answers_one_tier_per_request_state() {
        let cycle = "0-1,1-2,2-3,3-4,4-0";
        let relabeled = "1-3,3-0,0-4,4-2,2-1";
        let input = format!(
            "QW1 PREDICT 1 1 2 5 {cycle}\n\
             QW1 PREDICT 2 1 2 5 {relabeled}\n\
             QW1 PREDICT 3 2 2 5 {cycle}\n\
             QW1 PREDICT 4 2 2 5 {relabeled}\n"
        );
        let predictor = trained_predictor();
        let engine = Engine::new(2);
        let (out, summary) = run_model_session(&input, &engine, &predictor);
        let answers: Vec<wire::Predicted> = out
            .lines()
            .filter(|l| l.starts_with("QW1 PREDICTED"))
            .map(|l| wire::decode_predicted(l).unwrap())
            .collect();
        assert_eq!(summary.errors, 0, "output: {out}");
        assert_eq!(answers.len(), 4);
        assert_eq!(
            answers.iter().map(|a| a.tier).collect::<Vec<_>>(),
            vec![
                AnswerTier::WarmStart,   // cold class: solved
                AnswerTier::CachedExact, // same class relabeled: cache hit
                AnswerTier::Model,       // deeper: model prediction
                AnswerTier::Model,       // repeat (same class+depth): memoized
            ]
        );
        // The tier-3 depth-1 solve IS the entry tier 1 later serves: same bits.
        let bits = |p: &[f64]| p.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&answers[0].params), bits(&answers[1].params));
        // Tier 2 answers exactly the predictor's output for the cached
        // depth-1 optimum's features.
        let expected = predictor
            .predict(answers[0].params[0], answers[0].params[1], 2)
            .unwrap();
        assert_eq!(bits(&answers[2].params), bits(&expected));
        assert_eq!(bits(&answers[3].params), bits(&answers[2].params));
        // Per-tier accounting: 1 cached-exact, 2 model (one memoized), 1 warm.
        assert_eq!(summary.predicts, 4);
        assert_eq!(summary.predict_memo_hits, 1);
        assert_eq!(
            [
                summary.tiers[0].requests,
                summary.tiers[1].requests,
                summary.tiers[2].requests
            ],
            [1, 2, 1]
        );
        assert!(summary.to_string().contains("4 predicts (tiers 1/2/1)"));
        assert!(summary.predict_report().contains("4 PREDICT answers"));
    }

    #[test]
    fn cold_deep_predict_warms_the_cache_for_tier_1() {
        let input = "QW1 PREDICT 1 3 2 5 0-1,1-2,2-3,3-4,4-0\n\
                     QW1 PREDICT 2 1 2 5 0-1,1-2,2-3,3-4,4-0\n";
        let predictor = trained_predictor();
        let (out, summary) = run_model_session(input, &Engine::new(2), &predictor);
        let answers: Vec<wire::Predicted> = out
            .lines()
            .filter(|l| l.starts_with("QW1 PREDICTED"))
            .map(|l| wire::decode_predicted(l).unwrap())
            .collect();
        assert_eq!(summary.errors, 0, "output: {out}");
        assert_eq!(answers[0].tier, AnswerTier::WarmStart);
        assert_eq!(answers[0].params.len(), 6, "depth 3 answers 6 params");
        assert_eq!(
            answers[1].tier,
            AnswerTier::CachedExact,
            "the tier-3 flow's depth-1 solve must warm the cache"
        );
    }

    #[test]
    fn predict_beyond_model_depth_answers_err_and_loop_survives() {
        let input = "QW1 PREDICT 1 9 2 5 0-1,1-2,2-3,3-4,4-0\n\
                     QW1 PREDICT 2 1 2 5 0-1,1-2,2-3,3-4,4-0\n";
        let predictor = trained_predictor();
        let (out, summary) = run_model_session(input, &Engine::new(1), &predictor);
        assert_eq!(summary.errors, 1);
        assert_eq!(summary.predicts, 1, "the sane follow-up still answered");
        assert!(out.contains("max depth"), "output: {out}");
    }

    #[test]
    fn predict_answers_immediately_before_pending_batches() {
        let input = "QW1 JOB 1 2 5 0-1,1-2,2-3,3-4,4-0\n\
                     QW1 PREDICT 1 1 2 4 0-1,1-2,2-3,3-0\n\
                     QW1 RUN -\n";
        let predictor = trained_predictor();
        let (out, summary) = run_model_session(input, &Engine::new(1), &predictor);
        assert_eq!(summary.errors, 0, "output: {out}");
        assert_eq!(summary.jobs, 1);
        assert_eq!(summary.predicts, 1);
        let kinds: Vec<&str> = out
            .lines()
            .filter_map(|l| wire::message_type(l).ok())
            .collect();
        assert_eq!(
            kinds,
            vec!["PREDICTED", "OUTCOME", "REPORT"],
            "PREDICT is answered at arrival, not held for the batch flush"
        );
    }

    #[test]
    fn predict_transcripts_are_bit_identical_across_sessions() {
        let input = "QW1 PREDICT 1 1 2 5 0-1,1-2,2-3,3-4,4-0\n\
                     QW1 PREDICT 2 2 2 5 0-1,1-2,2-3,3-4,4-0\n\
                     QW1 PREDICT 3 3 3 4 0-1,1-2,2-3,3-0\n";
        let predictor = trained_predictor();
        let (first, _) = run_model_session(input, &Engine::new(2), &predictor);
        let (second, _) = run_model_session(input, &Engine::new(1), &predictor);
        assert_eq!(
            first, second,
            "answers are pure functions of (requests, model, master seed)"
        );
    }

    #[test]
    fn empty_run_emits_an_empty_report() {
        let engine = Engine::new(1);
        let (out, summary) = run_session("QW1 RUN -\n", &engine);
        assert_eq!(summary.batches, 1);
        assert_eq!(summary.jobs, 0);
        let report_line = out
            .lines()
            .find(|l| l.starts_with("QW1 REPORT"))
            .expect("report line");
        assert!(wire::decode_report(report_line).unwrap().jobs.is_empty());
    }
}
