//! The job-server front end: a line-delimited request loop over
//! [`crate::wire`].
//!
//! The server reads messages from any `BufRead` (stdin in the `qaoa-serve`
//! binary), accumulates `JOB` lines, and executes the pending batch on the
//! engine whenever a `RUN` sentinel — or end of input — arrives. Outcomes
//! stream back **in submission order**, one `OUTCOME` line per job,
//! followed by one `REPORT` line per batch; the output is flushed after
//! every batch so interactive clients see results as soon as they exist.
//!
//! Error containment: a malformed line answers with an `ERR` line and the
//! loop continues — one bad client line must not kill a server multiplexing
//! many. [`crate::wire::decode_job`] validates executability at decode
//! time (depth/restarts ≥ 1, non-empty graph), so batch execution itself
//! only fails on conditions a well-formed job cannot trigger; such a
//! failure answers with one `ERR` line for the whole batch.
//!
//! Determinism: outcomes are a pure function of `(job lines, master seed)`
//! — the engine derives every per-job RNG from stable keys, and depth-1
//! jobs go through the (optionally pre-warmed, see [`crate::persist`])
//! isomorphism cache, which never changes values, only cost. The cache is
//! keyed on `(canonical class, restarts)`, so isomorphic jobs in one
//! session whose restart counts differ never serve each other's optima.

use std::fmt;
use std::io::{BufRead, Write};

use optimize::Optimizer;

use crate::batch::{BatchConfig, Engine, Job};
use crate::wire;

/// Accounting for one [`serve`] session.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs executed successfully.
    pub jobs: usize,
    /// Batches flushed (RUN sentinels plus the implicit EOF flush).
    pub batches: usize,
    /// `ERR` lines emitted (malformed input or failed batches).
    pub errors: usize,
    /// Depth-1 cache hits across all batches.
    pub cache_hits: usize,
    /// Depth-1 cache misses (solves) across all batches.
    pub cache_misses: usize,
}

impl fmt::Display for ServeSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} jobs in {} batches ({} errors, depth-1 cache {}/{} hit)",
            self.jobs,
            self.batches,
            self.errors,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
        )
    }
}

/// Runs the request loop until `input` is exhausted. Blank lines and
/// `#`-prefixed comment lines are ignored.
///
/// # Errors
///
/// Only transport failures (reading `input`, writing `output`) abort the
/// loop; every protocol-level problem is answered in-band with an `ERR`
/// line.
pub fn serve<R: BufRead, W: Write>(
    input: R,
    mut output: W,
    engine: &Engine,
    optimizer: &(dyn Optimizer + Sync),
    config: &BatchConfig,
) -> std::io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    let mut pending: Vec<Job> = Vec::new();

    for line in input.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match wire::message_type(line) {
            Ok("JOB") => match wire::decode_job(line) {
                Ok(job) => pending.push(job),
                Err(e) => reject(&mut output, &mut summary, &e.to_string())?,
            },
            Ok("RUN") => {
                flush_batch(
                    &mut output,
                    engine,
                    optimizer,
                    config,
                    &mut pending,
                    &mut summary,
                )?;
            }
            Ok(other) => reject(
                &mut output,
                &mut summary,
                &format!("unexpected {other} message (the server accepts JOB and RUN)"),
            )?,
            Err(e) => reject(&mut output, &mut summary, &e.to_string())?,
        }
    }
    // EOF flushes the final batch, so `printf JOB... | qaoa-serve` works
    // without an explicit RUN.
    if !pending.is_empty() {
        flush_batch(
            &mut output,
            engine,
            optimizer,
            config,
            &mut pending,
            &mut summary,
        )?;
    }
    Ok(summary)
}

fn reject<W: Write>(
    output: &mut W,
    summary: &mut ServeSummary,
    message: &str,
) -> std::io::Result<()> {
    summary.errors += 1;
    writeln!(output, "{}", wire::encode_err(message))?;
    output.flush()
}

fn flush_batch<W: Write>(
    output: &mut W,
    engine: &Engine,
    optimizer: &(dyn Optimizer + Sync),
    config: &BatchConfig,
    pending: &mut Vec<Job>,
    summary: &mut ServeSummary,
) -> std::io::Result<()> {
    summary.batches += 1;
    if pending.is_empty() {
        writeln!(output, "{}", wire::encode_report(&empty_report(engine)))?;
        return output.flush();
    }
    let jobs = std::mem::take(pending);
    match engine.run_batch(optimizer, &jobs, config) {
        Ok((outcomes, report)) => {
            for outcome in &outcomes {
                writeln!(output, "{}", wire::encode_outcome(outcome))?;
            }
            summary.jobs += outcomes.len();
            summary.cache_hits += report.cache_hits;
            summary.cache_misses += report.cache_misses;
            writeln!(output, "{}", wire::encode_report(&report))?;
        }
        Err(e) => {
            summary.errors += 1;
            writeln!(
                output,
                "{}",
                wire::encode_err(&format!("batch of {} jobs failed: {e}", jobs.len()))
            )?;
        }
    }
    output.flush()
}

fn empty_report(engine: &Engine) -> crate::batch::BatchReport {
    crate::batch::BatchReport {
        jobs: Vec::new(),
        wall: std::time::Duration::ZERO,
        threads: engine.threads(),
        total_function_calls: 0,
        total_gradient_calls: 0,
        cache_hits: 0,
        cache_misses: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimize::Lbfgsb;

    fn run_session(input: &str, engine: &Engine) -> (String, ServeSummary) {
        let mut out = Vec::new();
        let summary = serve(
            std::io::Cursor::new(input),
            &mut out,
            engine,
            &Lbfgsb::default(),
            &BatchConfig::default(),
        )
        .expect("transport never fails in-memory");
        (String::from_utf8(out).unwrap(), summary)
    }

    #[test]
    fn two_jobs_two_outcomes_in_order() {
        let input = "QW1 JOB 1 2 5 0-1,1-2,2-3,3-4,4-0\nQW1 JOB 2 2 4 0-1,1-2,2-3,3-0\n";
        let engine = Engine::new(2);
        let (out, summary) = run_session(input, &engine);
        let outcomes: Vec<&str> = out
            .lines()
            .filter(|l| l.starts_with("QW1 OUTCOME"))
            .collect();
        assert_eq!(outcomes.len(), 2);
        // Submission order: job 1 has depth 1 (2 params), job 2 depth 2 (4).
        assert_eq!(wire::decode_outcome(outcomes[0]).unwrap().params.len(), 2);
        assert_eq!(wire::decode_outcome(outcomes[1]).unwrap().params.len(), 4);
        assert_eq!(
            out.lines().filter(|l| l.starts_with("QW1 REPORT")).count(),
            1
        );
        assert_eq!(summary.jobs, 2);
        assert_eq!(summary.batches, 1);
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn run_sentinel_splits_batches_and_outcomes_are_deterministic() {
        let job = "QW1 JOB 1 2 5 0-1,1-2,2-3,3-4,4-0";
        let batched = format!("{job}\nQW1 RUN -\n{job}\n");
        let engine = Engine::new(2);
        let (out, summary) = run_session(&batched, &engine);
        assert_eq!(summary.batches, 2);
        assert_eq!(summary.jobs, 2);
        // Same job twice: bit-identical outcome lines, and the second batch
        // served it from the cache warmed by the first.
        let outcomes: Vec<&str> = out
            .lines()
            .filter(|l| l.starts_with("QW1 OUTCOME"))
            .collect();
        assert_eq!(outcomes[0], outcomes[1]);
        assert_eq!(summary.cache_hits, 1);
        assert_eq!(summary.cache_misses, 1);
    }

    #[test]
    fn isomorphic_jobs_with_different_restarts_do_not_conflate() {
        // Relabelings of one 5-cycle at restarts 2 and 3: the second job
        // must be solved under its own restart budget, not served the
        // first's cached optimum — and must match the same job run alone.
        let with_r2 = "QW1 JOB 1 2 5 0-1,1-2,2-3,3-4,4-0\nQW1 JOB 1 3 5 1-3,3-0,0-4,4-2,2-1\n";
        let engine = Engine::new(1);
        let (out, summary) = run_session(with_r2, &engine);
        assert_eq!(summary.cache_hits, 0);
        assert_eq!(summary.cache_misses, 2);
        let outcomes: Vec<&str> = out
            .lines()
            .filter(|l| l.starts_with("QW1 OUTCOME"))
            .collect();
        let (alone_out, _) = run_session("QW1 JOB 1 3 5 1-3,3-0,0-4,4-2,2-1\n", &Engine::new(1));
        let alone: Vec<&str> = alone_out
            .lines()
            .filter(|l| l.starts_with("QW1 OUTCOME"))
            .collect();
        assert_eq!(outcomes[1], alone[0], "restarts=3 outcome must be its own");
    }

    #[test]
    fn bad_lines_answer_err_and_the_loop_survives() {
        let input = "\
not even wire\n\
QW1 JOB 0 2 3 0-1\n\
QW1 KEY 3 0-1\n\
# a comment\n\
\n\
QW1 JOB 1 2 3 0-1,1-2\n";
        let engine = Engine::new(1);
        let (out, summary) = run_session(input, &engine);
        assert_eq!(summary.errors, 3);
        assert_eq!(summary.jobs, 1, "the good job still ran");
        assert_eq!(out.lines().filter(|l| l.starts_with("QW1 ERR")).count(), 3);
        assert_eq!(
            out.lines().filter(|l| l.starts_with("QW1 OUTCOME")).count(),
            1
        );
    }

    #[test]
    fn empty_run_emits_an_empty_report() {
        let engine = Engine::new(1);
        let (out, summary) = run_session("QW1 RUN -\n", &engine);
        assert_eq!(summary.batches, 1);
        assert_eq!(summary.jobs, 0);
        let report_line = out
            .lines()
            .find(|l| l.starts_with("QW1 REPORT"))
            .expect("report line");
        assert!(wire::decode_report(report_line).unwrap().jobs.is_empty());
    }
}
