//! Parallel batch-execution engine for the QAOA pipeline.
//!
//! Every expensive path in this repository — corpus generation (§III-A),
//! the Table-I comparison sweep, the figure/table binaries — is
//! embarrassingly parallel batch work: thousands of independent QAOA
//! optimization loops. This crate turns those loops into scheduled work:
//!
//! * [`Pool`] — a work-stealing executor on `std::thread::scope` that runs
//!   a queue of jobs across a configurable worker count and returns results
//!   in submission order,
//! * [`seed`] — deterministic per-job RNG derivation (master seed + stable
//!   job key → `StdRng`), the invariant that makes parallel runs
//!   **bit-identical** to serial runs,
//! * [`Level1Cache`] — a concurrent depth-1 optimum cache keyed by the
//!   canonical graph class ([`qaoa::canonical::graph_key`]) and the solve's
//!   restarts count ([`Level1Key`]), so isomorphic instances with equal
//!   restarts are never re-optimized,
//! * [`Engine`] / [`Job`] / [`BatchReport`] — the batch front door with
//!   per-job wall-clock and function-call accounting,
//! * [`corpus`] — the parallel §III-A corpus generator,
//! * [`compare`] — the parallel naive-vs-ML comparison sweep,
//! * [`wire`] — the versioned line-delimited text codec for jobs, outcomes,
//!   canonical keys, corpus records, batch reports, and shard tasking,
//! * [`persist`] — save/load/merge of the depth-1 cache across processes
//!   (corrupt or stale files are discarded, never fatal),
//! * [`model`] — versioned `QMODEL1` persistence of trained parameter
//!   predictors (same discard-and-retrain failure policy), the artifact
//!   behind the `qaoa-predict` prediction service,
//! * [`server`] — the job-server request loop behind the `qaoa-serve`
//!   binary: `JOB` lines in, `OUTCOME`/`REPORT` lines out, in submission
//!   order, plus the worker side of shard tasking (`SHARD`/`RANGE` in,
//!   `RECORD`/`DONE` out),
//! * [`shard`] — the corpus shard coordinator: a validated [`ShardPlan`]
//!   over graph-index ranges, driven locally ([`shard::run_local`], the
//!   `qaoa-shard` binary) or live over a streaming transport
//!   ([`shard::run_streaming`] / [`shard::run_wire`]), merging records in
//!   global graph-index order with bounded buffering and re-tasking the
//!   ranges of dead or timed-out workers — output **bit-identical** to the
//!   unsharded run either way,
//! * [`transport`] — the [`ShardTransport`] trait the coordinator drives:
//!   in-process [`transport::LoopbackTransport`] workers (the reference
//!   implementation), spawned `qaoa-serve` processes
//!   ([`transport::SubprocessTransport`]), and fault injectors for the
//!   failover test-suite.
//!
//! # Quickstart
//!
//! ```
//! use engine::{BatchConfig, Engine, Job};
//! use graphs::generators;
//! use optimize::Lbfgsb;
//!
//! # fn main() -> Result<(), qaoa::QaoaError> {
//! let engine = Engine::new(4);
//! let jobs: Vec<Job> = (4..8)
//!     .map(|n| Job::new(generators::cycle(n), 1, 3))
//!     .collect();
//! let (outcomes, report) = engine.run_batch(
//!     &Lbfgsb::default(),
//!     &jobs,
//!     &BatchConfig::default(),
//! )?;
//! assert_eq!(outcomes.len(), 4);
//! assert!(report.total_function_calls > 0);
//! println!("{}", report.summary());
//! # Ok(())
//! # }
//! ```
//!
//! # Determinism contract
//!
//! For a fixed job queue and master seed, results at `threads = 1` and
//! `threads = N` are **identical**: no job draws randomness from a shared
//! stream, worker identity, or scheduling order. Depth-1 cache entries are
//! pure functions of `(master seed, canonical class, restarts)` — solved
//! on the canonical representative, seeded from the class hash and the
//! restarts count, and keyed on both — so cache races between isomorphic
//! jobs are benign (all contenders compute the same bits) and jobs that
//! differ only in restarts never share an entry.

pub mod batch;
pub mod cache;
pub mod compare;
pub mod corpus;
pub mod model;
pub mod persist;
pub mod pool;
pub mod seed;
pub mod server;
pub mod shard;
pub mod transport;
pub mod wire;

pub use batch::{BatchConfig, BatchReport, Engine, Job, JobStats};
pub use cache::{Level1Cache, Level1Key};
pub use corpus::CorpusReport;
pub use model::ModelLoad;
pub use persist::LoadStatus;
pub use pool::Pool;
pub use server::ServeSummary;
pub use shard::{ShardError, ShardPlan, ShardReport, ShardStats, StreamOptions};
pub use transport::{
    KillAfter, LoopbackTransport, ShardTransport, StallAfter, SubprocessTransport, TransportError,
};
pub use wire::WireError;

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use optimize::Lbfgsb;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn batch_outcomes_are_thread_count_invariant() {
        let mut rng = StdRng::seed_from_u64(400);
        let jobs: Vec<Job> = (0..8)
            .map(|i| {
                Job::new(
                    generators::erdos_renyi_nonempty(5, 0.5, &mut rng),
                    1 + i % 3,
                    2,
                )
            })
            .collect();
        let config = BatchConfig {
            master_seed: 7,
            ..BatchConfig::default()
        };
        let (serial, _) = Engine::new(1)
            .run_batch(&Lbfgsb::default(), &jobs, &config)
            .unwrap();
        let (parallel, report) = Engine::new(4)
            .run_batch(&Lbfgsb::default(), &jobs, &config)
            .unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.params, b.params);
            assert_eq!(a.expectation.to_bits(), b.expectation.to_bits());
            assert_eq!(a.function_calls, b.function_calls);
        }
        assert_eq!(report.jobs.len(), 8);
        assert!(report.summary().contains("8 jobs"));
    }

    #[test]
    fn depth1_jobs_hit_the_isomorphism_cache() {
        // The same cycle under two labelings: second job must hit.
        let a = generators::cycle(5);
        let b = graphs::Graph::from_edges(5, &[(1, 3), (3, 0), (0, 4), (4, 2), (2, 1)]).unwrap();
        let jobs = vec![Job::new(a, 1, 2), Job::new(b, 1, 2)];
        let engine = Engine::new(1);
        let (outcomes, report) = engine
            .run_batch(&Lbfgsb::default(), &jobs, &BatchConfig::default())
            .unwrap();
        assert_eq!(report.cache_hits + report.cache_misses, 2);
        assert_eq!(report.cache_hits, 1);
        assert_eq!(outcomes[0].params, outcomes[1].params);
        assert_eq!(engine.cache().len(), 1);
    }

    #[test]
    fn depth1_jobs_with_different_restarts_do_not_conflate() {
        // Two isomorphic depth-1 jobs whose restart counts differ: the
        // second must NOT be served the first's optimum (it was computed
        // under a different multistart budget). Each outcome must equal the
        // same job run alone on a fresh engine.
        let a = generators::cycle(5);
        let b = graphs::Graph::from_edges(5, &[(1, 3), (3, 0), (0, 4), (4, 2), (2, 1)]).unwrap();
        let jobs = vec![Job::new(a, 1, 2), Job::new(b, 1, 3)];
        let engine = Engine::new(1);
        let (outcomes, report) = engine
            .run_batch(&Lbfgsb::default(), &jobs, &BatchConfig::default())
            .unwrap();
        assert_eq!(report.cache_hits, 0, "different restarts must both miss");
        assert_eq!(report.cache_misses, 2);
        assert_eq!(engine.cache().len(), 2, "one entry per restarts variant");
        for (job, outcome) in jobs.iter().zip(&outcomes) {
            let (alone, _) = Engine::new(1)
                .run_batch(
                    &Lbfgsb::default(),
                    std::slice::from_ref(job),
                    &BatchConfig::default(),
                )
                .unwrap();
            assert_eq!(alone[0].params, outcome.params);
            assert_eq!(
                alone[0].expectation.to_bits(),
                outcome.expectation.to_bits()
            );
            assert_eq!(alone[0].function_calls, outcome.function_calls);
        }
    }

    #[test]
    fn cache_does_not_change_results() {
        let mut rng = StdRng::seed_from_u64(9);
        let jobs: Vec<Job> = (0..4)
            .map(|_| Job::new(generators::erdos_renyi_nonempty(5, 0.6, &mut rng), 1, 2))
            .collect();
        let cached = BatchConfig {
            use_cache: true,
            ..BatchConfig::default()
        };
        let uncached = BatchConfig {
            use_cache: false,
            ..BatchConfig::default()
        };
        let (with_cache, _) = Engine::new(2)
            .run_batch(&Lbfgsb::default(), &jobs, &cached)
            .unwrap();
        let (without, _) = Engine::new(2)
            .run_batch(&Lbfgsb::default(), &jobs, &uncached)
            .unwrap();
        for (a, b) in with_cache.iter().zip(&without) {
            assert_eq!(a.params, b.params);
            assert_eq!(a.function_calls, b.function_calls);
        }
    }

    #[test]
    fn empty_batch() {
        let (outcomes, report) = Engine::new(2)
            .run_batch(&Lbfgsb::default(), &[], &BatchConfig::default())
            .unwrap();
        assert!(outcomes.is_empty());
        assert_eq!(report.total_function_calls, 0);
    }

    #[test]
    fn job_errors_propagate() {
        // Depth 0 is invalid and must surface as an error, not a panic.
        let jobs = vec![Job::new(generators::cycle(4), 0, 1)];
        assert!(Engine::new(2)
            .run_batch(&Lbfgsb::default(), &jobs, &BatchConfig::default())
            .is_err());
    }
}
