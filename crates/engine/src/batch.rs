//! Batch execution of independent QAOA optimization jobs.
//!
//! A [`Job`] is one `(graph, depth, restarts)` optimization; an [`Engine`]
//! fans a queue of jobs across its worker [`Pool`](crate::Pool) and returns
//! the [`InstanceOutcome`]s **in submission order**, plus a [`BatchReport`]
//! with per-job wall time and the function-call accounting that
//! `optimize::Counted` threads through every outcome.
//!
//! Depth-1 jobs are routed through the engine's isomorphism
//! [`Level1Cache`]: the solve runs on the canonical representative graph
//! with an RNG seeded from the canonical class hash and the restarts
//! count, so isomorphic jobs with equal restarts produce bit-identical
//! outcomes and hit each other's cache entries — at any worker count, in
//! any schedule. The cache key carries the restarts count
//! ([`Level1Key`](crate::cache::Level1Key)), so jobs that differ only in
//! restarts never serve each other's bits.

use std::time::{Duration, Instant};

use graphs::Graph;
use optimize::{Optimizer, Options};
use qaoa::canonical::graph_key;
use qaoa::{
    InstanceOutcome, MaxCutProblem, ParameterPredictor, QaoaError, QaoaInstance, Scenario,
    ScenarioInstance, TwoLevelConfig, TwoLevelFlow, TwoLevelOutcome,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cache::{Level1Cache, Level1Key};
use crate::pool::Pool;
use crate::seed;

/// One unit of batch work: optimize a `(graph, depth)` QAOA instance with
/// best-of-`restarts` multistart.
#[derive(Debug, Clone)]
pub struct Job {
    /// Problem graph.
    pub graph: Graph,
    /// Circuit depth `p`.
    pub depth: usize,
    /// Random multistart count.
    pub restarts: usize,
}

impl Job {
    /// Convenience constructor.
    #[must_use]
    pub fn new(graph: Graph, depth: usize, restarts: usize) -> Self {
        Self {
            graph,
            depth,
            restarts,
        }
    }

    /// Stable key of this job at `index` in its queue — the input to
    /// [`seed::derive2`], independent of scheduling.
    #[must_use]
    pub fn stable_key(&self, index: usize) -> u64 {
        let mut h: u64 = seed::wide(self.graph.n_nodes());
        for e in self.graph.edges() {
            h = seed::mix(h, &[seed::wide(e.u), seed::wide(e.v), e.weight.to_bits()]);
        }
        seed::mix(
            h,
            &[
                seed::wide(self.depth),
                seed::wide(self.restarts),
                seed::wide(index),
            ],
        )
    }
}

/// Batch-wide execution settings.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Master seed every per-job RNG is derived from.
    pub master_seed: u64,
    /// Optimizer options for all jobs.
    pub options: Options,
    /// Route depth-1 jobs through the isomorphism cache.
    pub use_cache: bool,
    /// Evaluation scenario every job's objective runs under. Non-exact
    /// scenarios bypass the depth-1 cache entirely — its entries are exact
    /// optima keyed on the canonical class, and a sampled or noisy solve is
    /// a different quantity that must never be served exact bits.
    pub scenario: Scenario,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            master_seed: 2020,
            options: Options::default(),
            use_cache: true,
            scenario: Scenario::Exact,
        }
    }
}

/// Per-job accounting.
#[derive(Debug, Clone)]
pub struct JobStats {
    /// Wall-clock time of this job on its worker.
    pub wall: Duration,
    /// Objective evaluations spent (`nfev`, from `optimize::Counted`).
    pub function_calls: usize,
    /// Analytic adjoint-gradient evaluations spent (`njev`); 0 for
    /// gradient-free optimizers.
    pub gradient_calls: usize,
    /// Whether the depth-1 cache served this job.
    pub cache_hit: bool,
}

/// Aggregated accounting for one batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-job stats, in submission order.
    pub jobs: Vec<JobStats>,
    /// End-to-end wall-clock time of the batch.
    pub wall: Duration,
    /// Worker count used.
    pub threads: usize,
    /// Sum of all jobs' function calls (`nfev`).
    pub total_function_calls: usize,
    /// Sum of all jobs' analytic gradient evaluations (`njev`).
    pub total_gradient_calls: usize,
    /// Depth-1 cache hits within this batch.
    pub cache_hits: usize,
    /// Depth-1 cache misses (solves) within this batch.
    pub cache_misses: usize,
}

impl BatchReport {
    /// Sum of per-job wall times — the serial-equivalent compute time.
    /// `busy() / wall` approximates the parallel speedup achieved.
    #[must_use]
    pub fn busy(&self) -> Duration {
        self.jobs.iter().map(|j| j.wall).sum()
    }

    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} jobs on {} threads: wall {:.2?}, busy {:.2?} ({:.2}x), {} fn calls (+{} grad), cache {}/{} hit",
            self.jobs.len(),
            self.threads,
            self.wall,
            self.busy(),
            self.busy().as_secs_f64() / self.wall.as_secs_f64().max(1e-9),
            self.total_function_calls,
            self.total_gradient_calls,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
        )
    }
}

/// The batch executor: a worker pool plus the shared depth-1 cache.
#[derive(Debug, Default)]
pub struct Engine {
    pool: Pool,
    cache: Level1Cache,
}

impl Engine {
    /// An engine with `threads` workers and an empty cache.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            pool: Pool::new(threads),
            cache: Level1Cache::new(),
        }
    }

    /// An engine sized to the machine's available parallelism.
    #[must_use]
    pub fn auto() -> Self {
        Self {
            pool: Pool::auto(),
            cache: Level1Cache::new(),
        }
    }

    /// The worker pool.
    #[must_use]
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// The shared depth-1 optimum cache.
    #[must_use]
    pub fn cache(&self) -> &Level1Cache {
        &self.cache
    }

    /// Worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Solves the depth-1 instance of `graph`'s canonical class, through
    /// the cache. The solve operates on the **canonical representative**
    /// with an RNG seeded from the class hash and the restarts count,
    /// making the result a pure function of
    /// `(master_seed, class, restarts)` — identical for every isomorphic
    /// graph and every schedule. The cache entry is keyed on
    /// `(class, restarts)` to match, so differing restart counts never
    /// conflate. Returns `(outcome, was_hit)`.
    ///
    /// # Errors
    ///
    /// Propagates instance-construction and optimizer errors.
    pub fn level1_cached(
        &self,
        graph: &Graph,
        optimizer: &dyn Optimizer,
        restarts: usize,
        config: &BatchConfig,
    ) -> Result<(InstanceOutcome, bool), QaoaError> {
        let key = Level1Key::new(graph_key(graph), restarts);
        let solve = || {
            let representative = key.class.to_graph();
            let problem = MaxCutProblem::new(&representative)?;
            let instance = QaoaInstance::new(problem, 1)?;
            let mut rng = StdRng::seed_from_u64(seed::derive2(
                config.master_seed,
                "level1",
                key.class.hash64(),
                seed::wide(restarts),
            ));
            instance.optimize_multistart(optimizer, restarts, &mut rng, &config.options)
        };
        if config.use_cache {
            self.cache.get_or_solve(&key, solve)
        } else {
            Ok((solve()?, false))
        }
    }

    /// Runs `jobs` across the pool, returning outcomes in submission order
    /// together with the batch report.
    ///
    /// Determinism contract: for a fixed `jobs` queue and
    /// `config.master_seed`, the outcomes are bit-identical at **any**
    /// worker count — every job's RNG is derived from its stable key, and
    /// depth-1 cache entries are pure functions of the graph's canonical
    /// class.
    ///
    /// When the batch is narrower than the pool, leftover workers are
    /// granted to each job as a within-state kernel budget
    /// ([`Pool::inner_threads`] → `qaoa::eval::with_within_state_threads`),
    /// so one large-`n` evaluation no longer serializes on a single core.
    /// The budget never affects results (the SoA kernels are deterministic
    /// in it), so the contract above is unchanged.
    ///
    /// # Errors
    ///
    /// Returns the first (in submission order) job error.
    pub fn run_batch(
        &self,
        optimizer: &(dyn Optimizer + Sync),
        jobs: &[Job],
        config: &BatchConfig,
    ) -> Result<(Vec<InstanceOutcome>, BatchReport), QaoaError> {
        let batch_start = Instant::now();
        let results: Vec<Result<(InstanceOutcome, JobStats), QaoaError>> =
            self.pool.run_ordered_fanout(jobs.len(), |i, inner| {
                qaoa::eval::with_within_state_threads(inner, || {
                    let job = &jobs[i];
                    let start = Instant::now();
                    let (outcome, cache_hit) = if job.depth == 1 && config.scenario.is_exact() {
                        self.level1_cached(&job.graph, optimizer, job.restarts, config)?
                    } else {
                        // Uncached path: depth >= 2, or any non-exact
                        // scenario (including depth-1 — the cache stores
                        // exact optima only). The job seed drives both the
                        // multistart RNG and the scenario's internal
                        // stochasticity, keeping outcomes pure functions of
                        // the queue at any worker count.
                        let problem = MaxCutProblem::new(&job.graph)?;
                        let job_seed = seed::mix(
                            config.master_seed,
                            &[seed::domain_hash("batch"), job.stable_key(i)],
                        );
                        let instance =
                            ScenarioInstance::new(problem, job.depth, &config.scenario, job_seed)?;
                        let mut rng = StdRng::seed_from_u64(job_seed);
                        let outcome = instance.optimize_multistart(
                            optimizer,
                            job.restarts,
                            &mut rng,
                            &config.options,
                        )?;
                        (outcome, false)
                    };
                    let stats = JobStats {
                        wall: start.elapsed(),
                        function_calls: outcome.function_calls,
                        gradient_calls: outcome.gradient_calls,
                        cache_hit,
                    };
                    Ok((outcome, stats))
                })
            });

        let mut outcomes = Vec::with_capacity(jobs.len());
        let mut job_stats = Vec::with_capacity(jobs.len());
        for result in results {
            let (outcome, stats) = result?;
            outcomes.push(outcome);
            job_stats.push(stats);
        }
        let cache_hits = job_stats.iter().filter(|s| s.cache_hit).count();
        let cache_misses = jobs
            .iter()
            .zip(&job_stats)
            .filter(|(job, stats)| job.depth == 1 && !stats.cache_hit)
            .count();
        let report = BatchReport {
            total_function_calls: job_stats.iter().map(|s| s.function_calls).sum(),
            total_gradient_calls: job_stats.iter().map(|s| s.gradient_calls).sum(),
            cache_hits,
            cache_misses,
            wall: batch_start.elapsed(),
            threads: self.threads(),
            jobs: job_stats,
        };
        Ok((outcomes, report))
    }

    /// Runs the two-level flow over a batch of graphs with the level-1
    /// optimization served by the isomorphism cache: each graph's `p = 1`
    /// optimum is computed once per canonical class (via
    /// [`Engine::level1_cached`]) and fed to
    /// [`TwoLevelFlow::run_with_level1`], so isomorphic instances skip
    /// level 1 entirely.
    ///
    /// Cache-hit level-1 calls are still accounted in each outcome's
    /// `level1_calls` (the cached solve's cost), keeping outcomes
    /// bit-identical whether or not the cache was warm; the report's
    /// `cache_hits` shows how much work was actually skipped.
    ///
    /// Outcomes are in graph order and identical at any worker count.
    ///
    /// # Errors
    ///
    /// Returns the first (in graph order) flow error.
    pub fn run_two_level_batch(
        &self,
        graphs: &[Graph],
        target_depth: usize,
        optimizer: &(dyn Optimizer + Sync),
        predictor: &ParameterPredictor,
        level1_starts: usize,
        config: &BatchConfig,
    ) -> Result<(Vec<TwoLevelOutcome>, BatchReport), QaoaError> {
        let batch_start = Instant::now();
        let flow_config = TwoLevelConfig {
            level1_starts,
            options: config.options,
        };
        let results: Vec<Result<(TwoLevelOutcome, JobStats), QaoaError>> =
            self.pool.run_ordered_fanout(graphs.len(), |i, inner| {
                qaoa::eval::with_within_state_threads(inner, || {
                    let start = Instant::now();
                    let problem = MaxCutProblem::new(&graphs[i])?;
                    let flow = TwoLevelFlow::new(predictor);
                    let (outcome, cache_hit) = if config.scenario.is_exact() {
                        let (level1, cache_hit) =
                            self.level1_cached(&graphs[i], optimizer, level1_starts, config)?;
                        let outcome = flow.run_with_level1(
                            &problem,
                            target_depth,
                            optimizer,
                            &flow_config,
                            &level1,
                        )?;
                        (outcome, cache_hit)
                    } else {
                        // Non-exact scenarios skip the cache (exact-optimum
                        // entries) and run the full two-level flow under the
                        // scenario, seeded per graph index.
                        let graph_seed = seed::mix(
                            config.master_seed,
                            &[seed::domain_hash("two-level-scenario"), seed::wide(i)],
                        );
                        let mut rng = StdRng::seed_from_u64(graph_seed);
                        let outcome = flow.run_scenario(
                            &problem,
                            target_depth,
                            optimizer,
                            &flow_config,
                            &mut rng,
                            &config.scenario,
                            graph_seed,
                        )?;
                        (outcome, false)
                    };
                    let stats = JobStats {
                        wall: start.elapsed(),
                        function_calls: outcome.total_calls(),
                        gradient_calls: outcome.gradient_calls,
                        cache_hit,
                    };
                    Ok((outcome, stats))
                })
            });

        let mut outcomes = Vec::with_capacity(graphs.len());
        let mut job_stats = Vec::with_capacity(graphs.len());
        for result in results {
            let (outcome, stats) = result?;
            outcomes.push(outcome);
            job_stats.push(stats);
        }
        let cache_hits = job_stats.iter().filter(|s| s.cache_hit).count();
        let report = BatchReport {
            total_function_calls: job_stats.iter().map(|s| s.function_calls).sum(),
            total_gradient_calls: job_stats.iter().map(|s| s.gradient_calls).sum(),
            cache_hits,
            cache_misses: job_stats.len() - cache_hits,
            wall: batch_start.elapsed(),
            threads: self.threads(),
            jobs: job_stats,
        };
        Ok((outcomes, report))
    }
}
