//! Criterion benches: fit and predict costs of the four regression
//! families on a QAOA-parameter-shaped dataset (3 features, 66 training
//! rows — the paper's training-set size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use linalg::Matrix;
use ml::ModelKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn paper_shaped_data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
    // Features mimic (γ₁(1), β₁(1), p); target mimics a stage parameter with
    // the paper's correlation structure: γᵢ falls with p, tracks γ₁.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let g1: f64 = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
        let b1: f64 = 0.4 * g1 + rng.gen_range(-0.2..0.2);
        let p: f64 = rng.gen_range(1..=6) as f64;
        rows.push(vec![g1, b1, p]);
        y.push((0.8 * g1 - 0.15 * p + rng.gen_range(-0.1..0.1)).max(0.0));
    }
    (Matrix::from_rows(&rows).expect("non-empty rows"), y)
}

fn bench_fit(c: &mut Criterion) {
    let (x, y) = paper_shaped_data(66, 7);
    let mut group = c.benchmark_group("model_fit_66x3");
    group.sample_size(10);
    for kind in ModelKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| {
                let mut model = kind.build();
                model
                    .fit(black_box(&x), black_box(&y))
                    .expect("fit succeeds");
                black_box(model.predict(&[1.0, 0.5, 3.0]).expect("predict succeeds"))
            });
        });
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let (x, y) = paper_shaped_data(66, 7);
    let mut group = c.benchmark_group("model_predict");
    for kind in ModelKind::ALL {
        let mut model = kind.build();
        model.fit(&x, &y).expect("fit succeeds");
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, _| {
            b.iter(|| {
                black_box(
                    model
                        .predict(black_box(&[2.0, 0.9, 4.0]))
                        .expect("predict succeeds"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fit, bench_predict);
criterion_main!(benches);
