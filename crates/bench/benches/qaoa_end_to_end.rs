//! Criterion benches: end-to-end naive vs two-level solve of one MaxCut
//! instance — the wall-clock counterpart of Table I's function-call
//! comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use graphs::generators;
use ml::ModelKind;
use optimize::{Lbfgsb, Options};
use qaoa::datagen::{DataGenConfig, ParameterDataset};
use qaoa::{MaxCutProblem, ParameterPredictor, QaoaInstance, TwoLevelConfig, TwoLevelFlow};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_naive_vs_two_level(c: &mut Criterion) {
    // One-time corpus + predictor (small but real).
    let corpus = ParameterDataset::generate(&DataGenConfig {
        n_graphs: 12,
        n_nodes: 6,
        edge_probability: 0.5,
        max_depth: 3,
        restarts: 3,
        seed: 99,
        options: Options::default(),
        trend_preference_margin: 1e-3,
    })
    .expect("corpus generation");
    let predictor = ParameterPredictor::train(ModelKind::Gpr, &corpus).expect("GPR training");

    let mut rng = StdRng::seed_from_u64(4242);
    let graph = generators::erdos_renyi_nonempty(6, 0.5, &mut rng);
    let problem = MaxCutProblem::new(&graph).expect("non-empty graph");
    let optimizer = Lbfgsb::default();

    let mut group = c.benchmark_group("end_to_end_p3");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("naive", "random_init"), |b| {
        let instance = QaoaInstance::new(problem.clone(), 3).expect("valid depth");
        let bounds = qaoa::parameter_bounds(3).expect("valid depth");
        b.iter(|| {
            let mut run_rng = StdRng::seed_from_u64(7);
            let start = bounds.sample(&mut run_rng);
            black_box(
                instance
                    .optimize(&optimizer, &start, &Options::default())
                    .expect("optimization runs"),
            )
        });
    });
    group.bench_function(BenchmarkId::new("two_level", "ml_init"), |b| {
        let flow = TwoLevelFlow::new(&predictor);
        b.iter(|| {
            let mut run_rng = StdRng::seed_from_u64(7);
            black_box(
                flow.run(
                    &problem,
                    3,
                    &optimizer,
                    &TwoLevelConfig::default(),
                    &mut run_rng,
                )
                .expect("two-level run"),
            )
        });
    });
    group.finish();
}

fn bench_datagen_unit(c: &mut Criterion) {
    // Cost of producing one (graph, depth) corpus record.
    let mut rng = StdRng::seed_from_u64(31);
    let graph = generators::erdos_renyi_nonempty(6, 0.5, &mut rng);
    let problem = MaxCutProblem::new(&graph).expect("non-empty graph");
    let optimizer = Lbfgsb::default();
    let mut group = c.benchmark_group("datagen_record");
    group.sample_size(10);
    for p in [1usize, 3] {
        let instance = QaoaInstance::new(problem.clone(), p).expect("valid depth");
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| {
                let mut run_rng = StdRng::seed_from_u64(8);
                black_box(
                    instance
                        .optimize_multistart(&optimizer, 3, &mut run_rng, &Options::default())
                        .expect("optimization runs"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_naive_vs_two_level, bench_datagen_unit);
criterion_main!(benches);
