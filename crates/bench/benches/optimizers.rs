//! Criterion benches: each of the four paper optimizers solving a fixed
//! depth-2 QAOA landscape from a fixed starting point. Criterion reports
//! wall time; the printed `n_calls` in the harness output is the paper's
//! cost metric.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use graphs::generators;
use optimize::{all_optimizers, Options};
use qaoa::{MaxCutProblem, QaoaInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_optimizers_on_qaoa(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(14);
    let graph = generators::erdos_renyi_nonempty(6, 0.5, &mut rng);
    let problem = MaxCutProblem::new(&graph).expect("non-empty graph");
    let instance = QaoaInstance::new(problem, 2).expect("valid depth");
    let start = [1.0_f64, 2.0, 0.5, 1.0];
    let options = Options::default();

    let mut group = c.benchmark_group("optimizer_qaoa_p2");
    group.sample_size(20);
    for optimizer in all_optimizers() {
        group.bench_with_input(
            BenchmarkId::from_parameter(optimizer.name()),
            &optimizer,
            |b, opt| {
                b.iter(|| {
                    let out = instance
                        .optimize(opt.as_ref(), black_box(&start), &options)
                        .expect("optimization runs");
                    black_box(out)
                });
            },
        );
    }
    group.finish();
}

fn bench_rosenbrock(c: &mut Criterion) {
    // A classical baseline away from quantum code, for optimizer overheads.
    let f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
    let bounds = optimize::Bounds::uniform(2, -5.0, 5.0).expect("valid bounds");
    let options = Options::default().with_max_iters(500);
    let mut group = c.benchmark_group("optimizer_rosenbrock");
    group.sample_size(20);
    for optimizer in all_optimizers() {
        group.bench_with_input(
            BenchmarkId::from_parameter(optimizer.name()),
            &optimizer,
            |b, opt| {
                b.iter(|| {
                    black_box(
                        opt.minimize(&f, black_box(&[-1.2, 1.0]), &bounds, &options)
                            .expect("optimization runs"),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_optimizers_on_qaoa, bench_rosenbrock);
criterion_main!(benches);
