//! Criterion benches for the density-matrix (open-system) simulator:
//! gate application, Kraus channels, and the full noisy-QAOA energy
//! evaluation, against the pure-state path as the reference cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use graphs::generators;
use qaoa::noisy::NoisyQaoa;
use qaoa::{MaxCutProblem, QaoaAnsatz};
use qsim::{gates, DensityMatrix, KrausChannel, NoiseModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_dm_single_gate(c: &mut Criterion) {
    let mut group = c.benchmark_group("dm_single_gate");
    for n in [4usize, 6, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let rx = gates::rx(0.7);
            b.iter_batched(
                || DensityMatrix::plus_state(n).expect("small register"),
                |mut rho| {
                    rho.apply_single(n / 2, &rx).expect("valid qubit");
                    black_box(rho)
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_dm_kraus_channel(c: &mut Criterion) {
    let mut group = c.benchmark_group("dm_depolarizing_channel");
    let channel = KrausChannel::depolarizing(0.01).expect("valid rate");
    for n in [4usize, 6, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || DensityMatrix::plus_state(n).expect("small register"),
                |mut rho| {
                    rho.apply_channel(n / 2, &channel).expect("valid qubit");
                    black_box(rho)
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_noisy_vs_clean_energy(c: &mut Criterion) {
    let mut group = c.benchmark_group("qaoa_energy_p2");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(5);
    let graph = generators::erdos_renyi_nonempty(6, 0.5, &mut rng);
    let params = [0.8, 0.5, 0.4, 0.2];

    let problem = MaxCutProblem::new(&graph).expect("non-empty");
    let ansatz = QaoaAnsatz::new(problem.clone(), 2).expect("valid depth");
    group.bench_function("statevector_fast", |b| {
        b.iter(|| {
            black_box(
                ansatz
                    .expectation(black_box(&params))
                    .expect("valid params"),
            )
        });
    });

    let clean = NoisyQaoa::new(problem.clone(), 2, NoiseModel::noiseless()).expect("small");
    group.bench_function("density_noiseless", |b| {
        b.iter(|| black_box(clean.expectation(black_box(&params)).expect("valid params")));
    });

    let noisy = NoisyQaoa::new(
        problem,
        2,
        NoiseModel::uniform_depolarizing(0.001, 0.01).expect("valid rates"),
    )
    .expect("small");
    group.bench_function("density_depolarizing", |b| {
        b.iter(|| black_box(noisy.expectation(black_box(&params)).expect("valid params")));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dm_single_gate,
    bench_dm_kraus_channel,
    bench_noisy_vs_clean_energy
);
criterion_main!(benches);
