//! Engine scaling: batch throughput at 1/2/4/8 workers.
//!
//! Two workloads, both on a fixed 24-graph queue:
//!
//! * `batch_p2` — depth-2 multistart jobs through `Engine::run_batch`,
//! * `corpus` — the full §III-A pipeline (depths 1..=2) via
//!   `engine::corpus::from_graphs`, with a fresh engine (empty cache) per
//!   iteration so the measurement is pure compute scaling.
//!
//! Run: `cargo bench -p bench --bench engine_scaling`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use engine::{BatchConfig, Engine, Job};
use graphs::Graph;
use optimize::Lbfgsb;
use qaoa::datagen::DataGenConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ensemble(n_graphs: usize) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(515);
    (0..n_graphs)
        .map(|_| graphs::generators::erdos_renyi_nonempty(6, 0.5, &mut rng))
        .collect()
}

fn bench_batch_scaling(c: &mut Criterion) {
    let jobs: Vec<Job> = ensemble(24)
        .into_iter()
        .map(|g| Job::new(g, 2, 2))
        .collect();
    let config = BatchConfig {
        master_seed: 99,
        ..BatchConfig::default()
    };
    let optimizer = Lbfgsb::default();

    let mut group = c.benchmark_group("engine_batch_p2");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let eng = Engine::new(workers);
                    eng.run_batch(&optimizer, &jobs, &config)
                        .expect("batch runs")
                });
            },
        );
    }
    group.finish();
}

fn bench_corpus_scaling(c: &mut Criterion) {
    let graphs = ensemble(24);
    let config = DataGenConfig {
        n_graphs: graphs.len(),
        n_nodes: 6,
        edge_probability: 0.5,
        max_depth: 2,
        restarts: 2,
        seed: 77,
        options: Default::default(),
        trend_preference_margin: 1e-3,
    };

    let mut group = c.benchmark_group("engine_corpus");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    engine::corpus::from_graphs(graphs.clone(), &config, &Engine::new(workers))
                        .expect("corpus runs")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_scaling, bench_corpus_scaling);
criterion_main!(benches);
