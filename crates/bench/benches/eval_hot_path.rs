//! The evaluation hot path: allocating legacy pipeline vs the
//! `EvalContext` pipeline, and finite-difference vs adjoint gradients.
//!
//! `expectation/...` benches the paper's "function call / QC call" unit
//! across a width sweep — n = 8 (the paper's width), n = 12, n = 16 (the
//! acceptance workload), and n = 20 (the scaling headroom check) — all at
//! p = 2. The sweep feeds the committed `BENCH_eval.json` snapshot
//! (regenerate with `scripts/bench_snapshot.sh`):
//!
//! * `allocating` — the pre-`EvalContext` implementation, replicated
//!   verbatim: fresh `plus_state` per call, a materialized `2^n` phase
//!   vector per stage (one `cis` per basis state), generic per-qubit RX
//!   gates.
//! * `ctx_fresh` — `EvalContext` pipeline (per-level phase table + fused RX
//!   layer) but a new context per call: isolates the kernel wins from the
//!   buffer-reuse win.
//! * `ctx_reused` — the real hot path: one context reused across calls.
//!
//! `gradient/...` compares full-gradient acquisition across the same
//! width sweep (n = 8, 12, 16, 20) at p = 2: `2p + 1 = 5` evaluations for
//! central differences vs one adjoint backward pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use graphs::generators;
use qaoa::{EvalContext, MaxCutProblem, QaoaAnsatz};
use qsim::{gates, Complex64, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The pre-`EvalContext` expectation, kept verbatim as the baseline.
fn allocating_expectation(ansatz: &QaoaAnsatz, params: &[f64]) -> f64 {
    let (gammas, betas) = ansatz.split_params(params).expect("valid params");
    let n = ansatz.problem().n_qubits();
    let diag = ansatz.problem().cost().diagonal();
    let mut state = StateVector::plus_state(n);
    for (&gamma, &beta) in gammas.iter().zip(betas) {
        let phases: Vec<Complex64> = diag.iter().map(|&c| Complex64::cis(-gamma * c)).collect();
        state.apply_diagonal(&phases).expect("matching dims");
        let rx = gates::rx(2.0 * beta);
        for q in 0..n {
            state.apply_single(q, &rx).expect("valid qubit");
        }
    }
    ansatz
        .problem()
        .cost()
        .expectation(&state)
        .expect("matching dims")
}

fn workload(n: usize, p: usize) -> (QaoaAnsatz, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(16);
    let graph = generators::erdos_renyi_nonempty(n, 0.5, &mut rng);
    let problem = MaxCutProblem::new(&graph).expect("non-empty graph");
    let ansatz = QaoaAnsatz::new(problem, p).expect("valid depth");
    let params: Vec<f64> = (0..2 * p).map(|i| 0.3 + 0.17 * i as f64).collect();
    (ansatz, params)
}

fn bench_expectation_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("expectation");
    for n in [8usize, 12, 16, 20] {
        let (ansatz, params) = workload(n, 2);
        group.bench_with_input(BenchmarkId::new("allocating", n), &n, |b, _| {
            b.iter(|| black_box(allocating_expectation(&ansatz, &params)));
        });
        group.bench_with_input(BenchmarkId::new("ctx_fresh", n), &n, |b, _| {
            b.iter(|| {
                let mut ctx = EvalContext::new(n);
                black_box(
                    ansatz
                        .expectation_in(&mut ctx, &params)
                        .expect("valid params"),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("ctx_reused", n), &n, |b, _| {
            let mut ctx = EvalContext::new(n);
            b.iter(|| {
                black_box(
                    ansatz
                        .expectation_in(&mut ctx, &params)
                        .expect("valid params"),
                )
            });
        });
    }
    group.finish();
}

fn bench_gradient_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("gradient");
    for n in [8usize, 12, 16, 20] {
        let (ansatz, params) = workload(n, 2);
        let dim = params.len();
        group.bench_with_input(BenchmarkId::new("central_diff", n), &n, |b, _| {
            // 2p + 1 evaluations: the value plus a ± probe pair per
            // parameter, each through the fast context path (FD's best
            // case).
            let mut ctx = EvalContext::new(n);
            b.iter(|| {
                let mut grad = vec![0.0; dim];
                let h = 1e-6;
                let base = ansatz
                    .expectation_in(&mut ctx, &params)
                    .expect("valid params");
                let mut probe = params.clone();
                for i in 0..dim {
                    probe[i] = params[i] + h;
                    let up = ansatz
                        .expectation_in(&mut ctx, &probe)
                        .expect("valid params");
                    probe[i] = params[i] - h;
                    let dn = ansatz
                        .expectation_in(&mut ctx, &probe)
                        .expect("valid params");
                    probe[i] = params[i];
                    grad[i] = (up - dn) / (2.0 * h);
                }
                black_box((base, grad))
            });
        });
        group.bench_with_input(BenchmarkId::new("adjoint", n), &n, |b, _| {
            let mut ctx = EvalContext::new(n);
            b.iter(|| {
                let mut grad = vec![0.0; dim];
                let e = ansatz
                    .expectation_and_grad_in(&mut ctx, &params, &mut grad)
                    .expect("valid params");
                black_box((e, grad))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_expectation_paths, bench_gradient_paths);
criterion_main!(benches);
