//! Shard scaling: the streaming coordinator's corpus throughput at 1/2/4
//! shards over both wire transports.
//!
//! One fixed 12-graph, depth-2 corpus; each iteration runs the full
//! coordinator loop — dispatch, streaming merge, graceful close — against
//! freshly started workers:
//!
//! * `shard_loopback` — in-process workers over channel pipes (transport
//!   cost ≈ zero; measures the coordinator + solve),
//! * `shard_subprocess` — spawned `qaoa-serve` processes over stdin/stdout
//!   (adds process startup and pipe framing; the gap to loopback is the
//!   real cost of process isolation).
//!
//! Run: `cargo bench -p bench --bench shard_scaling`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use engine::shard::{self, ShardPlan};
use engine::{LoopbackTransport, SubprocessTransport};
use qaoa::datagen::DataGenConfig;

fn spec() -> DataGenConfig {
    DataGenConfig {
        n_graphs: 12,
        n_nodes: 6,
        edge_probability: 0.5,
        max_depth: 2,
        restarts: 2,
        seed: 77,
        options: Default::default(),
        trend_preference_margin: 1e-3,
    }
}

fn bench_loopback(c: &mut Criterion) {
    let config = spec();
    let mut group = c.benchmark_group("shard_loopback");
    group.sample_size(10);
    for shards in [1usize, 2, 4] {
        let plan = ShardPlan::split_even(config.n_graphs, shards);
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut transport = LoopbackTransport::new(shards, 1);
                    shard::run_wire(&config, &plan, &mut transport).expect("loopback shard run")
                });
            },
        );
    }
    group.finish();
}

fn bench_subprocess(c: &mut Criterion) {
    let config = spec();
    let mut cmd = vec![env!("CARGO_BIN_EXE_qaoa-serve").to_string()];
    for arg in ["--threads", "1", "--seed", "77"] {
        cmd.push(arg.to_string());
    }
    let mut group = c.benchmark_group("shard_subprocess");
    group.sample_size(10);
    for shards in [1usize, 2, 4] {
        let plan = ShardPlan::split_even(config.n_graphs, shards);
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut transport =
                        SubprocessTransport::spawn(&cmd, shards).expect("spawning workers");
                    shard::run_wire(&config, &plan, &mut transport).expect("subprocess shard run")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_loopback, bench_subprocess);
criterion_main!(benches);
