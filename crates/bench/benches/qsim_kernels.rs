//! Criterion benches for the simulator kernels, including the design-choice
//! ablation from DESIGN.md §4.1: fast diagonal QAOA path vs gate-level path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use graphs::generators;
use qaoa::{MaxCutProblem, QaoaAnsatz};
use qsim::{gates, Complex64, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_single_qubit_gates(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_qubit_gate");
    for n in [8usize, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let rx = gates::rx(0.7);
            b.iter_batched(
                || StateVector::plus_state(n),
                |mut s| {
                    s.apply_single(n / 2, &rx).expect("valid qubit");
                    black_box(s)
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_diagonal_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("diagonal_phase");
    for n in [8usize, 12, 16] {
        let phases: Vec<Complex64> = (0..1usize << n)
            .map(|z| Complex64::cis(0.01 * z as f64))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || StateVector::plus_state(n),
                |mut s| {
                    s.apply_diagonal(&phases).expect("matching dims");
                    black_box(s)
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_qaoa_paths(c: &mut Criterion) {
    // DESIGN.md ablation 1: fast diagonal path vs gate-level circuit.
    let mut rng = StdRng::seed_from_u64(3);
    let graph = generators::erdos_renyi_nonempty(8, 0.5, &mut rng);
    let problem = MaxCutProblem::new(&graph).expect("non-empty graph");
    let mut group = c.benchmark_group("qaoa_expectation_path");
    for p in [1usize, 3, 5] {
        let ansatz = QaoaAnsatz::new(problem.clone(), p).expect("valid depth");
        let params: Vec<f64> = (0..2 * p).map(|i| 0.2 + 0.1 * i as f64).collect();
        group.bench_with_input(BenchmarkId::new("fast", p), &p, |b, _| {
            b.iter(|| {
                black_box(
                    ansatz
                        .expectation(black_box(&params))
                        .expect("valid params"),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("gate_level", p), &p, |b, _| {
            b.iter(|| {
                black_box(
                    ansatz
                        .expectation_gate_level(black_box(&params))
                        .expect("valid params"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_qubit_gates,
    bench_diagonal_phase,
    bench_qaoa_paths
);
criterion_main!(benches);
