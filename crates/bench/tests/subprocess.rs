//! End-to-end tests of the spawned-subprocess transport: real `qaoa-serve`
//! processes (the `CARGO_BIN_EXE` build of this crate's own binary) driven
//! by the streaming shard coordinator over stdin/stdout.
//!
//! These live in the bench crate — not `tests/` — because only the crate
//! that owns a binary gets `CARGO_BIN_EXE_<name>` at test-build time.

use std::time::Duration;

use bench::RunConfig;
use engine::shard::{self, ShardPlan};
use engine::{wire, Engine, KillAfter, ShardTransport, SubprocessTransport};
use qaoa::datagen::{DataGenConfig, ParameterDataset};

/// A corpus spec small enough that even debug-build workers answer in
/// milliseconds, deep enough (2 depths) to cover the trend-seeded path.
fn spec(graphs: usize) -> DataGenConfig {
    let mut config = RunConfig::quick();
    config.graphs = graphs;
    config.nodes = 4;
    config.max_depth = 2;
    config.restarts = 2;
    config.seed = 77;
    config.datagen()
}

/// The worker argv: this build's own `qaoa-serve`, plus `extra`.
fn serve_cmd(extra: &[&str]) -> Vec<String> {
    let mut cmd = vec![env!("CARGO_BIN_EXE_qaoa-serve").to_string()];
    cmd.extend(extra.iter().map(ToString::to_string));
    cmd
}

fn reference(config: &DataGenConfig) -> ParameterDataset {
    let (dataset, _) = engine::corpus::generate(config, &Engine::new(1)).expect("reference corpus");
    dataset
}

fn assert_bit_identical(a: &ParameterDataset, b: &ParameterDataset, what: &str) {
    assert_eq!(a.records().len(), b.records().len(), "{what}: record count");
    for (x, y) in a.records().iter().zip(b.records()) {
        assert_eq!(x.graph_id, y.graph_id, "{what}: graph_id");
        assert_eq!(x.depth, y.depth, "{what}: depth");
        assert_eq!(
            x.expectation.to_bits(),
            y.expectation.to_bits(),
            "{what}: expectation bits (graph {}, depth {})",
            x.graph_id,
            x.depth
        );
        assert_eq!(
            x.approximation_ratio.to_bits(),
            y.approximation_ratio.to_bits(),
            "{what}: ar bits"
        );
        assert_eq!(x.function_calls, y.function_calls, "{what}: fn calls");
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&x.gammas), bits(&y.gammas), "{what}: gammas");
        assert_eq!(bits(&x.betas), bits(&y.betas), "{what}: betas");
    }
}

#[test]
fn spawned_workers_match_the_unsharded_corpus() {
    let config = spec(5);
    let unsharded = reference(&config);
    let cmd = serve_cmd(&["--threads", "1", "--seed", "77"]);
    for shards in [2usize, 3] {
        let plan = ShardPlan::split_even(config.n_graphs, shards);
        let mut transport =
            SubprocessTransport::spawn(&cmd, 2).expect("spawning qaoa-serve workers");
        let (merged, report) =
            shard::run_wire(&config, &plan, &mut transport).expect("subprocess shard run");
        assert_eq!(report.lost_workers, 0);
        assert_eq!(report.retasked, 0);
        assert_bit_identical(
            &unsharded,
            &merged,
            &format!("{shards} shards over subprocesses"),
        );
    }
}

#[test]
fn killed_subprocess_worker_still_matches() {
    // Kill a real worker process after its first delivered line: the
    // coordinator must detect the death (closed pipe), re-task the range
    // onto the surviving process, and still merge bit-identically.
    let config = spec(5);
    let unsharded = reference(&config);
    let plan = ShardPlan::split_even(config.n_graphs, 3);
    let cmd = serve_cmd(&["--threads", "1", "--seed", "77"]);
    let inner = SubprocessTransport::spawn(&cmd, 2).expect("spawning qaoa-serve workers");
    let mut transport = KillAfter::new(inner, 0, 1);
    let (merged, report) =
        shard::run_wire(&config, &plan, &mut transport).expect("failover over subprocesses");
    assert_eq!(
        report.lost_workers, 1,
        "the killed process must be declared dead"
    );
    assert!(report.retasked >= 1, "its range must be re-tasked");
    assert_bit_identical(&unsharded, &merged, "kill-one-subprocess run");
}

#[test]
fn spawned_server_answers_predict_from_a_model_artifact() {
    // The prediction service over the subprocess transport: train a tiny
    // predictor, persist it as a QMODEL1 artifact, spawn `qaoa-serve
    // --model` on it, and get a tiered PREDICTED answer over the pipe.
    let config = spec(4);
    let corpus = reference(&config);
    let predictor =
        qaoa::ParameterPredictor::train(ml::ModelKind::Gpr, &corpus).expect("tiny predictor");
    let model_path =
        std::env::temp_dir().join(format!("qaoa_subprocess_model_{}.qm", std::process::id()));
    engine::model::save(&predictor, &model_path, config.seed).expect("model artifact");

    let cmd = serve_cmd(&[
        "--threads",
        "1",
        "--seed",
        "77",
        "--model",
        model_path.to_str().expect("utf-8 temp path"),
    ]);
    let mut transport = SubprocessTransport::spawn(&cmd, 1).expect("spawning qaoa-serve");
    let graph = engine::corpus::ensemble(&config)
        .into_iter()
        .next()
        .expect("ensemble has a graph");
    let request = wire::PredictRequest {
        id: 42,
        depth: 2,
        restarts: config.restarts,
        graph,
    };
    let line = wire::encode_predict(&request).expect("encodable request");
    transport
        .send_line(0, &line)
        .expect("request reaches the worker");
    let answer = transport
        .recv_line(0, Duration::from_secs(60))
        .expect("worker answers");
    let predicted = wire::decode_predicted(&answer).expect("well-formed PREDICTED line");
    assert_eq!(predicted.id, 42);
    assert_eq!(
        predicted.params.len(),
        2 * request.depth,
        "a depth-p answer carries 2p parameters"
    );
    assert!(predicted.params.iter().all(|p| p.is_finite()));
    transport.close(0);
    std::fs::remove_file(&model_path).ok();
}

#[test]
fn qaoa_shard_spawn_cli_matches_local_mode() {
    // The full CLI path: `qaoa-shard --workers spawn:2` must write the
    // same TSV bytes to stdout as the default local mode.
    let shard_bin = env!("CARGO_BIN_EXE_qaoa-shard");
    let serve_bin = env!("CARGO_BIN_EXE_qaoa-serve");
    let common = [
        "--quick",
        "--graphs",
        "5",
        "--nodes",
        "4",
        "--max-depth",
        "2",
        "--restarts",
        "2",
        "--seed",
        "77",
        "--threads",
        "1",
    ];
    let run = |extra: &[&str]| -> Vec<u8> {
        let output = std::process::Command::new(shard_bin)
            .args(common)
            .args(extra)
            .output()
            .expect("qaoa-shard runs");
        assert!(
            output.status.success(),
            "qaoa-shard {extra:?} failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        output.stdout
    };
    let local = run(&[]);
    let spawned = run(&[
        "--shards",
        "3",
        "--workers",
        "spawn:2",
        "--worker-cmd",
        serve_bin,
    ]);
    assert!(!local.is_empty());
    assert_eq!(
        local, spawned,
        "spawn-mode stdout TSV differs from local mode"
    );
}
