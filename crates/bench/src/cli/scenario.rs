//! `--shots` / `--noise` flag parsing: the evaluation-scenario axis.
//!
//! Every Table-I-style binary evaluates the ideal expectation by default.
//! These flags swap the objective: `--shots N` samples the circuit N times
//! per evaluation (shot noise, SPSA-optimized), `--noise p1,p2` applies a
//! depolarizing channel after every gate. The two are mutually exclusive —
//! a run measures one scenario at a time so its rows stay interpretable.

use optimize::Options;
use qaoa::Scenario;

/// Per-optimization function-call ceiling under gate noise.
const NOISY_MAX_CALLS: usize = 600;
/// Iteration ceiling under gate noise.
const NOISY_MAX_ITERS: usize = 100;
/// Convergence tolerance under gate noise.
const NOISY_FTOL: f64 = 1e-4;

/// Parses `--shots N` (N >= 1).
///
/// # Errors
///
/// Returns a human-readable message for non-numeric or zero values.
pub fn parse_shots(value: &str) -> Result<u32, String> {
    match value.parse::<u32>() {
        Ok(n) if n >= 1 => Ok(n),
        Ok(_) => Err("--shots 0: need at least one shot per evaluation".into()),
        Err(e) => Err(format!("--shots {value}: {e}")),
    }
}

/// Parses `--noise p1,p2` — single- and two-qubit depolarizing
/// probabilities, both finite and in `[0, 1]`.
///
/// # Errors
///
/// Returns a human-readable message for malformed pairs or out-of-range
/// probabilities.
pub fn parse_noise(value: &str) -> Result<(f64, f64), String> {
    let (a, b) = value
        .split_once(',')
        .ok_or_else(|| format!("--noise {value}: expected p1,p2 (e.g. 0.002,0.02)"))?;
    let parse = |s: &str| -> Result<f64, String> {
        let p: f64 = s
            .trim()
            .parse()
            .map_err(|e| format!("--noise {value}: {e}"))?;
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(format!(
                "--noise {value}: probabilities must be finite and in [0, 1]"
            ));
        }
        Ok(p)
    };
    Ok((parse(a)?, parse(b)?))
}

/// Combines the two optional flags into one [`Scenario`].
///
/// # Errors
///
/// Rejects runs that request both `--shots` and `--noise`: a row of the
/// resulting table would not say which effect it measured.
pub fn resolve(shots: Option<u32>, noise: Option<(f64, f64)>) -> Result<Scenario, String> {
    match (shots, noise) {
        (None, None) => Ok(Scenario::Exact),
        (Some(shots), None) => Ok(Scenario::Sampled { shots }),
        (None, Some((p1, p2))) => Ok(Scenario::Noisy { p1, p2 }),
        (Some(_), Some(_)) => {
            Err("--shots and --noise are mutually exclusive: pick one scenario per run".into())
        }
    }
}

/// Optimizer budget appropriate to a scenario.
///
/// The exact objective keeps the paper's high-precision defaults. The
/// gate-noise objective pays ~1000x more per evaluation (a density-matrix
/// simulation instead of a statevector pass) and gradient-based optimizers
/// consume `2p + 1` of those per finite-difference gradient, while the
/// noise floor makes differences below ~1e-4 physically meaningless — so
/// its budget is capped on all three axes (iterations, function calls,
/// tolerance). The sampled objective is cheap per evaluation and is
/// optimized by an internally-budgeted SPSA, so it keeps the base options.
#[must_use]
pub fn tuned_options(scenario: &Scenario, base: Options) -> Options {
    match scenario {
        Scenario::Noisy { .. } => base
            .with_ftol(base.ftol.max(NOISY_FTOL))
            .with_max_iters(base.max_iters.min(NOISY_MAX_ITERS))
            .with_max_calls(if base.max_calls == 0 {
                NOISY_MAX_CALLS
            } else {
                base.max_calls.min(NOISY_MAX_CALLS)
            }),
        Scenario::Exact | Scenario::Sampled { .. } => base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shots_parse_and_validate() {
        assert_eq!(parse_shots("256"), Ok(256));
        assert!(parse_shots("0").is_err());
        assert!(parse_shots("many").is_err());
        assert!(parse_shots("-4").is_err());
    }

    #[test]
    fn noise_parse_and_validate() {
        assert_eq!(parse_noise("0.002,0.02"), Ok((0.002, 0.02)));
        assert_eq!(parse_noise("0, 1"), Ok((0.0, 1.0)));
        assert!(parse_noise("0.002").is_err());
        assert!(parse_noise("0.002,2.0").is_err());
        assert!(parse_noise("-0.1,0.02").is_err());
        assert!(parse_noise("nan,0.02").is_err());
        assert!(parse_noise("a,b").is_err());
    }

    #[test]
    fn resolve_picks_one_scenario() {
        assert_eq!(resolve(None, None), Ok(Scenario::Exact));
        assert_eq!(resolve(Some(64), None), Ok(Scenario::Sampled { shots: 64 }));
        assert_eq!(
            resolve(None, Some((0.001, 0.01))),
            Ok(Scenario::Noisy {
                p1: 0.001,
                p2: 0.01
            })
        );
        assert!(resolve(Some(64), Some((0.001, 0.01))).is_err());
    }

    #[test]
    fn noisy_options_are_capped_and_others_untouched() {
        let base = Options::default();
        let exact = tuned_options(&Scenario::Exact, base);
        assert_eq!(exact.max_iters, base.max_iters);
        assert_eq!(exact.ftol.to_bits(), base.ftol.to_bits());
        let sampled = tuned_options(&Scenario::Sampled { shots: 64 }, base);
        assert_eq!(sampled.max_iters, base.max_iters);
        let noisy = tuned_options(&Scenario::Noisy { p1: 0.0, p2: 0.01 }, base);
        assert_eq!(noisy.max_iters, NOISY_MAX_ITERS);
        assert_eq!(noisy.max_calls, NOISY_MAX_CALLS);
        assert!(noisy.ftol >= NOISY_FTOL);
        // An already-tighter caller budget is respected, not loosened.
        let tight = tuned_options(
            &Scenario::Noisy { p1: 0.0, p2: 0.01 },
            Options::default().with_max_iters(10).with_max_calls(50),
        );
        assert_eq!(tight.max_iters, 10);
        assert_eq!(tight.max_calls, 50);
    }
}
