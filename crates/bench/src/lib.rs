//! Shared helpers for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` reproduces one table or figure of the paper
//! (see DESIGN.md's experiment index) and accepts the same flags:
//!
//! ```text
//! --quick            CI-scale preset (small ensemble, shallow depths)
//! --nodes N          nodes per graph            (paper: 8)
//! --graphs N         ensemble size              (paper: 330)
//! --restarts N       random inits per instance  (paper: 20)
//! --max-depth N      corpus depth               (paper: 6)
//! --seed N           RNG seed                   (default: 2020)
//! --threads N        engine worker count        (default: all cores)
//! --cache-file PATH  persistent depth-1 cache shared across runs
//! --model PATH       trained QMODEL1 predictor artifact shared across runs
//! ```
//!
//! Parsing is deliberately dependency-free.

use qaoa::datagen::DataGenConfig;

pub mod cli;

/// How `qaoa-shard` runs its shard workers (`--workers`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerMode {
    /// In-process `engine::corpus` calls, one per range (no wire protocol).
    Local,
    /// K in-process `qaoa-serve` loops over channel pipes — the streaming
    /// coordinator's reference transport.
    Loopback(usize),
    /// K spawned worker subprocesses (`--worker-cmd`, default `qaoa-serve`)
    /// over stdin/stdout.
    Spawn(usize),
}

impl WorkerMode {
    /// Parses `--workers` values: `local`, `loopback:K`, or `spawn:K`
    /// (K >= 1).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for anything else.
    pub fn parse(value: &str) -> Result<Self, String> {
        if value == "local" {
            return Ok(Self::Local);
        }
        let parse_k = |kind: &str, k: &str| -> Result<usize, String> {
            match k.parse::<usize>() {
                Ok(k) if k >= 1 => Ok(k),
                _ => Err(format!(
                    "--workers {kind}:{k}: worker count must be a positive integer"
                )),
            }
        };
        if let Some(k) = value.strip_prefix("loopback:") {
            return Ok(Self::Loopback(parse_k("loopback", k)?));
        }
        if let Some(k) = value.strip_prefix("spawn:") {
            return Ok(Self::Spawn(parse_k("spawn", k)?));
        }
        Err(format!(
            "--workers {value}: expected local, loopback:K, or spawn:K"
        ))
    }
}

/// Scale parameters shared by all experiment binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Nodes per problem graph.
    pub nodes: usize,
    /// Number of graphs in the ensemble.
    pub graphs: usize,
    /// Random initializations per instance.
    pub restarts: usize,
    /// Maximum corpus depth.
    pub max_depth: usize,
    /// RNG seed.
    pub seed: u64,
    /// Whether `--quick` was requested.
    pub quick: bool,
    /// Override for the naive protocol's random starts in evaluation
    /// binaries (`None` = same as `restarts`). Lets a cached corpus (keyed
    /// on `restarts`) be reused while scaling evaluation cost separately.
    pub naive_starts: Option<usize>,
    /// Engine worker count (`None` = the machine's available parallelism).
    pub threads: Option<usize>,
    /// Persistent depth-1 optimum cache (`--cache-file`): loaded into every
    /// [`RunConfig::engine`] and saved back by the drivers, so repeated
    /// runs — at any thread count — start with all previously-seen
    /// canonical graph classes already solved.
    pub cache_file: Option<std::path::PathBuf>,
    /// Trained predictor artifact (`--model`): a versioned `QMODEL1` file
    /// `qaoa-predict train` writes and `qaoa-predict serve` / `qaoa-serve`
    /// load to answer `PREDICT` requests without re-training. Missing,
    /// corrupt, or stale files are discarded, never fatal.
    pub model: Option<std::path::PathBuf>,
    /// Corpus shard count (`--shards`, `qaoa-shard`): the ensemble is split
    /// into this many contiguous graph-index ranges, one worker per range.
    /// Output is bit-identical at any value; default 1 (unsharded).
    pub shards: usize,
    /// Output path for the merged corpus TSV (`--out`, `qaoa-shard`);
    /// `None` writes to stdout.
    pub out: Option<std::path::PathBuf>,
    /// Shard worker mode (`--workers`, `qaoa-shard`): in-process ranges
    /// (default), K loopback wire workers, or K spawned subprocesses.
    pub workers: WorkerMode,
    /// Worker command line for spawn mode (`--worker-cmd`, whitespace-split;
    /// `None` = the `qaoa-serve` binary next to the running executable).
    /// `qaoa-shard` appends `--threads`/`--seed` (and a per-worker
    /// `--cache-file`) itself.
    pub worker_cmd: Option<String>,
    /// Coordinator liveness timeout in seconds (`--timeout-secs`): a wire
    /// worker silent this long is declared dead and its range re-tasked.
    pub timeout_secs: u64,
    /// Fault injection for CI (`--kill-worker W`): kill wire worker W after
    /// its first delivered line; the run must still complete bit-identically
    /// via re-tasking.
    pub kill_worker: Option<usize>,
    /// Shot-noise scenario (`--shots N`): evaluate the sampled expectation
    /// from N measurement shots per objective call instead of the exact
    /// `<C>`. `None` = exact. Mutually exclusive with `noise`.
    pub shots: Option<u32>,
    /// Gate-noise scenario (`--noise p1,p2`): depolarizing probabilities
    /// after one- and two-qubit gates, evaluated on the density-matrix
    /// path. `None` = noiseless. Mutually exclusive with `shots`.
    pub noise: Option<(f64, f64)>,
}

impl RunConfig {
    /// The paper's full scale.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            nodes: 8,
            graphs: 330,
            restarts: 20,
            max_depth: 6,
            seed: 2020,
            quick: false,
            naive_starts: None,
            threads: None,
            cache_file: None,
            model: None,
            shards: 1,
            out: None,
            workers: WorkerMode::Local,
            worker_cmd: None,
            timeout_secs: 30,
            kill_worker: None,
            shots: None,
            noise: None,
        }
    }

    /// CI scale: finishes in seconds.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            nodes: 6,
            graphs: 24,
            restarts: 3,
            max_depth: 4,
            seed: 2020,
            quick: true,
            naive_starts: None,
            threads: None,
            cache_file: None,
            model: None,
            shards: 1,
            out: None,
            workers: WorkerMode::Local,
            worker_cmd: None,
            timeout_secs: 30,
            kill_worker: None,
            shots: None,
            noise: None,
        }
    }

    /// Parses `args` (without the program name) on top of the paper preset.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags or bad values,
    /// and for `--help` (this programmatic entry point has no usage text to
    /// print; binaries go through [`RunConfig::from_env`], which handles
    /// help on stdout with exit 0).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        match cli::parse_args(args)? {
            cli::Parsed::Run(config) => Ok(*config),
            cli::Parsed::Help => Err("--help requested (see bench::cli::USAGE)".into()),
        }
    }

    /// Parses the real process arguments, exiting with a usage message on
    /// error.
    #[must_use]
    pub fn from_env() -> Self {
        cli::from_env()
    }

    /// The corresponding data-generation configuration.
    #[must_use]
    pub fn datagen(&self) -> DataGenConfig {
        DataGenConfig {
            n_graphs: self.graphs,
            n_nodes: self.nodes,
            edge_probability: 0.5,
            max_depth: self.max_depth,
            restarts: self.restarts,
            seed: self.seed,
            options: Default::default(),
            trend_preference_margin: 1e-3,
        }
    }

    /// Random starts for the naive evaluation protocol.
    #[must_use]
    pub fn naive_starts(&self) -> usize {
        self.naive_starts.unwrap_or(self.restarts)
    }

    /// The evaluation scenario selected by `--shots` / `--noise`
    /// ([`Scenario::Exact`](qaoa::Scenario::Exact) when neither is given).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when both flags were set (already
    /// rejected at parse time for CLI-built configs, re-checked here for
    /// programmatic ones).
    pub fn scenario(&self) -> Result<qaoa::Scenario, String> {
        cli::scenario::resolve(self.shots, self.noise)
    }

    /// Engine worker count: `--threads` if given, else the machine's
    /// available parallelism.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    }

    /// Pre-warms `cache` from `--cache-file` (no-op without the flag),
    /// reporting the load status on stderr. A missing, corrupt, or
    /// version-stale file is ignored — the cache simply starts cold and
    /// the file is regenerated by [`RunConfig::persist_level1`].
    pub fn load_level1(&self, cache: &engine::Level1Cache) {
        if let Some(path) = &self.cache_file {
            let status = engine::persist::load_into(cache, path, self.seed);
            eprintln!("# cache-file {}: {}", path.display(), status.summary());
        }
    }

    /// Saves `cache` back to `--cache-file` (merged with any entries
    /// another process persisted meanwhile). No-op without the flag; a
    /// failed save is a stderr warning, never fatal — the cache is an
    /// optimization.
    pub fn persist_level1(&self, cache: &engine::Level1Cache) {
        let Some(path) = &self.cache_file else {
            return;
        };
        match engine::persist::save_merge(cache, path, self.seed) {
            Ok(n) => eprintln!(
                "# cache-file {}: saved {n} depth-1 entries ({} hits / {} misses this run)",
                path.display(),
                cache.hits(),
                cache.misses(),
            ),
            Err(e) => eprintln!(
                "# warning: could not save cache-file {}: {e}",
                path.display()
            ),
        }
    }

    /// A batch engine sized by [`RunConfig::threads`], pre-warmed from
    /// `--cache-file` via [`RunConfig::load_level1`].
    #[must_use]
    pub fn engine(&self) -> engine::Engine {
        let engine = engine::Engine::new(self.threads());
        self.load_level1(engine.cache());
        engine
    }

    /// Saves `engine`'s depth-1 cache back to `--cache-file` via
    /// [`RunConfig::persist_level1`].
    pub fn persist_cache(&self, engine: &engine::Engine) {
        self.persist_level1(engine.cache());
    }

    /// Generates the corpus for this configuration on the parallel engine,
    /// caching it as TSV under `target/` so repeated figure binaries share
    /// the (one-time, §III-A) generation cost. Delete the cache file to
    /// force regeneration.
    ///
    /// With `--cache-file`, the persistent **depth-1 class cache** replaces
    /// the whole-corpus TSV as the cross-run reuse mechanism: the corpus is
    /// regenerated each run (so the run's cache hit/miss accounting is
    /// real and observable), but every depth-1 solve whose canonical class
    /// was seen by *any* earlier run — in this or another process — is
    /// served from the file. The file is then saved back, merged.
    ///
    /// The engine's per-cell deterministic seeding makes the corpus a pure
    /// function of the configuration — the same at any `--threads` value,
    /// warm or cold.
    ///
    /// # Panics
    ///
    /// Panics if generation fails (binaries have no recovery path).
    #[must_use]
    pub fn corpus(&self) -> qaoa::datagen::ParameterDataset {
        // v3: analytic adjoint gradients (L-BFGS-B consumes exact gradients
        // instead of finite differences, changing iterates and FC counts).
        // The version tag keeps corpora from earlier pipelines from being
        // loaded as if equivalent.
        let cache = std::path::PathBuf::from(format!(
            "target/qaoa_corpus_v3_n{}_g{}_d{}_r{}_s{}.tsv",
            self.nodes, self.graphs, self.max_depth, self.restarts, self.seed
        ));
        if self.cache_file.is_none() && cache.exists() {
            match qaoa::datagen::ParameterDataset::load(&cache) {
                Ok(ds) => {
                    eprintln!("# corpus loaded from {}", cache.display());
                    return ds;
                }
                Err(e) => eprintln!("# corpus cache unreadable ({e}); regenerating"),
            }
        }
        eprintln!(
            "# generating corpus ({} graphs x depths 1..={}, {} restarts, {} threads)...",
            self.graphs,
            self.max_depth,
            self.restarts,
            self.threads()
        );
        let engine = self.engine();
        let generated = engine::corpus::generate(&self.datagen(), &engine);
        // lint:allow(no-panic-lib) same policy as train_predictor below: bench binaries have no recovery path from a failed generation run
        let (ds, report) = generated.expect("corpus generation");
        eprintln!("# corpus: {}", report.summary());
        self.persist_cache(&engine);
        if self.cache_file.is_none() {
            if let Err(e) = ds.save(&cache) {
                eprintln!("# warning: could not cache corpus: {e}");
            } else {
                eprintln!("# corpus cached at {}", cache.display());
            }
        }
        ds
    }

    /// Trains the prediction-service regressor on this configuration's
    /// corpus (GPR — the paper's best-performing regressor family). This is
    /// the expensive half of train-once / predict-many; `qaoa-predict`
    /// persists the result as a `QMODEL1` artifact so serving sessions skip
    /// it entirely.
    ///
    /// # Panics
    ///
    /// Panics if training fails (binaries have no recovery path).
    #[must_use]
    pub fn train_predictor(&self) -> qaoa::ParameterPredictor {
        let corpus = self.corpus();
        eprintln!(
            "# training {} predictor (depths 1..={})...",
            ml::ModelKind::Gpr,
            corpus.max_depth()
        );
        // lint:allow(no-panic-lib) same policy as corpus(): bench binaries have no recovery path from a failed training run
        qaoa::ParameterPredictor::train(ml::ModelKind::Gpr, &corpus).expect("predictor training")
    }
}

/// Renders a crude text histogram (used by the distribution figures).
#[must_use]
pub fn text_histogram(values: &[f64], bins: usize, width: usize) -> String {
    if values.is_empty() || bins == 0 {
        return String::from("(no data)\n");
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    // Bin geometry in f64: u32 -> f64 is exact, and four billion bins is
    // far past anything a text histogram renders.
    let to_f64 = |n: usize| f64::from(u32::try_from(n).unwrap_or(u32::MAX));
    let bins_f = to_f64(bins);
    let mut counts = vec![0usize; bins];
    for &v in values {
        // lint:allow(no-lossy-as) truncating to a bin index is the binning operation itself; the value is clamped to [0, bins-1] first
        let b = (((v - lo) / span) * bins_f).clamp(0.0, bins_f - 1.0) as usize;
        counts[b.min(bins - 1)] += 1;
    }
    let peak = *counts.iter().max().unwrap_or(&1);
    let mut out = String::new();
    for (b, &c) in counts.iter().enumerate() {
        let from = lo + span * to_f64(b) / bins_f;
        let to = lo + span * to_f64(b + 1) / bins_f;
        let bar = "#".repeat((c * width).div_ceil(peak.max(1)).min(width));
        out.push_str(&format!("[{from:8.3}, {to:8.3}) {c:5} {bar}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_is_paper_scale() {
        let c = RunConfig::parse(sv(&[])).unwrap();
        assert_eq!(c, RunConfig::paper());
        assert_eq!(c.graphs, 330);
        assert_eq!(c.restarts, 20);
    }

    #[test]
    fn quick_preset_and_overrides() {
        let c = RunConfig::parse(sv(&["--quick", "--graphs", "5", "--seed", "9"])).unwrap();
        assert!(c.quick);
        assert_eq!(c.graphs, 5);
        assert_eq!(c.seed, 9);
        assert_eq!(c.nodes, RunConfig::quick().nodes);
    }

    #[test]
    fn errors_are_reported() {
        assert!(RunConfig::parse(sv(&["--bogus"])).is_err());
        assert!(RunConfig::parse(sv(&["--nodes"])).is_err());
        assert!(RunConfig::parse(sv(&["--nodes", "zero"])).is_err());
        assert!(RunConfig::parse(sv(&["--graphs", "0"])).is_err());
    }

    #[test]
    fn threads_flag() {
        let c = RunConfig::parse(sv(&["--quick", "--threads", "3"])).unwrap();
        assert_eq!(c.threads, Some(3));
        assert_eq!(c.threads(), 3);
        assert_eq!(c.engine().threads(), 3);
        // Zero clamps to one worker.
        let c = RunConfig::parse(sv(&["--threads", "0"])).unwrap();
        assert_eq!(c.threads(), 1);
        // Default: machine parallelism, at least one.
        assert!(RunConfig::paper().threads() >= 1);
    }

    #[test]
    fn datagen_mapping() {
        let c = RunConfig::parse(sv(&["--quick"])).unwrap();
        let d = c.datagen();
        assert_eq!(d.n_graphs, c.graphs);
        assert_eq!(d.n_nodes, c.nodes);
        assert_eq!(d.max_depth, c.max_depth);
    }

    #[test]
    fn histogram_shape() {
        let h = text_histogram(&[0.0, 0.1, 0.9, 1.0], 2, 10);
        assert_eq!(h.lines().count(), 2);
        assert!(text_histogram(&[], 3, 10).contains("no data"));
    }
}
