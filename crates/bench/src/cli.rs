//! Command-line parsing and engine construction shared by every experiment
//! binary.
//!
//! Flag parsing — including `--threads N` — used to be duplicated across
//! the bench binaries; it lives here once. Binaries call
//! [`RunConfig::from_env`](crate::RunConfig::from_env) (which delegates
//! here) and [`pool`] / [`RunConfig::engine`](crate::RunConfig::engine) for
//! the worker pool sized by `--threads`.

use crate::RunConfig;

/// Parses `args` (without the program name) on top of the paper preset.
///
/// # Errors
///
/// Returns a human-readable message for unknown flags or bad values.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<RunConfig, String> {
    let args: Vec<String> = args.into_iter().collect();
    let mut config = if args.iter().any(|a| a == "--quick") {
        RunConfig::quick()
    } else {
        RunConfig::paper()
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--quick" => {
                i += 1;
            }
            "--nodes" | "--graphs" | "--restarts" | "--max-depth" | "--seed" | "--naive-starts"
            | "--threads" => {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{flag} needs a value"))?;
                let parsed: u64 = value.parse().map_err(|e| format!("{flag} {value}: {e}"))?;
                match flag {
                    "--nodes" => config.nodes = parsed as usize,
                    "--graphs" => config.graphs = parsed as usize,
                    "--restarts" => config.restarts = parsed as usize,
                    "--max-depth" => config.max_depth = parsed as usize,
                    "--naive-starts" => config.naive_starts = Some(parsed as usize),
                    "--threads" => config.threads = Some((parsed as usize).max(1)),
                    _ => config.seed = parsed,
                }
                i += 2;
            }
            "--help" | "-h" => return Err("help requested".into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if config.nodes < 2 || config.graphs == 0 || config.restarts == 0 || config.max_depth == 0 {
        return Err("nodes >= 2, graphs/restarts/max-depth >= 1 required".into());
    }
    Ok(config)
}

/// Parses the real process arguments, exiting with a usage message on
/// error.
#[must_use]
pub fn from_env() -> RunConfig {
    match parse_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: [--quick] [--nodes N] [--graphs N] [--restarts N] [--max-depth N] [--seed N] [--naive-starts N] [--threads N]"
            );
            std::process::exit(2);
        }
    }
}

/// The worker pool sized by `--threads` (default: all cores) — the one
/// construction every engine-parallel binary shares.
#[must_use]
pub fn pool(config: &RunConfig) -> engine::Pool {
    engine::Pool::new(config.threads())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn threads_flag_parses_and_clamps() {
        let c = parse_args(args(&["--threads", "4"])).unwrap();
        assert_eq!(c.threads, Some(4));
        assert_eq!(c.threads(), 4);
        // 0 clamps to 1 rather than erroring.
        let c = parse_args(args(&["--threads", "0"])).unwrap();
        assert_eq!(c.threads, Some(1));
        assert!(parse_args(args(&["--threads"])).is_err());
    }

    #[test]
    fn pool_matches_config_threads() {
        let c = parse_args(args(&["--quick", "--threads", "3"])).unwrap();
        assert_eq!(pool(&c).threads(), 3);
    }

    #[test]
    fn quick_preset_and_overrides() {
        let c = parse_args(args(&["--quick", "--nodes", "7", "--seed", "9"])).unwrap();
        assert!(c.quick);
        assert_eq!(c.nodes, 7);
        assert_eq!(c.seed, 9);
        assert!(parse_args(args(&["--bogus"])).is_err());
    }
}
