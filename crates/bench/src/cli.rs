//! Command-line parsing and engine construction shared by every experiment
//! binary.
//!
//! Flag parsing — including `--threads N` and `--cache-file PATH` — used to
//! be duplicated across the bench binaries; it lives here once. Binaries
//! call [`RunConfig::from_env`](crate::RunConfig::from_env) (which
//! delegates here) and [`pool`] / [`RunConfig::engine`](crate::RunConfig::engine)
//! for the worker pool sized by `--threads`.

use std::path::PathBuf;

use crate::{RunConfig, WorkerMode};

pub mod scenario;

/// Usage text shared by `--help` (stdout, exit 0) and the error path
/// (stderr, exit 2).
pub const USAGE: &str = "\
usage: [--quick] [--nodes N] [--graphs N] [--restarts N] [--max-depth N]
       [--seed N] [--naive-starts N] [--threads N] [--shots N]
       [--noise P1,P2] [--cache-file PATH] [--model PATH] [--shards K]
       [--out PATH] [--workers MODE] [--worker-cmd CMD] [--timeout-secs N]
       [--kill-worker W] [--help]

  --quick            CI-scale preset (small ensemble, shallow depths)
  --nodes N          nodes per graph            (paper: 8)
  --graphs N         ensemble size              (paper: 330)
  --restarts N       random inits per instance  (paper: 20)
  --max-depth N      corpus depth               (paper: 6)
  --seed N           RNG seed                   (default: 2020)
  --naive-starts N   naive-protocol starts      (default: --restarts)
  --threads N        engine worker count        (default: all cores)
  --shots N          evaluate sampled <C> from N measurement shots per
                     objective call (SPSA-optimized, seed-deterministic)
                     instead of the exact expectation
  --noise P1,P2      evaluate under depolarizing gate noise: P1 after
                     one-qubit gates, P2 after two-qubit gates (density-
                     matrix path); mutually exclusive with --shots
  --cache-file PATH  persistent depth-1 optimum cache shared across runs
                     and processes (corrupt/stale files regenerate). Note:
                     also disables the whole-corpus TSV cache, so depth >= 2
                     cells re-solve every run; only depth-1 is persisted
  --model PATH       trained QMODEL1 predictor artifact shared across runs
                     and processes (corrupt/stale files retrain).
                     qaoa-predict trains and serves it; qaoa-serve loads it
                     to answer PREDICT requests in the same session as JOBs
  --shards K         split corpus generation into K contiguous graph-index
                     ranges, one worker per range (qaoa-shard; default: 1;
                     output is bit-identical at any K)
  --out PATH         write the merged corpus TSV to PATH instead of stdout
                     (qaoa-shard)
  --workers MODE     qaoa-shard worker mode (default: local):
                       local       in-process ranges, no wire protocol
                       loopback:K  K in-process wire workers (streaming
                                   coordinator, reference transport)
                       spawn:K     K spawned worker subprocesses over
                                   stdin/stdout (failover re-tasking)
  --worker-cmd CMD   spawn-mode worker command, whitespace-split (default:
                     the qaoa-serve binary next to this executable);
                     --threads/--seed and a per-worker --cache-file are
                     appended automatically
  --timeout-secs N   declare a silent wire worker dead after N seconds and
                     re-task its range (default: 30)
  --kill-worker W    fault injection: kill wire worker W after its first
                     delivered line; the run must still complete
                     bit-identically on the survivors (CI)
  --help, -h         print this help and exit";

/// What the argument list asked for: a run, or just the usage text.
#[derive(Debug, Clone, PartialEq)]
pub enum Parsed {
    /// A fully-validated run configuration (boxed: [`RunConfig`] is much
    /// larger than the `Help` variant).
    Run(Box<RunConfig>),
    /// `--help`/`-h` was present; callers print [`USAGE`] and exit 0.
    Help,
}

/// Parses a flag's counted value: non-negative, and within `usize` on every
/// target (values are parsed as `u64` and range-checked rather than
/// silently truncated with `as` on 32-bit targets).
fn parse_count(flag: &str, value: &str) -> Result<usize, String> {
    let parsed: u64 = value.parse().map_err(|e| format!("{flag} {value}: {e}"))?;
    usize::try_from(parsed)
        .map_err(|_| format!("{flag} {value}: exceeds this target's usize range"))
}

/// Parses `args` (without the program name) on top of the paper preset.
///
/// # Errors
///
/// Returns a human-readable message for unknown flags or bad values.
/// `--help` is *not* an error — it parses to [`Parsed::Help`].
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Parsed, String> {
    let args: Vec<String> = args.into_iter().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(Parsed::Help);
    }
    let mut config = if args.iter().any(|a| a == "--quick") {
        RunConfig::quick()
    } else {
        RunConfig::paper()
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--quick" {
            i += 1;
            continue;
        }
        // The remaining flags take a value. Each gets an explicit arm — a
        // catch-all here once silently routed `--seed` (and would have
        // routed any future flag) into the wrong field. A following token
        // that is itself a flag is a missing value, not a value (else
        // `--cache-file --quick` would create a file named `--quick`).
        let value = || match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(v.as_str()),
            _ => Err(format!("{flag} needs a value")),
        };
        match flag {
            "--nodes" => config.nodes = parse_count(flag, value()?)?,
            "--graphs" => config.graphs = parse_count(flag, value()?)?,
            "--restarts" => config.restarts = parse_count(flag, value()?)?,
            "--max-depth" => config.max_depth = parse_count(flag, value()?)?,
            "--naive-starts" => config.naive_starts = Some(parse_count(flag, value()?)?),
            "--threads" => config.threads = Some(parse_count(flag, value()?)?.max(1)),
            "--shots" => config.shots = Some(scenario::parse_shots(value()?)?),
            "--noise" => config.noise = Some(scenario::parse_noise(value()?)?),
            "--seed" => {
                let v = value()?;
                config.seed = v.parse().map_err(|e| format!("{flag} {v}: {e}"))?;
            }
            "--cache-file" => config.cache_file = Some(PathBuf::from(value()?)),
            "--model" => config.model = Some(PathBuf::from(value()?)),
            "--shards" => config.shards = parse_count(flag, value()?)?.max(1),
            "--out" => config.out = Some(PathBuf::from(value()?)),
            "--workers" => config.workers = WorkerMode::parse(value()?)?,
            "--worker-cmd" => config.worker_cmd = Some(value()?.to_string()),
            "--timeout-secs" => {
                let v = value()?;
                config.timeout_secs = v.parse().map_err(|e| format!("{flag} {v}: {e}"))?;
            }
            "--kill-worker" => config.kill_worker = Some(parse_count(flag, value()?)?),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    if config.nodes < 2 || config.graphs == 0 || config.restarts == 0 || config.max_depth == 0 {
        return Err("nodes >= 2, graphs/restarts/max-depth >= 1 required".into());
    }
    // Reject contradictory scenario flags at parse time, not first use.
    scenario::resolve(config.shots, config.noise)?;
    Ok(Parsed::Run(Box::new(config)))
}

/// Parses the real process arguments: prints usage to stdout and exits 0 on
/// `--help`, exits 2 with the usage on stderr on errors.
#[must_use]
pub fn from_env() -> RunConfig {
    match parse_args(std::env::args().skip(1)) {
        Ok(Parsed::Run(config)) => *config,
        Ok(Parsed::Help) => {
            println!("{USAGE}");
            std::process::exit(0);
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

/// The worker pool sized by `--threads` (default: all cores) — the one
/// construction every engine-parallel binary shares.
#[must_use]
pub fn pool(config: &RunConfig) -> engine::Pool {
    engine::Pool::new(config.threads())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(ToString::to_string).collect()
    }

    fn run(s: &[&str]) -> RunConfig {
        match parse_args(args(s)).unwrap() {
            Parsed::Run(c) => *c,
            Parsed::Help => panic!("expected a run configuration"),
        }
    }

    #[test]
    fn help_is_not_an_error() {
        // `--help` used to route through the error path (stderr + exit 2).
        assert_eq!(parse_args(args(&["--help"])), Ok(Parsed::Help));
        assert_eq!(parse_args(args(&["-h"])), Ok(Parsed::Help));
        // Help wins even when combined with other flags — including ones
        // that would otherwise fail validation.
        assert_eq!(
            parse_args(args(&["--nodes", "0", "--help"])),
            Ok(Parsed::Help)
        );
        assert!(USAGE.contains("--cache-file"));
    }

    #[test]
    fn threads_flag_parses_and_clamps() {
        let c = run(&["--threads", "4"]);
        assert_eq!(c.threads, Some(4));
        assert_eq!(c.threads(), 4);
        // 0 clamps to 1 rather than erroring.
        let c = run(&["--threads", "0"]);
        assert_eq!(c.threads, Some(1));
        assert!(parse_args(args(&["--threads"])).is_err());
    }

    #[test]
    fn pool_matches_config_threads() {
        let c = run(&["--quick", "--threads", "3"]);
        assert_eq!(pool(&c).threads(), 3);
    }

    #[test]
    fn quick_preset_and_overrides() {
        let c = run(&["--quick", "--nodes", "7", "--seed", "9"]);
        assert!(c.quick);
        assert_eq!(c.nodes, 7);
        assert_eq!(c.seed, 9);
        // Unknown flags say so, with or without a trailing value.
        assert_eq!(
            parse_args(args(&["--bogus"])),
            Err("unknown flag --bogus".into())
        );
        assert_eq!(
            parse_args(args(&["--bogus", "3"])),
            Err("unknown flag --bogus".into())
        );
    }

    #[test]
    fn seed_has_an_explicit_arm_and_keeps_u64_range() {
        // Seeds above usize::MAX on 32-bit targets must survive: the seed
        // is u64 end to end, never squeezed through a count conversion.
        let c = run(&["--seed", "18446744073709551615"]);
        assert_eq!(c.seed, u64::MAX);
        assert!(parse_args(args(&["--seed", "not-a-number"])).is_err());
    }

    #[test]
    fn counted_flags_range_check_instead_of_truncating() {
        // On 64-bit hosts u64::MAX fits usize, so emulate the 32-bit
        // failure by checking the error message path with a value that
        // never parses as u64 at all, plus the range-check helper directly.
        assert!(parse_count("--graphs", "12").unwrap() == 12);
        assert!(parse_count("--graphs", "99999999999999999999").is_err());
        if usize::BITS < 64 {
            assert!(parse_count("--graphs", "4294967296").is_err());
        }
    }

    #[test]
    fn cache_file_flag() {
        let c = run(&["--quick", "--cache-file", "/tmp/l1.cache"]);
        assert_eq!(c.cache_file, Some(PathBuf::from("/tmp/l1.cache")));
        assert!(parse_args(args(&["--cache-file"])).is_err());
        assert_eq!(run(&["--quick"]).cache_file, None);
    }

    #[test]
    fn model_flag() {
        let c = run(&["--quick", "--model", "/tmp/model.qm"]);
        assert_eq!(c.model, Some(PathBuf::from("/tmp/model.qm")));
        assert!(parse_args(args(&["--model"])).is_err());
        assert!(parse_args(args(&["--model", "--quick"])).is_err());
        assert_eq!(run(&["--quick"]).model, None);
        assert!(USAGE.contains("--model"));
    }

    #[test]
    fn shards_and_out_flags() {
        let c = run(&["--quick", "--shards", "3", "--out", "/tmp/corpus.tsv"]);
        assert_eq!(c.shards, 3);
        assert_eq!(c.out, Some(PathBuf::from("/tmp/corpus.tsv")));
        // Defaults: one shard (unsharded), stdout.
        assert_eq!(run(&["--quick"]).shards, 1);
        assert_eq!(run(&["--quick"]).out, None);
        // 0 shards clamps to 1 (like --threads 0).
        assert_eq!(run(&["--quick", "--shards", "0"]).shards, 1);
        assert!(parse_args(args(&["--shards"])).is_err());
        assert!(parse_args(args(&["--out", "--quick"])).is_err());
        assert!(USAGE.contains("--shards"));
    }

    #[test]
    fn worker_mode_flags() {
        use crate::WorkerMode;
        // Default: in-process local ranges, no wire protocol.
        let c = run(&["--quick"]);
        assert_eq!(c.workers, WorkerMode::Local);
        assert_eq!(c.worker_cmd, None);
        assert_eq!(c.timeout_secs, 30);
        assert_eq!(c.kill_worker, None);

        let c = run(&[
            "--quick",
            "--workers",
            "spawn:3",
            "--worker-cmd",
            "target/release/qaoa-serve --quick",
            "--timeout-secs",
            "5",
            "--kill-worker",
            "1",
        ]);
        assert_eq!(c.workers, WorkerMode::Spawn(3));
        assert_eq!(
            c.worker_cmd.as_deref(),
            Some("target/release/qaoa-serve --quick")
        );
        assert_eq!(c.timeout_secs, 5);
        assert_eq!(c.kill_worker, Some(1));

        assert_eq!(
            run(&["--workers", "loopback:2"]).workers,
            WorkerMode::Loopback(2)
        );
        assert_eq!(run(&["--workers", "local"]).workers, WorkerMode::Local);
        // Malformed modes and counts are errors, not silent defaults.
        assert!(parse_args(args(&["--workers", "remote:2"])).is_err());
        assert!(parse_args(args(&["--workers", "spawn:0"])).is_err());
        assert!(parse_args(args(&["--workers", "spawn:many"])).is_err());
        assert!(parse_args(args(&["--workers"])).is_err());
        assert!(parse_args(args(&["--timeout-secs", "soon"])).is_err());
        assert!(USAGE.contains("--workers"));
        assert!(USAGE.contains("--kill-worker"));
    }

    #[test]
    fn value_flags_reject_a_following_flag_as_their_value() {
        // `--cache-file --quick` once silently created a file named
        // `--quick`; `--nodes --seed` failed with a confusing parse error.
        assert_eq!(
            parse_args(args(&["--cache-file", "--quick"])),
            Err("--cache-file needs a value".into())
        );
        assert_eq!(
            parse_args(args(&["--nodes", "--seed"])),
            Err("--nodes needs a value".into())
        );
        assert_eq!(
            parse_args(args(&["--quick", "--threads", "--graphs", "4"])),
            Err("--threads needs a value".into())
        );
    }
}
