//! §III-C: comparison of the four regression families (GPR, LM, RTREE,
//! RSVM) as parameter predictors, on MSE / RMSE / MAE / R² / adjusted R²
//! over the test graphs.
//!
//! Shape to reproduce: GPR wins on every metric.
//!
//! Run: `cargo run --release -p bench --bin model_compare [-- --quick]`

use bench::RunConfig;
use ml::metrics::{adjusted_r2, mae, mean, mse, r2, rmse};
use ml::ModelKind;
use qaoa::ParameterPredictor;

fn main() {
    let config = RunConfig::from_env();
    let dataset = config.corpus();
    let (train, test) = dataset.split_by_graph(0.2);

    println!(
        "# Model comparison on {} test graphs x depths 2..={}",
        test.graphs().len(),
        config.max_depth
    );
    println!(
        "{:<7} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "model", "MSE", "RMSE", "MAE", "R2", "adjR2"
    );

    // The paper's four families first, then the extension models
    // (Ridge / kNN / RandomForest) for the "stronger baseline" ablation.
    for kind in ModelKind::EXTENDED {
        let predictor = match ParameterPredictor::train(kind, &train) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{kind}: training failed: {e}");
                continue;
            }
        };
        // Pool truth/prediction pairs over all target depths and stages.
        let mut truth = Vec::new();
        let mut preds = Vec::new();
        for (gid, _) in test.graphs().iter().enumerate() {
            let Some(d1) = test.record(gid, 1) else {
                continue;
            };
            for pt in 2..=config.max_depth {
                let Some(dt) = test.record(gid, pt) else {
                    continue;
                };
                let predicted = predictor
                    .predict(d1.gammas[0], d1.betas[0], pt)
                    .expect("prediction in range");
                for (p, t) in predicted.iter().zip(dt.gammas.iter().chain(&dt.betas)) {
                    preds.push(*p);
                    truth.push(*t);
                }
            }
        }
        let scores = (
            mse(&truth, &preds).unwrap_or(f64::NAN),
            rmse(&truth, &preds).unwrap_or(f64::NAN),
            mae(&truth, &preds).unwrap_or(f64::NAN),
            r2(&truth, &preds).unwrap_or(f64::NAN),
            adjusted_r2(&truth, &preds, 3).unwrap_or(f64::NAN),
        );
        println!(
            "{:<7} {:>10.4} {:>10.4} {:>10.4} {:>8.3} {:>8.3}",
            kind.abbreviation(),
            scores.0,
            scores.1,
            scores.2,
            scores.3,
            scores.4
        );
    }
    println!("\n# Expected shape: GPR lowest error / highest R2 (the paper picked GPR).");
    let _ = mean(&[0.0]); // keep metric module fully linked in quick builds
}
