//! Fig. 6: distribution of GPR prediction errors (absolute % deviation from
//! the true optimal parameters) on the test graphs, per target depth
//! p = 2..5.
//!
//! Paper values: μ = 5.7 / 8.1 / 9.4 / 10.2 % for p = 2 / 3 / 4 / 5 — the
//! shape to reproduce is the **growth of the error with target depth**
//! (features correlate less with deeper-stage parameters).
//!
//! Run: `cargo run --release -p bench --bin fig6 [-- --quick]`

use bench::{text_histogram, RunConfig};
use ml::metrics::{mean, std_dev};
use ml::ModelKind;
use qaoa::ParameterPredictor;

fn main() {
    let config = RunConfig::from_env();
    let dataset = config.corpus();
    let (train, test) = dataset.split_by_graph(0.2);
    eprintln!(
        "# training GPR on {} graphs, evaluating on {}",
        train.graphs().len(),
        test.graphs().len()
    );
    let predictor = ParameterPredictor::train(ModelKind::Gpr, &train).expect("GPR training");

    let depths: Vec<usize> = (2..=config.max_depth.min(5)).collect();
    println!("# Fig 6: |prediction error| (%) per target depth, GPR, test set");
    let mut mus = Vec::new();
    for &pt in &depths {
        let mut errors = Vec::new();
        for (gid, _) in test.graphs().iter().enumerate() {
            let (Some(d1), Some(dt)) = (test.record(gid, 1), test.record(gid, pt)) else {
                continue;
            };
            let predicted = predictor
                .predict(d1.gammas[0], d1.betas[0], pt)
                .expect("prediction in range");
            let truth: Vec<f64> = dt.gammas.iter().chain(&dt.betas).copied().collect();
            for (p, t) in predicted.iter().zip(&truth) {
                if t.abs() > 1e-6 {
                    errors.push(100.0 * ((p - t) / t).abs());
                }
            }
        }
        let mu = mean(&errors);
        mus.push(mu);
        println!(
            "\n## target depth p = {pt}: mu = {mu:.1}%, sigma = {:.1}% ({} samples)",
            std_dev(&errors),
            errors.len()
        );
        print!("{}", text_histogram(&errors, 12, 40));
    }
    println!("\n# Expected shape: mu grows with target depth (paper: 5.7 -> 8.1 -> 9.4 -> 10.2).");
    println!(
        "# measured mu sequence: {:?}",
        mus.iter()
            .map(|m| (m * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
}
