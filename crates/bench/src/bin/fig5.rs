//! Fig. 5: Pearson correlations between the two-level predictors
//! (γ₁OPT(p=1), β₁OPT(p=1), depth p) and the responses γᵢOPT / βᵢOPT over
//! the full corpus, plus the γ₁–β₁ correlation the paper quotes (R ≈ 0.92).
//!
//! Shapes to reproduce: R(γᵢ, p) < 0 and weakening with i;
//! R(βᵢ, p) > 0; response correlations with the depth-1 features positive
//! and weakening with i.
//!
//! Run: `cargo run --release -p bench --bin fig5 [-- --quick]`

use bench::RunConfig;
use ml::metrics::pearson;
use qaoa::features;

fn main() {
    let config = RunConfig::from_env();
    let dataset = config.corpus();
    println!(
        "# Fig 5: predictor/response correlations over {} records ({} optimal parameters)",
        dataset.records().len(),
        dataset.n_parameters()
    );

    // The paper's headline: γ₁OPT(p=1) and β₁OPT(p=1) correlate strongly.
    let d1 = dataset.records_at_depth(1);
    let g1: Vec<f64> = d1.iter().map(|r| r.gammas[0]).collect();
    let b1: Vec<f64> = d1.iter().map(|r| r.betas[0]).collect();
    println!(
        "R(gamma1(p=1), beta1(p=1)) = {:+.3}   (paper: 0.92)",
        pearson(&g1, &b1).unwrap_or(0.0)
    );

    println!(
        "{:<9} {:>5} {:>12} {:>12} {:>10}",
        "response", "stage", "R(gamma1)", "R(beta1)", "R(p)"
    );
    let rows = features::predictor_response_correlations(&dataset).expect("correlation analysis");
    for (kind, stage, r_g1, r_b1, r_p) in rows {
        let name = match kind {
            features::ParamKind::Gamma => "gamma_i",
            features::ParamKind::Beta => "beta_i",
        };
        println!("{name:<9} {stage:>5} {r_g1:>12.3} {r_b1:>12.3} {r_p:>10.3}");
    }
    println!("# Expected shape: R(gamma_i, p) negative and |R| shrinking with i;");
    println!("#                 R(beta_i, p) positive; feature correlations fade with i.");
}
