//! Extension study: Table I widened to six optimizers.
//!
//! The paper claims its approach is optimizer-agnostic and demonstrates it
//! on four SciPy methods. This study adds Powell (derivative-free
//! direction-set) and SPSA (two-evaluations-per-iteration stochastic
//! approximation, the standard hardware-loop optimizer) and reruns the
//! naive-vs-two-level comparison, checking that the function-call reduction
//! holds across the wider spectrum.
//!
//! Run: `cargo run --release -p bench --bin optimizer_zoo [-- --quick] [-- --threads N]`

use bench::RunConfig;
use ml::ModelKind;
use optimize::extended_optimizers;
use qaoa::evaluation::{self, EvaluationConfig};
use qaoa::ParameterPredictor;

fn main() {
    let config = RunConfig::from_env();
    let dataset = config.corpus();
    let (train, test) = dataset.split_by_graph(0.2);
    let predictor = ParameterPredictor::train(ModelKind::Gpr, &train).expect("GPR training");
    let n_eval = test.graphs().len().min(if config.quick { 10 } else { 48 });
    let graphs = &test.graphs()[..n_eval];

    let mut eval_config = if config.quick {
        EvaluationConfig::quick()
    } else {
        EvaluationConfig::paper()
    };
    eval_config.seed = config.seed;
    eval_config.depths.retain(|&d| d <= config.max_depth);
    if let Some(n) = config.naive_starts {
        eval_config.naive_starts = n;
    }

    let pool = bench::cli::pool(&config);
    println!(
        "# Optimizer zoo: naive vs two-level on {n_eval} test graphs, depths {:?}, {} threads",
        eval_config.depths,
        pool.threads()
    );
    println!("{}", evaluation::table_header());
    let rows = engine::compare::compare(
        graphs,
        &extended_optimizers(),
        &predictor,
        &eval_config,
        &pool,
    )
    .expect("comparison");
    let mut reductions = Vec::new();
    let mut spsa_ar_gain = Vec::new();
    for row in &rows {
        println!("{}", row.to_table_line());
        // SPSA runs to a fixed iteration budget (its ftol criterion rarely
        // fires), so FC reduction is not meaningful for it; its benefit
        // shows up as a higher AR at equal budget instead.
        if row.optimizer == "SPSA" {
            spsa_ar_gain.push(row.ml_ar_mean - row.naive_ar_mean);
        } else {
            reductions.push(row.fc_reduction_percent());
        }
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    let max = reductions.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    println!(
        "\naverage FC reduction {avg:.1}% (paper: 44.9%), max {max:.1}% (paper: 65.7%) \
         [convergence-terminated optimizers]"
    );
    if !spsa_ar_gain.is_empty() {
        let ar = spsa_ar_gain.iter().sum::<f64>() / spsa_ar_gain.len() as f64;
        println!("SPSA (fixed budget): ML init improves AR by {ar:+.4} on average at equal cost");
    }
}
