//! `qaoa-serve` — the engine's job-server front end.
//!
//! Reads `QW1 JOB ...` lines from stdin, executes them on the parallel
//! engine with deterministic seeding, and streams `QW1 OUTCOME ...` lines
//! back on stdout **in submission order** (plus one `QW1 REPORT ...` line
//! per batch). A `QW1 RUN -` line flushes the pending batch; end of input
//! flushes implicitly. Malformed lines answer `QW1 ERR ...` without
//! killing the loop. See the README's "Job server & persistent cache"
//! section for the wire grammar.
//!
//! With `--cache-file PATH`, the depth-1 optimum cache is pre-warmed from
//! `PATH` at startup and saved back (merged) at shutdown, so repeated
//! server sessions — and the corpus/Table-I drivers sharing the file —
//! never re-solve a known `(canonical graph class, restarts)` pair.
//!
//! With `--model PATH`, a trained `QMODEL1` predictor artifact (written by
//! `qaoa-predict train`) is loaded at startup and `QW1 PREDICT ...` lines
//! are answered with tiered `QW1 PREDICTED ...` replies. A missing or
//! discarded model is a stderr warning, not fatal: the server degrades to
//! answering `PREDICT` with `ERR` (this bin never trains — that is
//! `qaoa-predict`'s job).
//!
//! Run:
//! `printf 'QW1 JOB 1 3 5 0-1,1-2,2-3,3-4,4-0\n' | cargo run --release -p bench --bin qaoa-serve -- --threads 4`

use engine::BatchConfig;
use optimize::Lbfgsb;

use bench::RunConfig;

fn main() {
    let config = RunConfig::from_env();
    let engine = config.engine();
    let batch_config = BatchConfig {
        master_seed: config.seed,
        options: Default::default(),
        use_cache: true,
        scenario: qaoa::Scenario::Exact,
    };
    let model =
        config
            .model
            .as_ref()
            .and_then(|path| match engine::model::load(path, config.seed) {
                engine::ModelLoad::Loaded(p) => {
                    eprintln!(
                        "# model {}: loaded {} model (max depth {})",
                        path.display(),
                        p.kind(),
                        p.max_depth()
                    );
                    Some(p)
                }
                engine::ModelLoad::Missing => {
                    eprintln!(
                        "# warning: model {} not found; PREDICT answers ERR \
                     (train one with qaoa-predict train --out)",
                        path.display()
                    );
                    None
                }
                engine::ModelLoad::Discarded(why) => {
                    eprintln!(
                        "# warning: model {} discarded ({why}); PREDICT answers ERR \
                     (retrain with qaoa-predict train --out)",
                        path.display()
                    );
                    None
                }
            });
    eprintln!(
        "# qaoa-serve: {} threads, master seed {}; reading QW1 lines from stdin",
        engine.threads(),
        config.seed
    );

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let summary = match engine::server::serve_with_model(
        stdin.lock(),
        stdout.lock(),
        &engine,
        &Lbfgsb::default(),
        &batch_config,
        model.as_ref(),
    ) {
        Ok(summary) => summary,
        Err(e) => {
            // Transport death (closed pipe etc.) — still try to keep the
            // cache entries computed so far.
            config.persist_cache(&engine);
            eprintln!("error: transport failed: {e}");
            std::process::exit(1);
        }
    };
    config.persist_cache(&engine);
    eprintln!("# qaoa-serve: {summary}");
    if summary.predicts > 0 {
        for line in summary.predict_report().lines() {
            eprintln!("# {line}");
        }
    }
}
