//! Extension study: the two-level flow under measurement shot noise.
//!
//! The paper's evaluation is noise-free (exact expectations). On hardware,
//! each QC call estimates `⟨C⟩` from a finite shot budget; this study
//! checks that the ML initialization's advantage survives that regime —
//! the setting the paper's run-time argument is ultimately about.
//!
//! Protocol: both flows run as ordinary engine workloads under a
//! [`qaoa::Scenario::Sampled`] objective — sampled `⟨C⟩` with a
//! deterministic per-evaluation shot RNG, optimized by seeded SPSA (the
//! scenario's noise-appropriate optimizer; the gradient-based default is
//! meaningless on a stochastic objective). Quality is judged on the exact
//! expectation at the returned point. Rows are bit-identical at any
//! `--threads` value.
//!
//! Run: `cargo run --release -p bench --bin shot_noise_study [-- --quick] [-- --threads N]`

use bench::RunConfig;
use graphs::Graph;
use ml::metrics::mean;
use ml::ModelKind;
use optimize::{NelderMead, Options};
use qaoa::{ParameterPredictor, Scenario};

fn main() {
    let config = RunConfig::from_env();
    let dataset = config.corpus();
    let (train, test) = dataset.split_by_graph(0.2);
    let predictor = ParameterPredictor::train(ModelKind::Gpr, &train).expect("GPR training");
    let target_depth = config.max_depth.min(3);
    // The sampled scenario substitutes its own seeded SPSA internally; the
    // optimizer below only drives any exact fallback cells.
    let optimizer = NelderMead::default();
    // Cap the noisy loops: with stochastic objectives ftol never fires, so
    // the run length is governed by the iteration budget.
    let options = Options::default().with_max_iters(150).with_ftol(1e-4);
    let n_eval = test.graphs().len().min(if config.quick { 8 } else { 24 });
    let graphs: Vec<Graph> = test.graphs().iter().take(n_eval).cloned().collect();
    let pool = bench::cli::pool(&config);
    let to_f64 = |n: usize| f64::from(u32::try_from(n).unwrap_or(u32::MAX));

    println!(
        "# Shot-noise study: SPSA on sampled <C>, target depth {target_depth}, {n_eval} graphs, \
         {} threads",
        pool.threads()
    );
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10}",
        "shots", "naiveAR", "mlAR", "naiveFC", "mlFC"
    );
    for shots in [64u32, 256, 1024, 4096] {
        let scenario = Scenario::Sampled { shots };
        let seed = config.seed ^ (u64::from(shots) << 20);
        let naive = engine::compare::naive_protocol(
            &graphs,
            target_depth,
            &optimizer,
            1,
            &options,
            seed,
            &scenario,
            &pool,
        )
        .expect("sampled naive protocol");
        let ml = engine::compare::two_level_protocol(
            &graphs,
            target_depth,
            &optimizer,
            &predictor,
            1,
            &options,
            seed ^ 0xA11,
            &scenario,
            &pool,
        )
        .expect("sampled two-level protocol");

        println!(
            "{:>8} {:>10.4} {:>10.4} {:>10.1} {:>10.1}",
            shots,
            mean(&naive.iter().map(|s| s.0).collect::<Vec<_>>()),
            mean(&ml.iter().map(|s| s.0).collect::<Vec<_>>()),
            mean(&naive.iter().map(|s| to_f64(s.1)).collect::<Vec<_>>()),
            mean(&ml.iter().map(|s| to_f64(s.1)).collect::<Vec<_>>())
        );
    }
    println!("\n# Expected shape: ML AR advantage persists at every shot budget, and both");
    println!("# improve with shots — the warm start matters most when calls are expensive.");
}
