//! Extension study: the two-level flow under measurement shot noise.
//!
//! The paper's evaluation is noise-free (exact expectations). On hardware,
//! each QC call estimates `⟨C⟩` from a finite shot budget; this study
//! checks that the ML initialization's advantage survives that regime —
//! the setting the paper's run-time argument is ultimately about.
//!
//! Protocol: Nelder-Mead (noise-tolerant) at target depth 3, naive random
//! init vs two-level ML init, objective estimated with N shots per call.
//!
//! Run: `cargo run --release -p bench --bin shot_noise_study [-- --quick]`

use bench::RunConfig;
use ml::metrics::mean;
use ml::ModelKind;
use optimize::{NelderMead, Optimizer, Options};
use qaoa::noise::ShotEstimator;
use qaoa::{MaxCutProblem, ParameterPredictor, QaoaAnsatz, QaoaInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config = RunConfig::from_env();
    let dataset = config.corpus();
    let (train, test) = dataset.split_by_graph(0.2);
    let predictor = ParameterPredictor::train(ModelKind::Gpr, &train).expect("GPR training");
    let target_depth = config.max_depth.min(3);
    let optimizer = NelderMead::default();
    // Cap the noisy loops: with stochastic objectives ftol never fires, so
    // the run length is governed by the iteration budget.
    let options = Options::default().with_max_iters(150).with_ftol(1e-4);
    let n_eval = test.graphs().len().min(24);

    println!("# Shot-noise study: Nelder-Mead, target depth {target_depth}, {n_eval} graphs");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10}",
        "shots", "naiveAR", "mlAR", "naiveFC", "mlFC"
    );
    for shots in [64usize, 256, 1024, 4096] {
        let mut naive_ar = Vec::new();
        let mut ml_ar = Vec::new();
        let mut naive_fc = Vec::new();
        let mut ml_fc = Vec::new();
        for (gid, graph) in test.graphs().iter().take(n_eval).enumerate() {
            let problem = MaxCutProblem::new(graph).expect("non-empty graph");
            let seed = config.seed ^ ((shots as u64) << 20) ^ gid as u64;

            // Naive: noisy optimization from a random start.
            let ansatz = QaoaAnsatz::new(problem.clone(), target_depth).expect("valid depth");
            let estimator = ShotEstimator::new(ansatz, shots, StdRng::seed_from_u64(seed));
            let objective = |x: &[f64]| -estimator.estimate(x).expect("valid params");
            let bounds = qaoa::parameter_bounds(target_depth).expect("valid depth");
            let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
            let start = bounds.sample(&mut rng);
            let naive = optimizer
                .minimize(&objective, &start, &bounds, &options)
                .expect("noisy optimization");
            // Quality judged on the exact expectation at the found point.
            naive_ar.push(
                problem.approximation_ratio(
                    estimator
                        .ansatz()
                        .expectation(&naive.x)
                        .expect("valid params"),
                ),
            );
            naive_fc.push(naive.n_calls as f64);

            // Two-level: noisy level-1, ML init, noisy level-2.
            let l1_instance = QaoaInstance::new(problem.clone(), 1).expect("valid depth");
            let l1_ansatz = l1_instance.ansatz().clone();
            let l1_estimator =
                ShotEstimator::new(l1_ansatz, shots, StdRng::seed_from_u64(seed ^ 0xBEEF));
            let l1_objective = |x: &[f64]| -l1_estimator.estimate(x).expect("valid params");
            let l1_bounds = qaoa::parameter_bounds(1).expect("valid depth");
            let l1_start = l1_bounds.sample(&mut rng);
            let l1 = optimizer
                .minimize(&l1_objective, &l1_start, &l1_bounds, &options)
                .expect("noisy level-1");
            let l1_canon = qaoa::canonical::canonicalize_packed(&l1.x);
            let init = predictor
                .predict(l1_canon[0], l1_canon[1], target_depth)
                .expect("prediction");
            let l2 = optimizer
                .minimize(&objective, &init, &bounds, &options)
                .expect("noisy level-2");
            ml_ar.push(
                problem.approximation_ratio(
                    estimator.ansatz().expectation(&l2.x).expect("valid params"),
                ),
            );
            ml_fc.push((l1.n_calls + l2.n_calls) as f64);
        }
        println!(
            "{:>8} {:>10.4} {:>10.4} {:>10.1} {:>10.1}",
            shots,
            mean(&naive_ar),
            mean(&ml_ar),
            mean(&naive_fc),
            mean(&ml_fc)
        );
    }
    println!("\n# Expected shape: ML AR advantage persists at every shot budget, and both");
    println!("# improve with shots — the warm start matters most when calls are expensive.");
}
