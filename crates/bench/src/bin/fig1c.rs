//! Fig. 1(c): approximation-ratio and run-time (QC calls) distributions for
//! QAOA MaxCut on four 3-regular 8-node graphs, depths p = 1..5, random
//! initialization with L-BFGS-B.
//!
//! The paper's shape to reproduce: AR climbs with depth while FC grows —
//! depth buys quality but costs loop iterations.
//!
//! Run: `cargo run --release -p bench --bin fig1c [-- --quick]`

use bench::RunConfig;
use graphs::generators;
use ml::metrics::{mean, std_dev};
use optimize::{Lbfgsb, Options};
use qaoa::{MaxCutProblem, QaoaInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config = RunConfig::from_env();
    let n_graphs = 4usize;
    let max_depth = if config.quick { 3 } else { 5 };
    let restarts = config.restarts.min(if config.quick { 3 } else { 20 });
    let nodes = config.nodes.max(4);
    let degree = 3.min(nodes - 1);

    let mut rng = StdRng::seed_from_u64(config.seed);
    let graphs: Vec<_> = (0..n_graphs)
        .map(|_| generators::random_regular(nodes, degree, &mut rng).expect("valid regular params"))
        .collect();

    println!(
        "# Fig 1(c): AR and FC vs depth, {n_graphs} random {degree}-regular {nodes}-node graphs"
    );
    println!("# {restarts} random inits per (graph, depth), L-BFGS-B, ftol 1e-6");
    println!(
        "{:<6} {:>3} {:>9} {:>9} {:>10} {:>10}",
        "graph", "p", "meanAR", "sdAR", "meanFC", "sdFC"
    );

    let optimizer = Lbfgsb::default();
    let options = Options::default();
    for (gi, graph) in graphs.iter().enumerate() {
        let problem = MaxCutProblem::new(graph).expect("non-empty regular graph");
        for p in 1..=max_depth {
            let instance = QaoaInstance::new(problem.clone(), p).expect("valid depth");
            let bounds = qaoa::parameter_bounds(p).expect("valid depth");
            let mut ars = Vec::with_capacity(restarts);
            let mut fcs = Vec::with_capacity(restarts);
            for _ in 0..restarts {
                let start = bounds.sample(&mut rng);
                let out = instance
                    .optimize(&optimizer, &start, &options)
                    .expect("optimization runs");
                ars.push(out.approximation_ratio);
                fcs.push(out.function_calls as f64);
            }
            println!(
                "G{:<5} {:>3} {:>9.4} {:>9.4} {:>10.1} {:>10.1}",
                gi + 1,
                p,
                mean(&ars),
                std_dev(&ars),
                mean(&fcs),
                std_dev(&fcs)
            );
        }
    }
    println!("# Expected shape: mean AR increases with p; mean FC increases with p.");
}
