//! Extension study: ML initialization vs the canonical non-learned
//! warm-start heuristics.
//!
//! The paper compares its two-level flow only against random initialization
//! (Table I). The literature it cites (\[5\], Zhou et al.) offers stronger
//! baselines: the INTERP and FOURIER incremental strategies and the
//! adiabatic linear ramp. This binary runs all five initialization
//! strategies on the same test graphs with identical function-call
//! accounting, answering "does the ML predictor beat the best non-learned
//! warm starts, not just random ones?"
//!
//! Strategies, per test graph and target depth `pt`:
//!
//! * **random** — best-effort mean over `restarts` random inits at `pt`,
//! * **ramp** — one optimization from the linear-ramp (TQA) start,
//! * **interp** — incremental re-optimization p = 1…pt (Zhou et al.),
//! * **fourier** — incremental coefficient-space optimization (Zhou et al.),
//! * **two-level** — the paper's flow: p = 1 optimum → GPR → pt init.
//!
//! Run: `cargo run --release -p bench --bin baseline_compare [-- --quick] [-- --threads N]`

use bench::RunConfig;
use ml::metrics::mean;
use ml::ModelKind;
use optimize::{Lbfgsb, Options};
use qaoa::warmstart::{linear_ramp, FourierFlow, InterpFlow};
use qaoa::{MaxCutProblem, ParameterPredictor, QaoaInstance, TwoLevelConfig, TwoLevelFlow};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct StrategyStats {
    name: &'static str,
    ar: Vec<f64>,
    fc: Vec<f64>,
}

impl StrategyStats {
    fn new(name: &'static str) -> Self {
        Self {
            name,
            ar: Vec::new(),
            fc: Vec::new(),
        }
    }

    fn push(&mut self, ar: f64, fc: usize) {
        self.ar.push(ar);
        self.fc.push(fc as f64);
    }
}

fn main() {
    let config = RunConfig::from_env();
    let dataset = config.corpus();
    let (train, test) = dataset.split_by_graph(0.2);
    let predictor = ParameterPredictor::train(ModelKind::Gpr, &train).expect("GPR training");
    let optimizer = Lbfgsb::default();
    let options = Options::default();
    let n_eval = test.graphs().len().min(if config.quick { 12 } else { 64 });
    let depths: Vec<usize> = (2..=config.max_depth.min(5)).collect();
    let pool = bench::cli::pool(&config);

    println!(
        "# Baseline comparison: L-BFGS-B, {n_eval} test graphs, \
         random uses {} starts, {} threads",
        config.naive_starts.unwrap_or(config.restarts),
        pool.threads()
    );
    println!(
        "{:>3} {:>10} {:>9} {:>9} {:>9}",
        "p", "strategy", "meanAR", "meanFC", "red% vs random"
    );

    for &depth in &depths {
        let mut strategies = vec![
            StrategyStats::new("random"),
            StrategyStats::new("ramp"),
            StrategyStats::new("interp"),
            StrategyStats::new("fourier"),
            StrategyStats::new("two-level"),
        ];

        // Random baseline via the shared (engine-parallel) Table-I protocol.
        let naive = engine::compare::naive_protocol(
            &test.graphs()[..n_eval],
            depth,
            &optimizer,
            config.naive_starts.unwrap_or(config.restarts),
            &options,
            config.seed,
            &qaoa::Scenario::Exact,
            &pool,
        )
        .expect("naive protocol");
        for (ar, fc) in naive {
            strategies[0].push(ar, fc);
        }

        // The four warm-start strategies, one engine job per graph. Seeds
        // are derived per (depth, graph), so results match serial exactly.
        let graphs = &test.graphs()[..n_eval];
        let per_graph = pool.run_ordered(graphs.len(), |gid| {
            let problem = MaxCutProblem::new(&graphs[gid]).expect("non-empty graph");
            let seed = config.seed ^ ((depth as u64) << 32) ^ gid as u64;

            // Linear ramp: one shot at the target depth.
            let init = linear_ramp(depth, 0.75 * depth as f64).expect("valid depth");
            let instance = QaoaInstance::new(problem.clone(), depth).expect("valid depth");
            let out = instance
                .optimize(&optimizer, &init, &options)
                .expect("ramp optimization");
            let ramp = (out.approximation_ratio, out.function_calls);

            // INTERP incremental flow.
            let mut rng = StdRng::seed_from_u64(seed);
            let out = InterpFlow::default()
                .run(&problem, depth, &optimizer, &mut rng)
                .expect("interp flow");
            let interp = (out.approximation_ratio, out.total_calls());

            // FOURIER incremental flow.
            let mut rng = StdRng::seed_from_u64(seed ^ 0xF0F0);
            let out = FourierFlow::default()
                .run(&problem, depth, &optimizer, &mut rng)
                .expect("fourier flow");
            let fourier = (out.approximation_ratio, out.total_calls());

            // Two-level ML flow.
            let mut rng = StdRng::seed_from_u64(seed ^ 0x4D4C);
            let flow = TwoLevelFlow::new(&predictor);
            let out = flow
                .run(
                    &problem,
                    depth,
                    &optimizer,
                    &TwoLevelConfig {
                        level1_starts: 1,
                        options,
                    },
                    &mut rng,
                )
                .expect("two-level flow");
            let two_level = (out.approximation_ratio, out.total_calls());

            [ramp, interp, fourier, two_level]
        });
        for samples in per_graph {
            for (si, (ar, fc)) in samples.into_iter().enumerate() {
                strategies[1 + si].push(ar, fc);
            }
        }

        let random_fc = mean(&strategies[0].fc);
        for s in &strategies {
            let red = 100.0 * (1.0 - mean(&s.fc) / random_fc);
            println!(
                "{:>3} {:>10} {:>9.4} {:>9.1} {:>9.1}",
                depth,
                s.name,
                mean(&s.ar),
                mean(&s.fc),
                red
            );
        }
        println!();
    }
}
