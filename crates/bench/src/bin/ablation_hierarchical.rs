//! Ablation (§I(d)): hierarchical prediction — does adding an optimized
//! intermediate-depth instance's parameters to the feature vector pay for
//! its extra function calls?
//!
//! Compares, per target depth: naive | two-level | hierarchical (pm = 2).
//!
//! Run: `cargo run --release -p bench --bin ablation_hierarchical [-- --quick]`

use bench::RunConfig;
use ml::metrics::{mean, std_dev};
use ml::ModelKind;
use optimize::Lbfgsb;
use qaoa::evaluation::naive_protocol;
use qaoa::{MaxCutProblem, ParameterPredictor, TwoLevelConfig, TwoLevelFlow};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config = RunConfig::from_env();
    let dataset = config.corpus();
    let (train, test) = dataset.split_by_graph(0.2);
    let two_level = ParameterPredictor::train(ModelKind::Gpr, &train).expect("two-level training");
    let intermediate = 2usize;
    let hier = ParameterPredictor::train_hierarchical(ModelKind::Gpr, &train, intermediate)
        .expect("hierarchical training");

    let optimizer = Lbfgsb::default();
    let flow_config = TwoLevelConfig::default();
    let depths: Vec<usize> = ((intermediate + 1)..=config.max_depth.min(5)).collect();

    println!(
        "# Hierarchical ablation (pm = {intermediate}), L-BFGS-B, {} test graphs",
        test.graphs().len()
    );
    println!(
        "{:>3} {:>10} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "p", "naiveFC", "2lvlFC", "2lvlAR", "hierFC", "hierAR", "hier-red%"
    );

    for &pt in &depths {
        let naive = naive_protocol(
            test.graphs(),
            pt,
            &optimizer,
            config.restarts.min(5),
            &Default::default(),
            config.seed,
            &qaoa::Scenario::Exact,
        )
        .expect("naive protocol");
        let naive_fc = mean(&naive.iter().map(|s| s.1 as f64).collect::<Vec<_>>());

        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xA5);
        let mut tl_fc = Vec::new();
        let mut tl_ar = Vec::new();
        let mut hi_fc = Vec::new();
        let mut hi_ar = Vec::new();
        for graph in test.graphs() {
            let problem = MaxCutProblem::new(graph).expect("non-empty graph");
            let flow = TwoLevelFlow::new(&two_level);
            let out = flow
                .run(&problem, pt, &optimizer, &flow_config, &mut rng)
                .expect("two-level run");
            tl_fc.push(out.total_calls() as f64);
            tl_ar.push(out.approximation_ratio);

            let hflow = TwoLevelFlow::new(&hier);
            let hout = hflow
                .run_hierarchical(&two_level, &problem, pt, &optimizer, &flow_config, &mut rng)
                .expect("hierarchical run");
            hi_fc.push(hout.total_calls() as f64);
            hi_ar.push(hout.approximation_ratio);
        }
        let reduction = 100.0 * (naive_fc - mean(&hi_fc)) / naive_fc.max(1.0);
        println!(
            "{:>3} {:>10.1} {:>10.1} {:>6.4}±{:<5.4} {:>10.1} {:>6.4}±{:<5.4} {:>10.1}",
            pt,
            naive_fc,
            mean(&tl_fc),
            mean(&tl_ar),
            std_dev(&tl_ar),
            mean(&hi_fc),
            mean(&hi_ar),
            std_dev(&hi_ar),
            reduction
        );
    }
    println!("\n# Reading: hierarchical adds an intermediate optimization, so its FC is higher");
    println!("# than plain two-level; it pays off only if its AR/deep-depth initialization wins.");
}
