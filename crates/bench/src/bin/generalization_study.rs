//! Extension study: does the ER-trained predictor transfer to other graph
//! families?
//!
//! The paper trains and tests on the same Erdős–Rényi ensemble (edge
//! probability 0.5). Its thesis — parameter patterns transfer between
//! *similar* instances — invites the harder question: how far does "similar"
//! stretch? This study trains GPR on the usual ER corpus and evaluates the
//! two-level flow on held-out ER graphs plus four out-of-ensemble families
//! (3-regular, Barabási–Albert, Watts–Strogatz, dense ER), reporting the
//! function-call reduction and AR delta per family.
//!
//! Run: `cargo run --release -p bench --bin generalization_study [-- --quick] [-- --threads N]`

use bench::RunConfig;
use graphs::{generators, Graph};
use ml::metrics::mean;
use ml::ModelKind;
use optimize::{Lbfgsb, Options};
use qaoa::evaluation::graph_seed;
use qaoa::graph_aware::GraphAwarePredictor;
use qaoa::{MaxCutProblem, ParameterPredictor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn family_graphs(name: &str, count: usize, nodes: usize, rng: &mut StdRng) -> Vec<Graph> {
    (0..count)
        .map(|_| loop {
            let g = match name {
                "ER(0.5)" => generators::erdos_renyi_nonempty(nodes, 0.5, rng),
                "ER(0.8)" => generators::erdos_renyi_nonempty(nodes, 0.8, rng),
                "3-regular" => {
                    generators::random_regular(nodes, 3, rng).expect("even n·d for these sizes")
                }
                "BA(m=2)" => {
                    generators::barabasi_albert(nodes, 2, rng).expect("valid BA parameters")
                }
                "WS(k=4)" => {
                    generators::watts_strogatz(nodes, 4, 0.3, rng).expect("valid WS parameters")
                }
                other => unreachable!("unknown family {other}"),
            };
            if !g.is_empty() {
                break g;
            }
        })
        .collect()
}

fn main() {
    let config = RunConfig::from_env();
    let dataset = config.corpus();
    let (train, test) = dataset.split_by_graph(0.2);
    let predictor = ParameterPredictor::train(ModelKind::Gpr, &train).expect("GPR training");
    let aware = GraphAwarePredictor::train(ModelKind::Gpr, &train).expect("graph-aware training");
    let optimizer = Lbfgsb::default();
    let depth = config.max_depth.min(4);
    let per_family = if config.quick { 8 } else { 32 };
    let naive_starts = config.naive_starts.unwrap_or(config.restarts);
    // 3-regular needs even n·d.
    let nodes = if config.nodes.is_multiple_of(2) {
        config.nodes
    } else {
        config.nodes + 1
    };

    let scenario = config.scenario().expect("valid scenario flags");
    let options = bench::cli::scenario::tuned_options(&scenario, Options::default());
    let pool = bench::cli::pool(&config);
    println!(
        "# Generalization study: GPR trained on ER({:.1}) n={}, evaluated at p={depth}, \
         {per_family} graphs/family, L-BFGS-B, {} threads, scenario {scenario}",
        0.5,
        config.nodes,
        pool.threads()
    );
    println!(
        "{:>12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7}",
        "family", "naiveAR", "mlAR", "gaAR", "naiveFC", "mlFC", "gaFC", "red%", "gared%"
    );

    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x6E6E);
    let mut families: Vec<(&str, Vec<Graph>)> = vec![(
        "ER-heldout",
        test.graphs().iter().take(per_family).cloned().collect(),
    )];
    for name in ["ER(0.8)", "3-regular", "BA(m=2)", "WS(k=4)"] {
        families.push((name, family_graphs(name, per_family, nodes, &mut rng)));
    }

    for (name, graphs) in &families {
        let naive = engine::compare::naive_protocol(
            graphs,
            depth,
            &optimizer,
            naive_starts,
            &options,
            config.seed,
            &scenario,
            &pool,
        )
        .expect("naive protocol");
        let ml = engine::compare::two_level_protocol(
            graphs,
            depth,
            &optimizer,
            &predictor,
            1,
            &options,
            config.seed ^ 0xA11,
            &scenario,
            &pool,
        )
        .expect("two-level protocol");

        // Graph-aware two-level runs, one engine job per graph (per-graph
        // seeds keep the fan-out schedule-independent).
        let ga: Vec<(f64, f64)> = pool.run_ordered(graphs.len(), |gi| {
            let mut rng = StdRng::seed_from_u64(graph_seed(config.seed ^ 0xB22, gi));
            let problem = MaxCutProblem::new(&graphs[gi]).expect("non-empty graph");
            let out = aware
                .run_two_level(&problem, depth, &optimizer, &options, &mut rng)
                .expect("graph-aware flow");
            (out.approximation_ratio, out.total_calls() as f64)
        });
        let ga_ar: Vec<f64> = ga.iter().map(|s| s.0).collect();
        let ga_fc: Vec<f64> = ga.iter().map(|s| s.1).collect();

        let naive_ar = mean(&naive.iter().map(|s| s.0).collect::<Vec<_>>());
        let naive_fc = mean(&naive.iter().map(|s| s.1 as f64).collect::<Vec<_>>());
        let ml_ar = mean(&ml.iter().map(|s| s.0).collect::<Vec<_>>());
        let ml_fc = mean(&ml.iter().map(|s| s.1 as f64).collect::<Vec<_>>());
        println!(
            "{:>12} {:>9.4} {:>9.4} {:>9.4} {:>9.1} {:>9.1} {:>9.1} {:>7.1} {:>7.1}",
            name,
            naive_ar,
            ml_ar,
            mean(&ga_ar),
            naive_fc,
            ml_fc,
            mean(&ga_fc),
            100.0 * (1.0 - ml_fc / naive_fc),
            100.0 * (1.0 - mean(&ga_fc) / naive_fc)
        );
    }
}
