//! Ablation: training-set size. The paper deliberately trains on only 20%
//! of its graphs (66 of 330), arguing a small training set suffices. This
//! sweep varies the train fraction and reports the resulting prediction
//! error and two-level FC reduction.
//!
//! Run: `cargo run --release -p bench --bin ablation_trainsize [-- --quick]`

use bench::RunConfig;
use ml::metrics::mean;
use ml::ModelKind;
use optimize::Lbfgsb;
use qaoa::evaluation::{naive_protocol, two_level_protocol};
use qaoa::ParameterPredictor;

fn main() {
    let config = RunConfig::from_env();
    let dataset = config.corpus();
    let fractions = [0.05, 0.1, 0.2, 0.4, 0.6];
    let pt = config.max_depth.min(3);
    let optimizer = Lbfgsb::default();

    println!("# Training-size ablation: GPR predictor, target depth {pt}, L-BFGS-B");
    println!(
        "{:>9} {:>7} {:>7} {:>10} {:>10} {:>8}",
        "train%", "ntrain", "ntest", "naiveFC", "mlFC", "red%"
    );
    for &fraction in &fractions {
        let (train, test) = dataset.split_by_graph(fraction);
        if train.graphs().len() < 2 || test.graphs().is_empty() {
            continue;
        }
        let Ok(predictor) = ParameterPredictor::train(ModelKind::Gpr, &train) else {
            eprintln!("training failed at fraction {fraction}");
            continue;
        };
        let naive = naive_protocol(
            test.graphs(),
            pt,
            &optimizer,
            config.restarts.min(5),
            &Default::default(),
            config.seed,
            &qaoa::Scenario::Exact,
        )
        .expect("naive protocol");
        let ml = two_level_protocol(
            test.graphs(),
            pt,
            &optimizer,
            &predictor,
            1,
            &Default::default(),
            config.seed ^ 0x51,
            &qaoa::Scenario::Exact,
        )
        .expect("two-level protocol");
        let naive_fc = mean(&naive.iter().map(|s| s.1 as f64).collect::<Vec<_>>());
        let ml_fc = mean(&ml.iter().map(|s| s.1 as f64).collect::<Vec<_>>());
        println!(
            "{:>9.0} {:>7} {:>7} {:>10.1} {:>10.1} {:>8.1}",
            fraction * 100.0,
            train.graphs().len(),
            test.graphs().len(),
            naive_fc,
            ml_fc,
            100.0 * (naive_fc - ml_fc) / naive_fc.max(1.0)
        );
    }
    println!("\n# Expected shape: the reduction saturates at small training fractions —");
    println!("# the paper's 20% split is already enough (its stated motivation).");
}
