//! Fig. 2: within-depth trends in the optimal control parameters of four
//! 3-regular graphs — at fixed depth, γᵢOPT increases with stage i while
//! βᵢOPT decreases (panels (a) p = 3 and (b) p = 5).
//!
//! Optima are produced the way the paper's own figures imply (see DESIGN.md
//! §5): the depth-1 instance is solved by multistart and deeper instances
//! follow the INTERP chain (Zhou et al., the paper's ref [5]) that stays in
//! one smooth basin family; for display, only the smoothness-preserving
//! conjugation fold is applied so every graph appears in the same image
//! family of the paper's domain `γ ∈ [0, 2π], β ∈ [0, π]`.
//!
//! Run: `cargo run --release -p bench --bin fig2 [-- --quick]`

use bench::RunConfig;
use graphs::generators;
use optimize::{Lbfgsb, Options};
use qaoa::datagen::interp_resample;
use qaoa::{MaxCutProblem, QaoaInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Solves depths `1..=max` along an INTERP chain; returns per-depth packed
/// parameters and ARs.
fn interp_chain(
    problem: &MaxCutProblem,
    max_depth: usize,
    restarts: usize,
    rng: &mut StdRng,
) -> Vec<(Vec<f64>, f64)> {
    let optimizer = Lbfgsb::default();
    let options = Options::default();
    let mut out = Vec::with_capacity(max_depth);
    let mut prev: Option<Vec<f64>> = None;
    for p in 1..=max_depth {
        let instance = QaoaInstance::new(problem.clone(), p).expect("valid depth");
        let outcome = match &prev {
            None => instance
                .optimize_multistart(&optimizer, restarts, rng, &options)
                .expect("level-1 optimization"),
            Some(packed) => {
                let half = packed.len() / 2;
                let mut seed = interp_resample(&packed[..half], p);
                seed.extend(interp_resample(&packed[half..], p));
                instance
                    .optimize(&optimizer, &seed, &options)
                    .expect("seeded optimization")
            }
        };
        prev = Some(outcome.params.clone());
        out.push((outcome.params, outcome.approximation_ratio));
    }
    out
}

fn main() {
    let config = RunConfig::from_env();
    let depths: Vec<usize> = if config.quick { vec![2, 3] } else { vec![3, 5] };
    let max_depth = *depths.iter().max().expect("non-empty depths");
    let nodes = config.nodes.max(4);
    let degree = 3.min(nodes - 1);

    let mut rng = StdRng::seed_from_u64(config.seed);
    let graphs: Vec<_> = (0..4)
        .map(|_| generators::random_regular(nodes, degree, &mut rng).expect("valid regular params"))
        .collect();

    println!(
        "# Fig 2: optimal parameters per stage at fixed depth ({} inits at p=1, INTERP chain above)",
        config.restarts
    );
    let chains: Vec<_> = graphs
        .iter()
        .map(|g| {
            let problem = MaxCutProblem::new(g).expect("non-empty graph");
            interp_chain(&problem, max_depth, config.restarts, &mut rng)
        })
        .collect();
    for &p in &depths {
        println!("## depth p = {p}");
        println!(
            "{:<6} {:>3} {:>10} {:>10}",
            "graph", "i", "gamma_i", "beta_i"
        );
        for (gi, chain) in chains.iter().enumerate() {
            // Continuity-anchored fold over the whole chain, then read the
            // requested depth's row.
            let packed: Vec<Vec<f64>> = chain.iter().map(|(v, _)| v.clone()).collect();
            let folded = qaoa::canonical::display_fold_chain(&packed);
            let params = &folded[p - 1];
            for i in 0..p {
                println!(
                    "G{:<5} {:>3} {:>10.4} {:>10.4}",
                    gi + 1,
                    i + 1,
                    params[i],
                    params[p + i]
                );
            }
        }
    }
    println!("# Expected shape: within a graph, gamma_i grows with i; beta_i shrinks with i.");
}
