//! Extension study: the two-level flow under per-gate depolarizing noise.
//!
//! The paper's run-time argument (fewer QC calls) matters most on noisy
//! hardware, yet its simulation is noiseless. Here every circuit execution
//! runs on the density-matrix simulator with depolarizing channels after
//! each gate (1q rate `p1 = p2/10`, 2q rate `p2` swept). We compare random
//! initialization against ML initialization, where the predictor was
//! trained on *noiseless* corpora — testing whether learned parameter
//! patterns survive decoherence of the objective itself.
//!
//! Run: `cargo run --release -p bench --bin noisy_qaoa [-- --quick]`

use bench::RunConfig;
use ml::metrics::mean;
use ml::ModelKind;
use optimize::{NelderMead, Options};
use qaoa::noisy::NoisyQaoa;
use qaoa::{MaxCutProblem, ParameterPredictor, QaoaInstance};
use qsim::NoiseModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config = RunConfig::from_env();
    let dataset = config.corpus();
    let (train, test) = dataset.split_by_graph(0.2);
    let predictor = ParameterPredictor::train(ModelKind::Gpr, &train).expect("GPR training");
    let target_depth = config.max_depth.min(if config.quick { 2 } else { 3 });
    let optimizer = NelderMead::default();
    let options = Options::default().with_max_iters(120);
    let n_eval = test.graphs().len().min(if config.quick { 6 } else { 16 });

    println!(
        "# Noisy-QAOA study: depolarizing (p1 = p2/10), Nelder-Mead, depth {target_depth}, \
         {n_eval} graphs"
    );
    println!(
        "{:>9} {:>10} {:>10} {:>10} {:>10} {:>7}",
        "p2", "naiveAR", "mlAR", "naiveFC", "mlFC", "red%"
    );

    for p2 in [0.0, 0.001, 0.005, 0.02] {
        let noise = NoiseModel::uniform_depolarizing(p2 / 10.0, p2).expect("valid rates");
        let mut naive_ar = Vec::new();
        let mut ml_ar = Vec::new();
        let mut naive_fc = Vec::new();
        let mut ml_fc = Vec::new();

        for (gid, graph) in test.graphs().iter().take(n_eval).enumerate() {
            let problem = MaxCutProblem::new(graph).expect("non-empty graph");
            let seed = config.seed ^ (p2.to_bits() >> 3) ^ gid as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let noisy = NoisyQaoa::new(problem.clone(), target_depth, noise.clone())
                .expect("within DM register cap");

            // Naive: random start on the noisy objective.
            let bounds = qaoa::parameter_bounds(target_depth).expect("valid depth");
            let start = bounds.sample(&mut rng);
            let out = noisy
                .optimize(&optimizer, &start, &options)
                .expect("noisy optimization");
            naive_ar.push(out.approximation_ratio);
            naive_fc.push(out.function_calls as f64);

            // Two-level: noiseless level 1 is unrealistic on hardware, so
            // level 1 also runs on the noisy objective.
            let l1 =
                NoisyQaoa::new(problem.clone(), 1, noise.clone()).expect("within DM register cap");
            let l1_bounds = qaoa::parameter_bounds(1).expect("valid depth");
            let l1_start = l1_bounds.sample(&mut rng);
            let l1_out = l1
                .optimize(&optimizer, &l1_start, &options)
                .expect("noisy level-1");
            let l1_canon = qaoa::canonical::canonicalize_packed(&l1_out.params);
            let init = predictor
                .predict(l1_canon[0], l1_canon[1], target_depth)
                .expect("prediction");
            let out = noisy
                .optimize(&optimizer, &init, &options)
                .expect("noisy level-2");
            ml_ar.push(out.approximation_ratio);
            ml_fc.push((l1_out.function_calls + out.function_calls) as f64);

            // Sanity anchor: the noiseless instance evaluated at the noisy
            // optimum should never be *worse* than the noisy AR.
            let exact = QaoaInstance::new(problem, target_depth).expect("valid depth");
            let _ = exact
                .ansatz()
                .expectation(&out.params)
                .expect("valid params");
        }

        let nfc = mean(&naive_fc);
        let mfc = mean(&ml_fc);
        println!(
            "{:>9.4} {:>10.4} {:>10.4} {:>10.1} {:>10.1} {:>7.1}",
            p2,
            mean(&naive_ar),
            mean(&ml_ar),
            nfc,
            mfc,
            100.0 * (1.0 - mfc / nfc)
        );
    }
}
