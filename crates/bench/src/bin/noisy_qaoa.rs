//! Extension study: the two-level flow under per-gate depolarizing noise.
//!
//! The paper's run-time argument (fewer QC calls) matters most on noisy
//! hardware, yet its simulation is noiseless. Here every circuit execution
//! runs on the density-matrix simulator with depolarizing channels after
//! each gate (1q rate `p1 = p2/10`, 2q rate `p2` swept). We compare random
//! initialization against ML initialization, where the predictor was
//! trained on *noiseless* corpora — testing whether learned parameter
//! patterns survive decoherence of the objective itself.
//!
//! Both protocols run as ordinary engine workloads
//! ([`engine::compare::naive_protocol`] / `two_level_protocol`) under a
//! [`qaoa::Scenario::Noisy`] objective, so the rows are bit-identical at
//! any `--threads` value.
//!
//! Run: `cargo run --release -p bench --bin noisy_qaoa [-- --quick] [-- --threads N]`

use bench::RunConfig;
use graphs::Graph;
use ml::metrics::mean;
use ml::ModelKind;
use optimize::{NelderMead, Options};
use qaoa::{ParameterPredictor, Scenario};

fn main() {
    let config = RunConfig::from_env();
    let dataset = config.corpus();
    let (train, test) = dataset.split_by_graph(0.2);
    let predictor = ParameterPredictor::train(ModelKind::Gpr, &train).expect("GPR training");
    let target_depth = config.max_depth.min(if config.quick { 2 } else { 3 });
    let optimizer = NelderMead::default();
    let options = Options::default().with_max_iters(120);
    let n_eval = test.graphs().len().min(if config.quick { 6 } else { 16 });
    let graphs: Vec<Graph> = test.graphs().iter().take(n_eval).cloned().collect();
    let pool = bench::cli::pool(&config);
    let to_f64 = |n: usize| f64::from(u32::try_from(n).unwrap_or(u32::MAX));

    println!(
        "# Noisy-QAOA study: depolarizing (p1 = p2/10), Nelder-Mead, depth {target_depth}, \
         {n_eval} graphs, {} threads",
        pool.threads()
    );
    println!(
        "{:>9} {:>10} {:>10} {:>10} {:>10} {:>7}",
        "p2", "naiveAR", "mlAR", "naiveFC", "mlFC", "red%"
    );

    for p2 in [0.0, 0.001, 0.005, 0.02] {
        let scenario = Scenario::Noisy { p1: p2 / 10.0, p2 };
        let seed = config.seed ^ (p2.to_bits() >> 3);
        let naive = engine::compare::naive_protocol(
            &graphs,
            target_depth,
            &optimizer,
            1,
            &options,
            seed,
            &scenario,
            &pool,
        )
        .expect("noisy naive protocol");
        let ml = engine::compare::two_level_protocol(
            &graphs,
            target_depth,
            &optimizer,
            &predictor,
            1,
            &options,
            seed ^ 0xA11,
            &scenario,
            &pool,
        )
        .expect("noisy two-level protocol");

        let naive_ar = mean(&naive.iter().map(|s| s.0).collect::<Vec<_>>());
        let naive_fc = mean(&naive.iter().map(|s| to_f64(s.1)).collect::<Vec<_>>());
        let ml_ar = mean(&ml.iter().map(|s| s.0).collect::<Vec<_>>());
        let ml_fc = mean(&ml.iter().map(|s| to_f64(s.1)).collect::<Vec<_>>());
        println!(
            "{:>9.4} {:>10.4} {:>10.4} {:>10.1} {:>10.1} {:>7.1}",
            p2,
            naive_ar,
            ml_ar,
            naive_fc,
            ml_fc,
            100.0 * (1.0 - ml_fc / naive_fc)
        );
    }
    println!("\n# Expected shape: ML initialization keeps its call advantage as p2 grows,");
    println!("# even though the predictor never saw a noisy objective during training.");
}
