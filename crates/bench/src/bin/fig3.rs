//! Fig. 3: across-depth trends in the optimal control parameters of a single
//! 3-regular graph — for a fixed stage i, γᵢOPT decreases as the circuit
//! depth p grows while βᵢOPT increases.
//!
//! Optima are produced by multistart at `p = 1` and the INTERP chain above
//! (Zhou et al., the paper's ref [5]) and displayed without symmetry
//! folding, the same protocol as the `fig2` binary.
//!
//! Run: `cargo run --release -p bench --bin fig3 [-- --quick]`

use bench::RunConfig;
use graphs::generators;
use optimize::{Lbfgsb, Options};
use qaoa::datagen::interp_resample;
use qaoa::{MaxCutProblem, QaoaInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config = RunConfig::from_env();
    let max_depth = if config.quick { 3 } else { 5 };
    let nodes = config.nodes.max(4);
    let degree = 3.min(nodes - 1);

    let mut rng = StdRng::seed_from_u64(config.seed);
    let graph = generators::random_regular(nodes, degree, &mut rng).expect("valid regular params");
    let problem = MaxCutProblem::new(&graph).expect("non-empty graph");
    let optimizer = Lbfgsb::default();
    let options = Options::default();

    println!(
        "# Fig 3: optimal gamma_i / beta_i vs depth p, one {degree}-regular {nodes}-node graph"
    );
    println!(
        "# {} random inits at p=1, INTERP chain above, L-BFGS-B, ftol 1e-6",
        config.restarts
    );
    println!(
        "{:>3} {:>3} {:>10} {:>10} {:>9}",
        "p", "i", "gamma_i", "beta_i", "AR"
    );
    let mut chain: Vec<Vec<f64>> = Vec::new();
    let mut ars = Vec::new();
    for p in 1..=max_depth {
        let instance = QaoaInstance::new(problem.clone(), p).expect("valid depth");
        let outcome = match chain.last() {
            None => instance
                .optimize_multistart(&optimizer, config.restarts, &mut rng, &options)
                .expect("level-1 optimization"),
            Some(packed) => {
                let half = packed.len() / 2;
                let mut seed = interp_resample(&packed[..half], p);
                seed.extend(interp_resample(&packed[half..], p));
                instance
                    .optimize(&optimizer, &seed, &options)
                    .expect("seeded optimization")
            }
        };
        ars.push(outcome.approximation_ratio);
        chain.push(outcome.params);
    }
    for (row, display) in qaoa::canonical::display_fold_chain(&chain)
        .iter()
        .enumerate()
    {
        let p = row + 1;
        for i in 0..p {
            println!(
                "{:>3} {:>3} {:>10.4} {:>10.4} {:>9.4}",
                p,
                i + 1,
                display[i],
                display[p + i],
                ars[row]
            );
        }
    }
    println!("# Expected shape: reading a fixed i down the table, gamma_i falls and beta_i rises with p.");
}
