//! `qaoa-predict` — the train-once / predict-many prediction service.
//!
//! Two subcommands split the paper's cost asymmetry at the process
//! boundary:
//!
//! * `qaoa-predict train --out model.qm [flags]` — generate the corpus
//!   (hundreds of QAOA optimizations, amortized through the engine and the
//!   optional `--cache-file`), train the GPR parameter predictor on it, and
//!   persist the result as a versioned `QMODEL1` artifact (atomic write).
//! * `qaoa-predict serve --model model.qm [--cache-file PATH] [flags]` —
//!   load the artifact (retraining and overwriting it if missing, corrupt,
//!   or stale — never fatal) and answer `QW1 PREDICT ...` lines from stdin
//!   with tiered `QW1 PREDICTED ...` replies on stdout:
//!
//!   | tier | answer                    | when                               |
//!   |------|---------------------------|------------------------------------|
//!   | 1    | cached exact optimum      | depth-1 request, class in cache    |
//!   | 2    | model prediction          | deeper request, class in cache     |
//!   | 3    | optimize with warm start  | class not yet cached               |
//!
//!   The serve loop is the full job server (`JOB`/`RUN`/`SHARD`/`RANGE`
//!   still work); per-tier request counts and latency go to stderr only, so
//!   transcripts stay bit-identical across runs and thread counts.
//!
//! Run:
//! ```text
//! cargo run --release -p bench --bin qaoa-predict -- train --quick --out model.qm
//! printf 'QW1 PREDICT 1 3 3 5 0-1,1-2,2-3,3-4,4-0\n' \
//!   | cargo run --release -p bench --bin qaoa-predict -- serve --quick --model model.qm
//! ```

use std::path::PathBuf;

use engine::BatchConfig;
use optimize::Lbfgsb;

use bench::{cli, RunConfig};

/// Subcommand usage preamble printed above the shared flag reference.
const PREDICT_USAGE: &str = "\
usage: qaoa-predict train --out PATH [flags]   train and save a QMODEL1 artifact
       qaoa-predict serve --model PATH [flags] answer PREDICT requests from stdin
";

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{PREDICT_USAGE}\n{}", cli::USAGE);
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match args.first().map(String::as_str) {
        Some("train") => {
            args.remove(0);
            Mode::Train
        }
        Some("serve") => {
            args.remove(0);
            Mode::Serve
        }
        Some("--help" | "-h") | None => {
            println!("{PREDICT_USAGE}\n{}", cli::USAGE);
            std::process::exit(0);
        }
        Some(other) => usage_error(&format!("unknown subcommand {other} (train or serve)")),
    };
    let config = match cli::parse_args(args) {
        Ok(cli::Parsed::Run(config)) => *config,
        Ok(cli::Parsed::Help) => {
            println!("{PREDICT_USAGE}\n{}", cli::USAGE);
            std::process::exit(0);
        }
        Err(msg) => usage_error(&msg),
    };
    match mode {
        Mode::Train => train(&config),
        Mode::Serve => serve(&config),
    }
}

enum Mode {
    Train,
    Serve,
}

/// Resolves where `train` writes: `--out` (the documented spelling), with
/// `--model` accepted as an alias so a single flag set works for both
/// subcommands.
fn train_path(config: &RunConfig) -> PathBuf {
    match config.out.clone().or_else(|| config.model.clone()) {
        Some(path) => path,
        None => usage_error("train needs --out PATH (where to write the model artifact)"),
    }
}

fn train(config: &RunConfig) {
    let path = train_path(config);
    let predictor = config.train_predictor();
    match engine::model::save(&predictor, &path, config.seed) {
        Ok(()) => eprintln!(
            "# qaoa-predict: saved {} model (max depth {}) to {}",
            predictor.kind(),
            predictor.max_depth(),
            path.display()
        ),
        Err(e) => {
            eprintln!("error: could not save model to {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

fn serve(config: &RunConfig) {
    let Some(path) = config.model.clone() else {
        usage_error("serve needs --model PATH (a QMODEL1 artifact; train one first)");
    };
    let status = engine::model::load(&path, config.seed);
    eprintln!("# model {}: {}", path.display(), status.summary());
    let predictor = match status {
        engine::ModelLoad::Loaded(predictor) => predictor,
        // Missing or discarded: retrain and overwrite, per the artifact's
        // discard-and-retrain failure policy.
        engine::ModelLoad::Missing | engine::ModelLoad::Discarded(_) => {
            let predictor = config.train_predictor();
            match engine::model::save(&predictor, &path, config.seed) {
                Ok(()) => eprintln!(
                    "# qaoa-predict: retrained and saved {} model to {}",
                    predictor.kind(),
                    path.display()
                ),
                // The artifact is an optimization; serve from memory anyway.
                Err(e) => eprintln!("# warning: could not save model to {}: {e}", path.display()),
            }
            predictor
        }
    };

    let engine = config.engine();
    let batch_config = BatchConfig {
        master_seed: config.seed,
        options: Default::default(),
        use_cache: true,
        scenario: qaoa::Scenario::Exact,
    };
    eprintln!(
        "# qaoa-predict: {} threads, master seed {}, {} model (max depth {}); \
         reading QW1 lines from stdin",
        engine.threads(),
        config.seed,
        predictor.kind(),
        predictor.max_depth()
    );

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let summary = match engine::server::serve_with_model(
        stdin.lock(),
        stdout.lock(),
        &engine,
        &Lbfgsb::default(),
        &batch_config,
        Some(&predictor),
    ) {
        Ok(summary) => summary,
        Err(e) => {
            // Transport death (closed pipe etc.) — still try to keep the
            // cache entries computed so far.
            config.persist_cache(&engine);
            eprintln!("error: transport failed: {e}");
            std::process::exit(1);
        }
    };
    config.persist_cache(&engine);
    eprintln!("# qaoa-predict: {summary}");
    for line in summary.predict_report().lines() {
        eprintln!("# {line}");
    }
}
