//! `qaoa-shard` — the sharded corpus coordinator.
//!
//! Splits the §III-A ensemble into `--shards K` contiguous graph-index
//! ranges, drives one `engine::corpus` worker per range (each on its own
//! engine with `--threads N` pool workers), and merges the per-range
//! records in graph-index order. The merged corpus — and, with
//! `--cache-file`, the merged depth-1 cache file — is **bit-identical** to
//! an unsharded run with the same flags, at any shard and thread count;
//! CI diffs it byte-for-byte against the `table1` corpus.
//!
//! The merged corpus TSV goes to `--out PATH` (or stdout); progress and the
//! shard report go to stderr.
//!
//! Run:
//! `cargo run --release -p bench --bin qaoa-shard -- --quick --shards 3 --out corpus.tsv`

use bench::RunConfig;
use engine::shard::ShardPlan;
use engine::Level1Cache;

fn main() {
    let config = RunConfig::from_env();
    let datagen = config.datagen();
    let plan = ShardPlan::split_even(config.graphs, config.shards);

    let cache = Level1Cache::new();
    config.load_level1(&cache);

    eprintln!(
        "# qaoa-shard: {} graphs x depths 1..={} over {} shards, {} threads/shard",
        config.graphs,
        config.max_depth,
        plan.shards(),
        config.threads()
    );
    let (dataset, report) =
        match engine::shard::run_local(&datagen, &plan, config.threads(), &cache) {
            Ok(result) => result,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
    for (i, stats) in report.per_shard.iter().enumerate() {
        eprintln!(
            "#   shard {i}: graphs {}..{} -> {} cells, {} fn calls ({} cache hits)",
            stats.range.start, stats.range.end, stats.cells, stats.function_calls, stats.cache_hits,
        );
    }
    eprintln!("# merged: {}", report.summary());

    config.persist_level1(&cache);

    let write_result = match &config.out {
        Some(path) => dataset.save(path),
        None => dataset.write_tsv(std::io::stdout().lock()),
    };
    match (write_result, &config.out) {
        (Ok(()), Some(path)) => eprintln!("# corpus written to {}", path.display()),
        (Ok(()), None) => {}
        (Err(e), _) => {
            eprintln!("error: could not write corpus: {e}");
            std::process::exit(1);
        }
    }
}
