//! `qaoa-shard` — the sharded corpus coordinator.
//!
//! Splits the §III-A ensemble into `--shards K` contiguous graph-index
//! ranges and drives one worker per range. `--workers` picks how the
//! workers run:
//!
//! * `local` (default) — in-process `engine::corpus` calls, no wire
//!   protocol; the original single-process path.
//! * `loopback:K` — K in-process `qaoa-serve` loops over channel pipes,
//!   driven by the streaming coordinator ([`engine::shard::run_streaming`]):
//!   records merge in global graph-index order with bounded buffering, and
//!   a dead or silent worker's range is re-tasked onto the survivors.
//! * `spawn:K` — the same coordinator over K spawned worker subprocesses
//!   (`--worker-cmd`, default the `qaoa-serve` binary next to this
//!   executable) speaking `QW1` over stdin/stdout.
//!
//! The merged corpus — and, with `--cache-file`, the merged depth-1 cache
//! file — is **bit-identical** to an unsharded run with the same flags, at
//! any shard, worker, and thread count, even when `--kill-worker W` injects
//! a worker death mid-run; CI diffs all of it byte-for-byte against the
//! `table1` corpus.
//!
//! The merged corpus TSV goes to `--out PATH` (or stdout) — in the wire
//! modes it is *streamed*, one line per record as the coordinator's
//! frontier advances, so peak memory is bounded by the dispatch window,
//! not the corpus. Progress and the shard report go to stderr.
//!
//! Run:
//! `cargo run --release -p bench --bin qaoa-shard -- --quick --shards 3 --workers spawn:2 --out corpus.tsv`

use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use bench::{RunConfig, WorkerMode};
use engine::shard::{ShardPlan, ShardReport, StreamOptions};
use engine::{
    persist, KillAfter, Level1Cache, LoopbackTransport, ShardTransport, SubprocessTransport,
};
use qaoa::datagen::{self, DataGenConfig};

fn main() {
    let config = RunConfig::from_env();
    if let Err(message) = run(&config) {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}

fn run(config: &RunConfig) -> Result<(), String> {
    let spec = config.datagen();
    let plan = ShardPlan::split_even(config.graphs, config.shards);
    let mode = match config.workers {
        WorkerMode::Local => "local (in-process)".to_string(),
        WorkerMode::Loopback(k) => format!("{k} loopback worker(s)"),
        WorkerMode::Spawn(k) => format!("{k} spawned worker(s)"),
    };
    eprintln!(
        "# qaoa-shard: {} graphs x depths 1..={} over {} shards, {mode}, {} threads/worker",
        config.graphs,
        config.max_depth,
        plan.shards(),
        config.threads()
    );

    match config.workers {
        WorkerMode::Local => run_local(config, &spec, &plan),
        WorkerMode::Loopback(k) => run_loopback(config, &spec, &plan, k),
        WorkerMode::Spawn(k) => run_spawn(config, &spec, &plan, k),
    }
}

/// The original path: in-process ranges, whole dataset in memory.
fn run_local(config: &RunConfig, spec: &DataGenConfig, plan: &ShardPlan) -> Result<(), String> {
    let cache = Level1Cache::new();
    config.load_level1(&cache);
    let (dataset, report) = engine::shard::run_local(spec, plan, config.threads(), &cache)
        .map_err(|e| e.to_string())?;
    print_report(&report);
    config.persist_level1(&cache);
    let write_result = match &config.out {
        Some(path) => dataset.save(path),
        None => dataset.write_tsv(std::io::stdout().lock()),
    };
    write_result.map_err(|e| format!("could not write corpus: {e}"))?;
    if let Some(path) = &config.out {
        eprintln!("# corpus written to {}", path.display());
    }
    Ok(())
}

/// Loopback wire mode: the streaming coordinator over in-process workers
/// sharing one depth-1 cache (pre-warmed from `--cache-file`, saved back
/// merged).
fn run_loopback(
    config: &RunConfig,
    spec: &DataGenConfig,
    plan: &ShardPlan,
    workers: usize,
) -> Result<(), String> {
    let cache = Arc::new(Level1Cache::new());
    config.load_level1(&cache);
    let transport = LoopbackTransport::with_cache(
        workers,
        config.threads(),
        config.seed,
        Some(Arc::clone(&cache)),
    );
    let report = stream_corpus(config, spec, plan, transport)?;
    print_report(&report);
    config.persist_level1(&cache);
    Ok(())
}

/// Spawn wire mode: the streaming coordinator over worker subprocesses.
/// With `--cache-file`, each worker gets its own pre-warmed copy of the
/// file (`PATH.wK`) to persist into at exit; the coordinator merges the
/// copies back into `PATH` afterwards, so the final file is identical to
/// an unsharded run's.
fn run_spawn(
    config: &RunConfig,
    spec: &DataGenConfig,
    plan: &ShardPlan,
    workers: usize,
) -> Result<(), String> {
    let base = worker_command(config)?;
    let mut commands: Vec<Vec<String>> = Vec::with_capacity(workers);
    let mut worker_caches: Vec<PathBuf> = Vec::new();
    for worker in 0..workers {
        let mut command = base.clone();
        command.push("--threads".into());
        command.push(config.threads().to_string());
        command.push("--seed".into());
        command.push(config.seed.to_string());
        if let Some(path) = &config.cache_file {
            let worker_path = PathBuf::from(format!("{}.w{worker}", path.display()));
            if path.exists() {
                std::fs::copy(path, &worker_path).map_err(|e| {
                    format!(
                        "could not pre-warm worker cache {}: {e}",
                        worker_path.display()
                    )
                })?;
            } else {
                // A stale copy from an earlier run would otherwise leak
                // foreign entries into the merge below.
                std::fs::remove_file(&worker_path).ok();
            }
            command.push("--cache-file".into());
            command.push(worker_path.display().to_string());
            worker_caches.push(worker_path);
        }
        commands.push(command);
    }
    eprintln!("# spawning {} x `{}`", workers, base.join(" "));
    let transport = SubprocessTransport::spawn_each(&commands)
        .map_err(|e| format!("could not spawn workers: {e}"))?;
    let report = stream_corpus(config, spec, plan, transport)?;
    print_report(&report);

    // The workers have exited (a successful run closes them) and persisted
    // their per-worker cache files; fold everything into the main file.
    if config.cache_file.is_some() {
        let merged = Level1Cache::new();
        config.load_level1(&merged);
        for worker_path in &worker_caches {
            let status = persist::load_into(&merged, worker_path, config.seed);
            eprintln!(
                "# worker cache {}: {}",
                worker_path.display(),
                status.summary()
            );
            std::fs::remove_file(worker_path).ok();
        }
        config.persist_level1(&merged);
    }
    Ok(())
}

/// The spawn-mode worker argv: `--worker-cmd` whitespace-split, or the
/// `qaoa-serve` binary sitting next to this executable.
fn worker_command(config: &RunConfig) -> Result<Vec<String>, String> {
    if let Some(cmd) = &config.worker_cmd {
        let parts: Vec<String> = cmd.split_whitespace().map(str::to_string).collect();
        if parts.is_empty() {
            return Err("--worker-cmd is empty".into());
        }
        return Ok(parts);
    }
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate this executable: {e}"))?;
    let serve = exe
        .parent()
        .ok_or_else(|| "executable has no parent directory".to_string())?
        .join("qaoa-serve");
    if !serve.exists() {
        return Err(format!(
            "default worker binary {} not found; pass --worker-cmd",
            serve.display()
        ));
    }
    Ok(vec![serve.display().to_string()])
}

/// Runs the streaming coordinator over `transport`, writing the merged
/// corpus TSV to `--out` (or stdout) one record at a time — the writer
/// never holds the record set. Wraps the transport in a
/// [`KillAfter`] fault injector when `--kill-worker` asks for one.
fn stream_corpus<T: ShardTransport>(
    config: &RunConfig,
    spec: &DataGenConfig,
    plan: &ShardPlan,
    transport: T,
) -> Result<ShardReport, String> {
    match config.kill_worker {
        Some(victim) => {
            eprintln!("# fault injection: killing worker {victim} after its first line");
            stream_corpus_inner(config, spec, plan, KillAfter::new(transport, victim, 1))
        }
        None => stream_corpus_inner(config, spec, plan, transport),
    }
}

fn stream_corpus_inner<T: ShardTransport>(
    config: &RunConfig,
    spec: &DataGenConfig,
    plan: &ShardPlan,
    mut transport: T,
) -> Result<ShardReport, String> {
    let graphs = engine::corpus::ensemble(spec);
    let options = StreamOptions {
        timeout: Duration::from_secs(config.timeout_secs.max(1)),
        ..StreamOptions::default()
    };
    let mut out: Box<dyn Write> = match &config.out {
        Some(path) => Box::new(std::io::BufWriter::new(
            std::fs::File::create(path)
                .map_err(|e| format!("could not create {}: {e}", path.display()))?,
        )),
        None => Box::new(std::io::BufWriter::new(std::io::stdout().lock())),
    };
    datagen::write_tsv_header(&mut out).map_err(|e| format!("could not write corpus: {e}"))?;
    let report =
        engine::shard::run_streaming(spec, plan, &mut transport, &options, &mut |record| {
            datagen::write_tsv_record(&mut out, &record, &graphs[record.graph_id])
                .map_err(|e| format!("could not write corpus: {e}"))
        })
        .map_err(|e| e.to_string())?;
    out.flush()
        .map_err(|e| format!("could not write corpus: {e}"))?;
    if let Some(path) = &config.out {
        eprintln!("# corpus written to {}", path.display());
    }
    Ok(report)
}

fn print_report(report: &ShardReport) {
    for (i, stats) in report.per_shard.iter().enumerate() {
        eprintln!(
            "#   shard {i}: graphs {}..{} -> {} cells, {} fn calls ({} cache hits, {} attempt(s))",
            stats.range.start,
            stats.range.end,
            stats.cells,
            stats.function_calls,
            stats.cache_hits,
            stats.attempts,
        );
    }
    eprintln!("# merged: {}", report.summary());
}
