//! Ablation: multistart count in data generation. The paper uses 20 random
//! initializations per instance when building its corpus; this sweep shows
//! how the best-found expectation and the total generation cost scale with
//! the restart budget.
//!
//! Run: `cargo run --release -p bench --bin ablation_restarts [-- --quick]`

use bench::RunConfig;
use graphs::generators;
use ml::metrics::{mean, std_dev};
use optimize::{Lbfgsb, Options};
use qaoa::{MaxCutProblem, QaoaInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config = RunConfig::from_env();
    let n_graphs = if config.quick { 6 } else { 24 };
    let depth = config.max_depth.min(3);
    let budgets = [1usize, 2, 5, 10, 20];

    let mut rng = StdRng::seed_from_u64(config.seed);
    let graphs: Vec<_> = (0..n_graphs)
        .map(|_| generators::erdos_renyi_nonempty(config.nodes, 0.5, &mut rng))
        .collect();
    let optimizer = Lbfgsb::default();
    let options = Options::default();

    println!(
        "# Restart ablation: best AR found vs restart budget, depth {depth}, {n_graphs} ER graphs"
    );
    println!(
        "{:>9} {:>10} {:>10} {:>12}",
        "restarts", "meanAR", "sdAR", "meanFC"
    );
    for &k in &budgets {
        let mut ars = Vec::new();
        let mut fcs = Vec::new();
        for graph in &graphs {
            let problem = MaxCutProblem::new(graph).expect("non-empty graph");
            let instance = QaoaInstance::new(problem, depth).expect("valid depth");
            let mut run_rng = StdRng::seed_from_u64(config.seed ^ (k as u64) << 8);
            let out = instance
                .optimize_multistart(&optimizer, k, &mut run_rng, &options)
                .expect("optimization runs");
            ars.push(out.approximation_ratio);
            fcs.push(out.function_calls as f64);
        }
        println!(
            "{:>9} {:>10.4} {:>10.4} {:>12.1}",
            k,
            mean(&ars),
            std_dev(&ars),
            mean(&fcs)
        );
    }
    println!("\n# Expected shape: AR gains saturate after a handful of restarts while cost");
    println!("# grows linearly — context for the paper's choice of 20.");
}
