//! Table I: run-time (function calls) and quality (approximation ratio)
//! comparison between the naive random-initialization protocol and the
//! proposed two-level ML flow, for L-BFGS-B / Nelder-Mead / SLSQP / COBYLA
//! at target depths 2..5 over the test graphs.
//!
//! Shapes to reproduce: positive FC reduction in every cell, growing with
//! target depth (paper: 12.3% → 65.7%, average 44.9%); ML AR never worse
//! than naive AR.
//!
//! Run: `cargo run --release -p bench --bin table1 [-- --quick] [-- --threads N]`

use bench::RunConfig;
use ml::ModelKind;
use qaoa::evaluation::{table_header, EvaluationConfig};
use qaoa::ParameterPredictor;

fn main() {
    let config = RunConfig::from_env();
    let dataset = config.corpus();
    let (train, test) = dataset.split_by_graph(0.2);
    eprintln!(
        "# training GPR on {} graphs; evaluating on {} test graphs",
        train.graphs().len(),
        test.graphs().len()
    );
    let predictor = ParameterPredictor::train(ModelKind::Gpr, &train).expect("GPR training");

    let scenario = config.scenario().expect("valid scenario flags");
    let eval = EvaluationConfig {
        depths: (2..=config.max_depth.min(5)).collect(),
        naive_starts: config.naive_starts(),
        level1_starts: 1,
        options: bench::cli::scenario::tuned_options(&scenario, Default::default()),
        seed: config.seed,
        scenario,
    };
    let optimizers = optimize::all_optimizers();
    let pool = bench::cli::pool(&config);
    eprintln!(
        "# sweeping {} optimizers x {:?} depths on {} threads, scenario {scenario}...",
        optimizers.len(),
        eval.depths,
        pool.threads()
    );
    let rows = engine::compare::compare(test.graphs(), &optimizers, &predictor, &eval, &pool)
        .expect("comparison sweep");

    println!(
        "# Table I: naive random init vs two-level ML init (FC in thousands of calls, \
         scenario {scenario})"
    );
    println!("{}", table_header());
    let mut reductions = Vec::new();
    for row in &rows {
        println!("{}", row.to_table_line());
        reductions.push(row.fc_reduction_percent());
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len().max(1) as f64;
    let max = reductions.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!("\n# average FC reduction: {avg:.1}% (paper: 44.9%), max: {max:.1}% (paper: 65.7%)");
    println!("# Expected shape: reduction positive everywhere and growing with target depth.");
}
