//! Property-based tests for the dense linear-algebra kernels.

use linalg::{solve_lower_triangular, solve_upper_triangular, Matrix, Vector};
use proptest::prelude::*;

/// Strategy: a well-conditioned SPD matrix `A = B Bᵀ + n·I`.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f64..2.0, n * n).prop_map(move |data| {
        let b = Matrix::from_vec(n, n, data).expect("sized buffer");
        let mut a = b.matmul(&b.transpose()).expect("square product");
        a.add_diagonal(n as f64);
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cholesky_solve_residual_small(
        (a, rhs) in (2usize..7).prop_flat_map(|n| {
            (spd(n), proptest::collection::vec(-5.0f64..5.0, n))
        })
    ) {
        let b = Vector::from(rhs);
        let chol = a.cholesky().expect("SPD by construction");
        let x = chol.solve(&b).expect("solvable");
        let r = &a.matvec(&x).expect("shape ok") - &b;
        prop_assert!(r.norm_inf() < 1e-8, "residual {}", r.norm_inf());
    }

    #[test]
    fn cholesky_logdet_matches_lu_det(a in (2usize..6).prop_flat_map(spd)) {
        let chol = a.cholesky().expect("SPD");
        let det = a.lu().expect("nonsingular").det();
        prop_assert!(det > 0.0);
        prop_assert!((chol.log_det() - det.ln()).abs() < 1e-6 * (1.0 + det.ln().abs()));
    }

    #[test]
    fn lu_solve_residual_small(
        (a, rhs) in (2usize..7).prop_flat_map(|n| {
            (spd(n), proptest::collection::vec(-5.0f64..5.0, n))
        })
    ) {
        let b = Vector::from(rhs);
        let x = a.lu().expect("nonsingular").solve(&b).expect("solvable");
        let r = &a.matvec(&x).expect("shape ok") - &b;
        prop_assert!(r.norm_inf() < 1e-8);
    }

    #[test]
    fn qr_least_squares_normal_equations(
        data in proptest::collection::vec(-3.0f64..3.0, 12),
        rhs in proptest::collection::vec(-3.0f64..3.0, 6),
    ) {
        // 6x2 full-rank-ish design; skip degenerate draws.
        let a = Matrix::from_vec(6, 2, data).expect("sized buffer");
        let b = Vector::from(rhs);
        let Ok(qr) = a.qr() else { return Ok(()); };
        let Ok(x) = qr.solve_least_squares(&b) else { return Ok(()); };
        // Residual orthogonal to the column space: Aᵀ(Ax − b) ≈ 0.
        let r = &a.matvec(&x).expect("shape ok") - &b;
        let atr = a.matvec_t(&r).expect("shape ok");
        prop_assert!(atr.norm_inf() < 1e-7, "normal equations violated: {}", atr.norm_inf());
    }

    #[test]
    fn triangular_solves_invert_matvec(a in (2usize..6).prop_flat_map(spd)) {
        let chol = a.cholesky().expect("SPD");
        let l = chol.factor();
        let ones = Vector::filled(l.rows(), 1.0);
        let b = l.matvec(&ones).expect("shape ok");
        let x = solve_lower_triangular(l, &b).expect("nonsingular L");
        prop_assert!((&x - &ones).norm_inf() < 1e-9);
        let lt = l.transpose();
        let bt = lt.matvec(&ones).expect("shape ok");
        let xt = solve_upper_triangular(&lt, &bt).expect("nonsingular U");
        prop_assert!((&xt - &ones).norm_inf() < 1e-9);
    }

    #[test]
    fn matmul_associative(
        x in proptest::collection::vec(-2.0f64..2.0, 9),
        y in proptest::collection::vec(-2.0f64..2.0, 9),
        z in proptest::collection::vec(-2.0f64..2.0, 9),
    ) {
        let a = Matrix::from_vec(3, 3, x).expect("sized buffer");
        let b = Matrix::from_vec(3, 3, y).expect("sized buffer");
        let c = Matrix::from_vec(3, 3, z).expect("sized buffer");
        let left = a.matmul(&b).expect("ok").matmul(&c).expect("ok");
        let right = a.matmul(&b.matmul(&c).expect("ok")).expect("ok");
        prop_assert!((&left - &right).norm_fro() < 1e-10);
    }

    #[test]
    fn gram_is_positive_semidefinite(
        data in proptest::collection::vec(-3.0f64..3.0, 12)
    ) {
        let a = Matrix::from_vec(4, 3, data).expect("sized buffer");
        let mut g = a.gram();
        // PSD + jitter must be Cholesky-factorizable.
        g.add_diagonal(1e-9);
        prop_assert!(g.cholesky().is_ok());
    }
}
