use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use crate::{axpy, dot, norm2, norm_inf};

/// An owned dense vector of `f64` with arithmetic helpers.
///
/// `Vector` is a thin, ergonomic wrapper over `Vec<f64>`; it exists so the
/// higher layers (optimizers, regression models) read like the math they
/// implement. It dereferences nowhere — use [`Vector::as_slice`] when a plain
/// slice is needed.
///
/// # Example
///
/// ```
/// use linalg::Vector;
/// let a = Vector::from(vec![1.0, 2.0]);
/// let b = Vector::from(vec![3.0, 4.0]);
/// assert_eq!((&a + &b).as_slice(), &[4.0, 6.0]);
/// assert_eq!(a.dot(&b), 11.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates an empty vector.
    #[must_use]
    pub fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Creates a vector of `n` zeros.
    ///
    /// ```
    /// let z = linalg::Vector::zeros(3);
    /// assert_eq!(z.as_slice(), &[0.0, 0.0, 0.0]);
    /// ```
    #[must_use]
    pub fn zeros(n: usize) -> Self {
        Self { data: vec![0.0; n] }
    }

    /// Creates a vector of `n` copies of `value`.
    #[must_use]
    pub fn filled(n: usize, value: f64) -> Self {
        Self {
            data: vec![value; n],
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the vector has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the entries as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrows the entries as a mutable slice.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Dot product with another vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn dot(&self, other: &Vector) -> f64 {
        dot(&self.data, &other.data)
    }

    /// Euclidean norm.
    #[must_use]
    pub fn norm2(&self) -> f64 {
        norm2(&self.data)
    }

    /// Infinity norm.
    #[must_use]
    pub fn norm_inf(&self) -> f64 {
        norm_inf(&self.data)
    }

    /// Sum of all entries.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean; `0.0` for the empty vector.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// `self ← self + alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn axpy(&mut self, alpha: f64, other: &Vector) {
        axpy(alpha, &other.data, &mut self.data);
    }

    /// Returns a new vector scaled by `alpha`.
    #[must_use]
    pub fn scaled(&self, alpha: f64) -> Vector {
        Vector {
            data: self.data.iter().map(|x| alpha * x).collect(),
        }
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Self { data }
    }
}

impl From<&[f64]> for Vector {
    fn from(data: &[f64]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }
}

impl Extend<f64> for Vector {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.6}")?;
        }
        write!(f, "]")
    }
}

impl Add for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector add: length mismatch");
        self.iter().zip(rhs.iter()).map(|(a, b)| a + b).collect()
    }
}

impl Sub for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector sub: length mismatch");
        self.iter().zip(rhs.iter()).map(|(a, b)| a - b).collect()
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl IntoIterator for Vector {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(Vector::new().is_empty());
        assert_eq!(Vector::zeros(2).as_slice(), &[0.0, 0.0]);
        assert_eq!(Vector::filled(2, 3.0).as_slice(), &[3.0, 3.0]);
        let v: Vector = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn arithmetic() {
        let a = Vector::from(vec![1.0, 2.0, 3.0]);
        let b = Vector::from(vec![4.0, 5.0, 6.0]);
        assert_eq!((&a + &b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!((&b - &a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0, -3.0]);
        assert_eq!(a.dot(&b), 32.0);
        assert_eq!(a.sum(), 6.0);
        assert_eq!(a.mean(), 2.0);
        assert_eq!(Vector::new().mean(), 0.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Vector::from(vec![1.0, 1.0]);
        a.axpy(3.0, &Vector::from(vec![1.0, 2.0]));
        assert_eq!(a.as_slice(), &[4.0, 7.0]);
        assert_eq!(a.scaled(0.0).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn indexing_and_mutation() {
        let mut v = Vector::zeros(2);
        v[1] = 5.0;
        assert_eq!(v[1], 5.0);
        v.as_mut_slice()[0] = 2.0;
        assert_eq!(v.into_vec(), vec![2.0, 5.0]);
    }

    #[test]
    fn display_formats_entries() {
        let v = Vector::from(vec![1.0, -0.5]);
        assert_eq!(v.to_string(), "[1.000000, -0.500000]");
    }

    #[test]
    fn extend_appends() {
        let mut v = Vector::from(vec![1.0]);
        v.extend([2.0, 3.0]);
        assert_eq!(v.len(), 3);
    }
}
