use crate::{solve_upper_triangular, LinalgError, Matrix, Vector};

/// Householder QR factorization `A = Q R` of an `m x n` matrix with `m >= n`.
///
/// Used by ordinary least squares (`ml::LinearModel`): the minimizer of
/// `‖A x − b‖₂` is obtained from `R x = Qᵀ b` without forming the (worse-
/// conditioned) normal equations.
///
/// `Q` is kept implicitly as a sequence of Householder reflectors; only the
/// products [`Qr::qt_mul`] and the triangular factor are exposed.
///
/// # Example
///
/// ```
/// use linalg::{Matrix, Vector};
/// # fn main() -> Result<(), linalg::LinalgError> {
/// // Overdetermined fit of y = 2x + 1 through three exact points.
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]])?;
/// let y = Vector::from(vec![1.0, 3.0, 5.0]);
/// let coef = a.qr()?.solve_least_squares(&y)?;
/// assert!((coef[0] - 1.0).abs() < 1e-12 && (coef[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Qr {
    /// Packed factorization: R in the upper triangle, reflector tails below.
    packed: Matrix,
    /// Scalar coefficients of the Householder reflectors.
    tau: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Qr {
    /// Factorizes `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] if `a` has zero rows or columns.
    /// * [`LinalgError::ShapeMismatch`] if `a` has fewer rows than columns
    ///   (underdetermined systems are not supported here).
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty);
        }
        if m < n {
            return Err(LinalgError::ShapeMismatch {
                op: "qr (requires rows >= cols)",
                lhs: (m, n),
                rhs: (n, n),
            });
        }
        let mut r = a.clone();
        let mut tau = vec![0.0; n];
        #[allow(clippy::needless_range_loop)] // k indexes both tau and the packed factor
        for k in 0..n {
            // Build the Householder vector annihilating R[k+1.., k].
            let mut norm = 0.0;
            for i in k..m {
                norm += r.get(i, k) * r.get(i, k);
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let akk = r.get(k, k);
            let alpha = if akk >= 0.0 { -norm } else { norm };
            let v0 = akk - alpha;
            // Store tail of v (normalized by v0) below the diagonal.
            for i in (k + 1)..m {
                let vi = r.get(i, k) / v0;
                r.set(i, k, vi);
            }
            tau[k] = -v0 / alpha;
            r.set(k, k, alpha);
            // Apply the reflector to the remaining columns.
            for j in (k + 1)..n {
                let mut s = r.get(k, j);
                for i in (k + 1)..m {
                    s += r.get(i, k) * r.get(i, j);
                }
                s *= tau[k];
                let rkj = r.get(k, j) - s;
                r.set(k, j, rkj);
                for i in (k + 1)..m {
                    let rij = r.get(i, j) - s * r.get(i, k);
                    r.set(i, j, rij);
                }
            }
        }
        Ok(Self {
            packed: r,
            tau,
            rows: m,
            cols: n,
        })
    }

    /// The `n x n` upper-triangular factor `R`.
    #[must_use]
    pub fn r(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.cols, |i, j| {
            if j >= i {
                self.packed.get(i, j)
            } else {
                0.0
            }
        })
    }

    /// Applies `Qᵀ` to a length-`m` vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != m`.
    pub fn qt_mul(&self, b: &Vector) -> Result<Vector, LinalgError> {
        if b.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "qr qt_mul",
                lhs: (self.rows, self.cols),
                rhs: (b.len(), 1),
            });
        }
        let mut y = b.clone();
        for k in 0..self.cols {
            if self.tau[k] == 0.0 {
                continue;
            }
            let mut s = y[k];
            for i in (k + 1)..self.rows {
                s += self.packed.get(i, k) * y[i];
            }
            s *= self.tau[k];
            y[k] -= s;
            for i in (k + 1)..self.rows {
                y[i] -= s * self.packed.get(i, k);
            }
        }
        Ok(y)
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] if `b.len() != m`.
    /// * [`LinalgError::Singular`] if `A` is (numerically) rank-deficient.
    pub fn solve_least_squares(&self, b: &Vector) -> Result<Vector, LinalgError> {
        let y = self.qt_mul(b)?;
        let head: Vector = y.as_slice()[..self.cols].into();
        solve_upper_triangular(&self.r(), &head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_solve_exact() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = Vector::from(vec![1.0, -1.0]);
        let b = a.matvec(&x).unwrap();
        let got = a.qr().unwrap().solve_least_squares(&b).unwrap();
        assert!((&got - &x).norm_inf() < 1e-12);
    }

    #[test]
    fn r_is_upper_triangular_with_correct_magnitude() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[4.0, 2.0]]).unwrap();
        let qr = a.qr().unwrap();
        let r = qr.r();
        assert_eq!(r.get(1, 0), 0.0);
        // |R00| is the norm of the first column of A = 5.
        assert!((r.get(0, 0).abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn overdetermined_least_squares_residual_orthogonal() {
        // Noisy line fit; residual must be orthogonal to the column space.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let b = Vector::from(vec![0.1, 0.9, 2.1, 2.9]);
        let x = a.qr().unwrap().solve_least_squares(&b).unwrap();
        let r = &a.matvec(&x).unwrap() - &b;
        let atr = a.matvec_t(&r).unwrap();
        assert!(atr.norm_inf() < 1e-12);
    }

    #[test]
    fn qt_preserves_norm() {
        let a = Matrix::from_fn(5, 3, |i, j| ((i * 7 + j * 3) % 5) as f64 + 1.0);
        let qr = a.qr().unwrap();
        let b = Vector::from(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let y = qr.qt_mul(&b).unwrap();
        assert!((y.norm2() - b.norm2()).abs() < 1e-12);
    }

    #[test]
    fn rank_deficient_detected() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]).unwrap();
        let res = a.qr().unwrap().solve_least_squares(&Vector::zeros(3));
        assert!(matches!(res, Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn shape_errors() {
        assert!(Qr::new(&Matrix::zeros(2, 3)).is_err());
        let qr = Matrix::identity(3).qr().unwrap();
        assert!(qr.qt_mul(&Vector::zeros(2)).is_err());
    }
}
