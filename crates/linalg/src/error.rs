use std::error::Error;
use std::fmt;

/// Error type for all fallible operations in this crate.
///
/// ```
/// use linalg::{LinalgError, Matrix};
/// let err = Matrix::from_rows(&[&[1.0][..], &[1.0, 2.0][..]]).unwrap_err();
/// assert!(matches!(err, LinalgError::ShapeMismatch { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Operand dimensions are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the offending operation.
        op: &'static str,
        /// Shape of the left/first operand, `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right/second operand, `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A factorization required a square matrix but got a rectangular one.
    NotSquare {
        /// Shape of the offending matrix.
        shape: (usize, usize),
    },
    /// Cholesky failed: the matrix is not (numerically) positive definite.
    NotPositiveDefinite {
        /// Index of the pivot that became non-positive.
        pivot: usize,
    },
    /// A solver hit an (exactly or numerically) singular pivot.
    Singular {
        /// Index of the singular pivot.
        pivot: usize,
    },
    /// A matrix with zero rows or columns was passed where data is required.
    Empty,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix is not square: {}x{}", shape.0, shape.1)
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite at pivot {pivot}")
            }
            LinalgError::Singular { pivot } => write!(f, "matrix is singular at pivot {pivot}"),
            LinalgError::Empty => write!(f, "matrix has no data"),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(e.to_string(), "shape mismatch in matmul: 2x3 vs 4x5");
        assert_eq!(
            LinalgError::NotSquare { shape: (2, 3) }.to_string(),
            "matrix is not square: 2x3"
        );
        assert_eq!(
            LinalgError::NotPositiveDefinite { pivot: 1 }.to_string(),
            "matrix is not positive definite at pivot 1"
        );
        assert_eq!(
            LinalgError::Singular { pivot: 0 }.to_string(),
            "matrix is singular at pivot 0"
        );
        assert_eq!(LinalgError::Empty.to_string(), "matrix has no data");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
