//! Dense real linear algebra for the `qaoa-ml` workspace.
//!
//! This crate provides the small-to-medium dense kernels that the
//! machine-learning substrate ([`ml`](../ml/index.html)) and the classical
//! optimizers ([`optimize`](../optimize/index.html)) need:
//!
//! * [`Matrix`] — a row-major dense matrix of `f64`,
//! * [`Vector`] — an owned dense vector with arithmetic helpers,
//! * [`Cholesky`] — SPD factorization used by Gaussian-process regression,
//! * [`Qr`] — Householder QR used by ordinary least squares,
//! * [`Lu`] — partially-pivoted LU used as a general solver,
//! * free functions for norms, dot products and triangular solves.
//!
//! Everything is implemented from scratch (no BLAS/LAPACK) because the paper
//! reproduction must run in a hermetic environment; matrices here are at most
//! a few hundred rows (330 training graphs), where naive `O(n^3)` kernels are
//! entirely adequate.
//!
//! # Example
//!
//! ```
//! use linalg::{Matrix, Vector};
//!
//! # fn main() -> Result<(), linalg::LinalgError> {
//! // Solve the normal equations of a tiny least-squares problem.
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let b = Vector::from(vec![1.0, 2.0]);
//! let chol = a.cholesky()?;
//! let x = chol.solve(&b)?;
//! let r = &a.matvec(&x)? - &b;
//! assert!(r.norm2() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod cholesky;
mod eigen;
mod error;
mod lu;
mod matrix;
mod qr;
mod solve;
mod vector;

pub use cholesky::Cholesky;
pub use eigen::SymmetricEigen;
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use qr::Qr;
pub use solve::{solve_lower_triangular, solve_upper_triangular};
pub use vector::Vector;

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// assert_eq!(linalg::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
///
/// ```
/// assert!((linalg::norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
/// ```
#[must_use]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Infinity norm (largest absolute entry) of a slice; `0.0` for empty input.
///
/// ```
/// assert_eq!(linalg::norm_inf(&[1.0, -7.0, 3.0]), 7.0);
/// ```
#[must_use]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
}

/// `y ← y + alpha * x` over equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot(&[1.0, -1.0], &[1.0, 1.0]), 0.0);
        assert_eq!(norm_inf(&[]), 0.0);
        assert!((norm2(&[1.0; 16]) - 4.0).abs() < 1e-15);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 2.0];
        axpy(2.0, &[10.0, 20.0], &mut y);
        assert_eq!(y, vec![21.0, 42.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
