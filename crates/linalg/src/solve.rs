use crate::{LinalgError, Matrix, Vector};

/// Solves `L x = b` for lower-triangular `L` by forward substitution.
///
/// Only the lower triangle (including the diagonal) of `l` is read, so a
/// packed factor stored in a full square matrix works directly.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] if `l` is rectangular.
/// * [`LinalgError::ShapeMismatch`] if `b.len() != l.rows()`.
/// * [`LinalgError::Singular`] if a diagonal entry is (numerically) zero.
///
/// # Example
///
/// ```
/// use linalg::{solve_lower_triangular, Matrix, Vector};
/// # fn main() -> Result<(), linalg::LinalgError> {
/// let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]])?;
/// let x = solve_lower_triangular(&l, &Vector::from(vec![4.0, 11.0]))?;
/// assert_eq!(x.as_slice(), &[2.0, 3.0]);
/// # Ok(())
/// # }
/// ```
pub fn solve_lower_triangular(l: &Matrix, b: &Vector) -> Result<Vector, LinalgError> {
    let n = check_triangular(l, b)?;
    let mut x = Vector::zeros(n);
    for i in 0..n {
        let mut s = b[i];
        for j in 0..i {
            s -= l.get(i, j) * x[j];
        }
        let d = l.get(i, i);
        if d.abs() < f64::EPSILON * 16.0 {
            return Err(LinalgError::Singular { pivot: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solves `U x = b` for upper-triangular `U` by back substitution.
///
/// Only the upper triangle (including the diagonal) of `u` is read.
///
/// # Errors
///
/// Same conditions as [`solve_lower_triangular`].
pub fn solve_upper_triangular(u: &Matrix, b: &Vector) -> Result<Vector, LinalgError> {
    let n = check_triangular(u, b)?;
    let mut x = Vector::zeros(n);
    for i in (0..n).rev() {
        let mut s = b[i];
        for j in (i + 1)..n {
            s -= u.get(i, j) * x[j];
        }
        let d = u.get(i, i);
        if d.abs() < f64::EPSILON * 16.0 {
            return Err(LinalgError::Singular { pivot: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

fn check_triangular(m: &Matrix, b: &Vector) -> Result<usize, LinalgError> {
    if !m.is_square() {
        return Err(LinalgError::NotSquare { shape: m.shape() });
    }
    if b.len() != m.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "triangular solve",
            lhs: m.shape(),
            rhs: (b.len(), 1),
        });
    }
    Ok(m.rows())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_solve_roundtrip() {
        let u = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 4.0]]).unwrap();
        let x = Vector::from(vec![1.0, -2.0]);
        let b = u.matvec(&x).unwrap();
        let got = solve_upper_triangular(&u, &b).unwrap();
        assert!((&got - &x).norm_inf() < 1e-14);
    }

    #[test]
    fn lower_solve_roundtrip() {
        let l = Matrix::from_rows(&[&[3.0, 0.0, 0.0], &[1.0, 2.0, 0.0], &[4.0, 5.0, 6.0]]).unwrap();
        let x = Vector::from(vec![1.0, 2.0, 3.0]);
        let b = l.matvec(&x).unwrap();
        let got = solve_lower_triangular(&l, &b).unwrap();
        assert!((&got - &x).norm_inf() < 1e-14);
    }

    #[test]
    fn singular_diag_rejected() {
        let l = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]).unwrap();
        assert!(matches!(
            solve_lower_triangular(&l, &Vector::zeros(2)),
            Err(LinalgError::Singular { pivot: 0 })
        ));
    }

    #[test]
    fn shape_errors() {
        let rect = Matrix::zeros(2, 3);
        assert!(solve_upper_triangular(&rect, &Vector::zeros(2)).is_err());
        let sq = Matrix::identity(2);
        assert!(solve_upper_triangular(&sq, &Vector::zeros(3)).is_err());
    }

    #[test]
    fn ignores_opposite_triangle() {
        // Garbage above the diagonal must not affect a lower solve.
        let l = Matrix::from_rows(&[&[1.0, 99.0], &[2.0, 1.0]]).unwrap();
        let x = solve_lower_triangular(&l, &Vector::from(vec![1.0, 3.0])).unwrap();
        assert_eq!(x.as_slice(), &[1.0, 1.0]);
    }
}
