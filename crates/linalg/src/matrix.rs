use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::{Cholesky, LinalgError, Lu, Qr, Vector};

/// A dense, row-major matrix of `f64`.
///
/// Sized for the workloads in this workspace (Gram matrices of a few hundred
/// training points, QAOA Hessian approximations of ≤ 12 parameters); all
/// kernels are straightforward `O(n^3)` loops.
///
/// # Example
///
/// ```
/// use linalg::Matrix;
/// # fn main() -> Result<(), linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = a.transpose();
/// let c = a.matmul(&b)?;
/// assert_eq!(c.get(0, 0), 5.0); // 1*1 + 2*2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    ///
    /// ```
    /// let i = linalg::Matrix::identity(2);
    /// assert_eq!(i.get(0, 0), 1.0);
    /// assert_eq!(i.get(0, 1), 0.0);
    /// ```
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for zero rows and
    /// [`LinalgError::ShapeMismatch`] if rows have differing lengths.
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Result<Self, LinalgError> {
        if rows.is_empty() || rows[0].as_ref().is_empty() {
            return Err(LinalgError::Empty);
        }
        let cols = rows[0].as_ref().len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            let r = r.as_ref();
            if r.len() != cols {
                return Err(LinalgError::ShapeMismatch {
                    op: "from_rows",
                    lhs: (i, cols),
                    rhs: (i, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    #[must_use]
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` if the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or `j >= cols`.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        self.data[i * self.cols + j]
    }

    /// Sets the entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or `j >= cols`.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        self.data[i * self.cols + j] = value;
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[must_use]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    #[must_use]
    pub fn col(&self, j: usize) -> Vector {
        assert!(j < self.cols, "column index out of bounds");
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Borrows the flat row-major storage.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != cols`.
    pub fn matvec(&self, x: &Vector) -> Result<Vector, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| crate::dot(self.row(i), x.as_slice()))
            .collect())
    }

    /// Transposed matrix-vector product `Aᵀ x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != rows`.
    pub fn matvec_t(&self, x: &Vector) -> Result<Vector, LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec_t",
                lhs: (self.cols, self.rows),
                rhs: (x.len(), 1),
            });
        }
        let mut out = Vector::zeros(self.cols);
        for i in 0..self.rows {
            let xi = x[i];
            for j in 0..self.cols {
                out[j] += self.get(i, j) * xi;
            }
        }
        Ok(out)
    }

    /// Matrix product `A B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += aik * other.get(k, j);
                }
            }
        }
        Ok(out)
    }

    /// Gram product `Aᵀ A` (always symmetric positive semi-definite).
    #[must_use]
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.rows {
            let row = self.row(i);
            for a in 0..self.cols {
                for b in a..self.cols {
                    out.data[a * self.cols + b] += row[a] * row[b];
                }
            }
        }
        for a in 0..self.cols {
            for b in 0..a {
                out.data[a * self.cols + b] = out.data[b * self.cols + a];
            }
        }
        out
    }

    /// Frobenius norm.
    #[must_use]
    pub fn norm_fro(&self) -> f64 {
        crate::norm2(&self.data)
    }

    /// Maximum absolute deviation from symmetry; `0.0` for symmetric matrices.
    #[must_use]
    pub fn asymmetry(&self) -> f64 {
        if !self.is_square() {
            return f64::INFINITY;
        }
        let mut worst = 0.0_f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self.get(i, j) - self.get(j, i)).abs());
            }
        }
        worst
    }

    /// Adds `value` to every diagonal entry (jitter / ridge regularization).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, value: f64) {
        assert!(self.is_square(), "add_diagonal requires a square matrix");
        for i in 0..self.rows {
            self.data[i * self.cols + i] += value;
        }
    }

    /// Computes the Cholesky factorization; see [`Cholesky::new`].
    ///
    /// # Errors
    ///
    /// Propagates [`LinalgError::NotSquare`] and
    /// [`LinalgError::NotPositiveDefinite`].
    pub fn cholesky(&self) -> Result<Cholesky, LinalgError> {
        Cholesky::new(self)
    }

    /// Computes the Householder QR factorization; see [`Qr::new`].
    ///
    /// # Errors
    ///
    /// Propagates [`LinalgError::Empty`].
    pub fn qr(&self) -> Result<Qr, LinalgError> {
        Qr::new(self)
    }

    /// Computes the partially-pivoted LU factorization; see [`Lu::new`].
    ///
    /// # Errors
    ///
    /// Propagates [`LinalgError::NotSquare`] and [`LinalgError::Singular`].
    pub fn lu(&self) -> Result<Lu, LinalgError> {
        Lu::new(self)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix add: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix sub: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * rhs).collect(),
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self.get(i, j))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abcd() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap()
    }

    #[test]
    fn construction_and_access() {
        let m = abcd();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(1).as_slice(), &[2.0, 4.0]);
        assert!(Matrix::from_rows::<&[f64]>(&[]).is_err());
        assert!(Matrix::from_rows(&[&[1.0][..], &[1.0, 2.0][..]]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
    }

    #[test]
    fn from_fn_fills() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 2, |i, j| (i + 10 * j) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (2, 3));
    }

    #[test]
    fn matvec_matches_manual() {
        let m = abcd();
        let x = Vector::from(vec![1.0, 1.0]);
        assert_eq!(m.matvec(&x).unwrap().as_slice(), &[3.0, 7.0]);
        assert_eq!(m.matvec_t(&x).unwrap().as_slice(), &[4.0, 6.0]);
        assert!(m.matvec(&Vector::zeros(3)).is_err());
        assert!(m.matvec_t(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn matmul_identity() {
        let m = abcd();
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);
        assert!(m.matmul(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn gram_equals_at_a() {
        let m = Matrix::from_fn(4, 3, |i, j| ((i + 1) * (j + 2)) as f64);
        let g = m.gram();
        let expect = m.transpose().matmul(&m).unwrap();
        assert!((&g - &expect).norm_fro() < 1e-12);
        assert_eq!(g.asymmetry(), 0.0);
    }

    #[test]
    fn diagonal_and_norms() {
        let mut m = Matrix::identity(2);
        m.add_diagonal(1.0);
        assert_eq!(m.get(0, 0), 2.0);
        assert!((abcd().norm_fro() - 30.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(Matrix::zeros(2, 3).asymmetry(), f64::INFINITY);
    }

    #[test]
    fn elementwise_ops() {
        let m = abcd();
        let sum = &m + &m;
        assert_eq!(sum.get(1, 1), 8.0);
        let diff = &sum - &m;
        assert_eq!(diff, m);
        let scaled = &m * 0.5;
        assert_eq!(scaled.get(0, 0), 0.5);
    }

    #[test]
    fn display_has_rows() {
        let s = abcd().to_string();
        assert!(s.contains("[1.000000, 2.000000]"));
    }
}
