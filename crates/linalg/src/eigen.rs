use crate::{LinalgError, Matrix};

/// Eigendecomposition of a real symmetric matrix by the cyclic Jacobi
/// rotation method.
///
/// Jacobi iterates plane rotations that zero one off-diagonal pair at a
/// time; for the small dense matrices in this workspace (graph Laplacians
/// of ≤ 26-node problems, GPR kernel matrices of a few hundred rows) it is
/// simple, unconditionally stable and accurate to machine precision.
///
/// # Example
///
/// ```
/// use linalg::{Matrix, SymmetricEigen};
/// # fn main() -> Result<(), linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]])?;
/// let eig = SymmetricEigen::new(&a)?;
/// // Eigenvalues of [[2,1],[1,2]] are 1 and 3, ascending.
/// assert!((eig.eigenvalues()[0] - 1.0).abs() < 1e-12);
/// assert!((eig.eigenvalues()[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SymmetricEigen {
    eigenvalues: Vec<f64>,
    /// Column `j` is the eigenvector of `eigenvalues[j]`.
    eigenvectors: Matrix,
}

impl SymmetricEigen {
    /// Decomposes `a`, which must be square and symmetric (asymmetry up to
    /// `1e-9` in max norm is tolerated and symmetrized away).
    ///
    /// Eigenvalues are returned in ascending order with matching
    /// eigenvector columns.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] for a rectangular input.
    /// * [`LinalgError::ShapeMismatch`] if `a` is materially asymmetric.
    /// * [`LinalgError::Empty`] for a 0×0 input.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        if a.asymmetry() > 1e-9 {
            return Err(LinalgError::ShapeMismatch {
                op: "symmetric eigendecomposition of an asymmetric matrix",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }

        // Work on the symmetrized copy.
        let mut m = Matrix::from_fn(n, n, |i, j| 0.5 * (a.get(i, j) + a.get(j, i)));
        let mut v = Matrix::identity(n);

        const MAX_SWEEPS: usize = 100;
        for _ in 0..MAX_SWEEPS {
            let mut off = 0.0_f64;
            for i in 0..n {
                for j in (i + 1)..n {
                    off = off.max(m.get(i, j).abs());
                }
            }
            if off < 1e-14 {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m.get(p, q);
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    let app = m.get(p, p);
                    let aqq = m.get(q, q);
                    // Rotation angle zeroing (p, q).
                    let theta = 0.5 * (aqq - app) / apq;
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;

                    // Apply Jᵀ M J on rows/cols p and q.
                    for k in 0..n {
                        let mkp = m.get(k, p);
                        let mkq = m.get(k, q);
                        m.set(k, p, c * mkp - s * mkq);
                        m.set(k, q, s * mkp + c * mkq);
                    }
                    for k in 0..n {
                        let mpk = m.get(p, k);
                        let mqk = m.get(q, k);
                        m.set(p, k, c * mpk - s * mqk);
                        m.set(q, k, s * mpk + c * mqk);
                    }
                    // Accumulate eigenvectors.
                    for k in 0..n {
                        let vkp = v.get(k, p);
                        let vkq = v.get(k, q);
                        v.set(k, p, c * vkp - s * vkq);
                        v.set(k, q, s * vkp + c * vkq);
                    }
                }
            }
        }

        // Sort ascending, permuting eigenvector columns along.
        let mut order: Vec<usize> = (0..n).collect();
        let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
        order.sort_by(|&i, &j| diag[i].total_cmp(&diag[j]));
        let eigenvalues: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
        let eigenvectors = Matrix::from_fn(n, n, |i, j| v.get(i, order[j]));

        Ok(Self {
            eigenvalues,
            eigenvectors,
        })
    }

    /// Eigenvalues in ascending order.
    #[must_use]
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Eigenvector matrix; column `j` pairs with `eigenvalues()[j]`.
    #[must_use]
    pub fn eigenvectors(&self) -> &Matrix {
        &self.eigenvectors
    }

    /// Problem dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Max-norm residual `‖A V − V Λ‖` against the original matrix
    /// (diagnostic; ≈ 1e-13 for well-scaled inputs).
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] if `a` has the wrong dimension.
    pub fn residual(&self, a: &Matrix) -> Result<f64, LinalgError> {
        let n = self.dim();
        if a.shape() != (n, n) {
            return Err(LinalgError::ShapeMismatch {
                op: "eigen residual",
                lhs: a.shape(),
                rhs: (n, n),
            });
        }
        let av = a.matmul(&self.eigenvectors)?;
        let mut dev = 0.0_f64;
        for i in 0..n {
            for j in 0..n {
                let vl = self.eigenvectors.get(i, j) * self.eigenvalues[j];
                dev = dev.max((av.get(i, j) - vl).abs());
            }
        }
        Ok(dev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -1.0]]).unwrap();
        let e = SymmetricEigen::new(&a).unwrap();
        assert_eq!(e.eigenvalues(), &[-1.0, 3.0]);
        assert!(e.residual(&a).unwrap() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let e = SymmetricEigen::new(&a).unwrap();
        assert!((e.eigenvalues()[0] - 1.0).abs() < 1e-12);
        assert!((e.eigenvalues()[1] - 3.0).abs() < 1e-12);
        // Eigenvectors are (1,-1)/√2 and (1,1)/√2 up to sign.
        let v0 = (e.eigenvectors().get(0, 0), e.eigenvectors().get(1, 0));
        assert!((v0.0 + v0.1).abs() < 1e-10);
    }

    #[test]
    fn trace_and_orthonormality_preserved() {
        // A fixed 5x5 symmetric matrix.
        let a = Matrix::from_fn(5, 5, |i, j| {
            let (i, j) = (i as f64, j as f64);
            (i + 1.0) * (j + 1.0) / 5.0 + if i == j { 2.0 } else { 0.0 }
        });
        let e = SymmetricEigen::new(&a).unwrap();
        let trace: f64 = (0..5).map(|i| a.get(i, i)).sum();
        let sum: f64 = e.eigenvalues().iter().sum();
        assert!((trace - sum).abs() < 1e-10);
        assert!(e.residual(&a).unwrap() < 1e-10);
        // VᵀV = I.
        let vtv = e
            .eigenvectors()
            .transpose()
            .matmul(e.eigenvectors())
            .unwrap();
        for i in 0..5 {
            for j in 0..5 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((vtv.get(i, j) - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn ascending_order() {
        let a = Matrix::from_fn(6, 6, |i, j| if i == j { (6 - i) as f64 } else { 0.1 });
        let e = SymmetricEigen::new(&a).unwrap();
        for w in e.eigenvalues().windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn errors() {
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(
            SymmetricEigen::new(&rect),
            Err(LinalgError::NotSquare { .. })
        ));
        let asym = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert!(matches!(
            SymmetricEigen::new(&asym),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        let empty = Matrix::zeros(0, 0);
        assert!(SymmetricEigen::new(&empty).is_err());
        // Residual dimension check.
        let a = Matrix::identity(2);
        let e = SymmetricEigen::new(&a).unwrap();
        assert!(e.residual(&Matrix::identity(3)).is_err());
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[&[7.5]]).unwrap();
        let e = SymmetricEigen::new(&a).unwrap();
        assert_eq!(e.eigenvalues(), &[7.5]);
        assert_eq!(e.eigenvectors().get(0, 0).abs(), 1.0);
    }
}
