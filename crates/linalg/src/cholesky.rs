use crate::{solve_lower_triangular, solve_upper_triangular, LinalgError, Matrix, Vector};

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite matrix.
///
/// This is the workhorse behind Gaussian-process regression
/// (`ml::GprModel`): fitting solves `(K + σ²I) α = y` through this
/// factorization and the log-marginal likelihood needs `log det = 2 Σ log Lᵢᵢ`.
///
/// # Example
///
/// ```
/// use linalg::{Matrix, Vector};
/// # fn main() -> Result<(), linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0],
///                             &[15.0, 18.0,  0.0],
///                             &[-5.0,  0.0, 11.0]])?;
/// let chol = a.cholesky()?;
/// let x = chol.solve(&Vector::from(vec![1.0, 2.0, 3.0]))?;
/// let residual = &a.matvec(&x)? - &Vector::from(vec![1.0, 2.0, 3.0]);
/// assert!(residual.norm2() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; mild asymmetry from floating-
    /// point noise is therefore harmless.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is rectangular.
    /// * [`LinalgError::NotPositiveDefinite`] if a pivot is non-positive,
    ///   which is also the practical test for positive definiteness.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a.get(i, j);
                for k in 0..j {
                    s -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l.set(i, j, s.sqrt());
                } else {
                    l.set(i, j, s / l.get(j, j));
                }
            }
        }
        Ok(Self { l })
    }

    /// Borrows the lower-triangular factor `L`.
    #[must_use]
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` via the two triangular solves `L y = b`, `Lᵀ x = y`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len()` does not match the
    /// factored dimension.
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        let y = solve_lower_triangular(&self.l, b)?;
        solve_upper_triangular(&self.l.transpose(), &y)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.rows()` does not match
    /// the factored dimension.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        if b.rows() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve_matrix",
                lhs: self.l.shape(),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let x = self.solve(&b.col(j))?;
            for i in 0..b.rows() {
                out.set(i, j, x[i]);
            }
        }
        Ok(out)
    }

    /// Natural log of `det A = (Π Lᵢᵢ)²`, computed stably as `2 Σ log Lᵢᵢ`.
    #[must_use]
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l.get(i, i).ln()).sum::<f64>() * 2.0
    }

    /// Inverse of the factored matrix (used sparingly; prefer [`Self::solve`]).
    ///
    /// # Errors
    ///
    /// Propagates triangular-solve errors, which cannot occur for a factor
    /// produced by [`Cholesky::new`].
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]]).unwrap()
    }

    #[test]
    fn reconstructs_input() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let l = c.factor();
        let back = l.matmul(&l.transpose()).unwrap();
        assert!((&back - &a).norm_fro() < 1e-12);
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd3();
        let c = a.cholesky().unwrap();
        let b = Vector::from(vec![1.0, -2.0, 0.5]);
        let x = c.solve(&b).unwrap();
        assert!((&a.matvec(&x).unwrap() - &b).norm_inf() < 1e-12);
    }

    #[test]
    fn solve_matrix_and_inverse() {
        let a = spd3();
        let c = a.cholesky().unwrap();
        let inv = c.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!((&prod - &Matrix::identity(3)).norm_fro() < 1e-10);
        assert!(c.solve_matrix(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn log_det_matches_known_value() {
        // det of diag(2, 3) = 6.
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]).unwrap();
        let c = a.cholesky().unwrap();
        assert!((c.log_det() - 6.0_f64.ln()).abs() < 1e-14);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { pivot: 1 })
        ));
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(
            Cholesky::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[&[9.0]]).unwrap();
        let c = a.cholesky().unwrap();
        assert_eq!(c.factor().get(0, 0), 3.0);
        assert_eq!(c.solve(&Vector::from(vec![18.0])).unwrap()[0], 2.0);
    }
}
