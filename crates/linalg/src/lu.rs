use crate::{LinalgError, Matrix, Vector};

/// LU factorization with partial pivoting, `P A = L U`.
///
/// General-purpose square solver used where symmetry cannot be guaranteed
/// (e.g. the KKT-style systems assembled by the SLSQP optimizer's QP
/// subproblem).
///
/// # Example
///
/// ```
/// use linalg::{Matrix, Vector};
/// # fn main() -> Result<(), linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]])?; // needs pivoting
/// let lu = a.lu()?;
/// let x = lu.solve(&Vector::from(vec![2.0, 2.0]))?;
/// assert!((x[0] - 1.0).abs() < 1e-14 && (x[1] - 1.0).abs() < 1e-14);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Lu {
    /// Packed L (unit diagonal, below) and U (on and above the diagonal).
    packed: Matrix,
    /// Row permutation: row `i` of the factor came from row `perm[i]` of `A`.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinants.
    sign: f64,
}

impl Lu {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is rectangular.
    /// * [`LinalgError::Singular`] if no usable pivot exists in some column.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut m = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Partial pivot: largest |entry| in column k at or below row k.
            let (mut pivot_row, mut pivot_val) = (k, m.get(k, k).abs());
            for i in (k + 1)..n {
                let v = m.get(i, k).abs();
                if v > pivot_val {
                    pivot_row = i;
                    pivot_val = v;
                }
            }
            if pivot_val < f64::EPSILON * 16.0 {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                perm.swap(k, pivot_row);
                sign = -sign;
                for j in 0..n {
                    let tmp = m.get(k, j);
                    m.set(k, j, m.get(pivot_row, j));
                    m.set(pivot_row, j, tmp);
                }
            }
            let pivot = m.get(k, k);
            for i in (k + 1)..n {
                let factor = m.get(i, k) / pivot;
                m.set(i, k, factor);
                for j in (k + 1)..n {
                    let v = m.get(i, j) - factor * m.get(k, j);
                    m.set(i, j, v);
                }
            }
        }
        Ok(Self {
            packed: m,
            perm,
            sign,
        })
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.packed.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len()` does not match the
    /// factored dimension.
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation, then forward substitution with unit-lower L.
        let mut x = Vector::zeros(n);
        for i in 0..n {
            x[i] = b[self.perm[i]];
        }
        for i in 0..n {
            for j in 0..i {
                let xi = x[i] - self.packed.get(i, j) * x[j];
                x[i] = xi;
            }
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                let xi = x[i] - self.packed.get(i, j) * x[j];
                x[i] = xi;
            }
            let xi = x[i] / self.packed.get(i, i);
            x[i] = xi;
        }
        Ok(x)
    }

    /// Determinant of the factored matrix.
    #[must_use]
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.packed.get(i, i);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_random_system() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[4.0, -6.0, 0.0], &[-2.0, 7.0, 2.0]]).unwrap();
        let x = Vector::from(vec![1.0, 2.0, 3.0]);
        let b = a.matvec(&x).unwrap();
        let got = a.lu().unwrap().solve(&b).unwrap();
        assert!((&got - &x).norm_inf() < 1e-12);
    }

    #[test]
    fn det_matches_closed_form() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert!((a.lu().unwrap().det() + 2.0).abs() < 1e-14);
        // Permutation sign: swapping rows flips determinant sign.
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[1.0, 2.0]]).unwrap();
        assert!((b.lu().unwrap().det() - 2.0).abs() < 1e-14);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a
            .lu()
            .unwrap()
            .solve(&Vector::from(vec![5.0, 7.0]))
            .unwrap();
        assert_eq!(x.as_slice(), &[7.0, 5.0]);
    }

    #[test]
    fn singular_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(a.lu(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn shape_errors() {
        assert!(Lu::new(&Matrix::zeros(2, 3)).is_err());
        let lu = Matrix::identity(2).lu().unwrap();
        assert!(lu.solve(&Vector::zeros(3)).is_err());
    }
}
