//! Evaluation scenarios: one switch selecting *how* a QAOA objective is
//! evaluated — exactly, from finite measurement shots, or under a per-gate
//! depolarizing noise model — behind a single instance type the drivers and
//! the engine can thread through every protocol.
//!
//! Each variant stays a pure function of `(problem, depth, scenario,
//! base_seed)`: the sampled path derives its shot RNG schedule and its SPSA
//! perturbation seed from `base_seed` (domain-separated), and the noisy
//! path is deterministic outright. That is what lets scenario workloads run
//! through `engine::batch`/`compare` with the serial ≡ parallel bit-parity
//! guarantee unchanged.
//!
//! # Example
//!
//! ```
//! use graphs::generators;
//! use optimize::{Lbfgsb, Options};
//! use qaoa::{scenario::{Scenario, ScenarioInstance}, MaxCutProblem};
//!
//! # fn main() -> Result<(), qaoa::QaoaError> {
//! let problem = MaxCutProblem::new(&generators::cycle(4))?;
//! let scenario = Scenario::Sampled { shots: 1024 };
//! let inst = ScenarioInstance::new(problem, 1, &scenario, 2020)?;
//! let out = inst.optimize(
//!     &Lbfgsb::default(), // ignored: sampled scenarios always run SPSA
//!     &[0.7, 0.4],
//!     &Options::default().with_max_iters(40),
//! )?;
//! assert!(out.approximation_ratio > 0.0);
//! # Ok(())
//! # }
//! ```

use std::fmt;

use optimize::{Optimizer, Options, Spsa};
use qsim::NoiseModel;
use rand::Rng;

use crate::instance::InstanceOutcome;
use crate::noisy::NoisyQaoa;
use crate::sampled::SampledExpectation;
use crate::stablehash::mix64;
use crate::{MaxCutProblem, QaoaError, QaoaInstance};

/// Domain separators so the shot schedule and the SPSA perturbation stream
/// derived from one job seed never collide.
const SHOT_DOMAIN: u64 = 0x5348_4f54_5348_4f54; // "SHOTSHOT"
const SPSA_DOMAIN: u64 = 0x5350_5341_5350_5341; // "SPSASPSA"

/// How a QAOA objective evaluation is performed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scenario {
    /// Exact state-vector expectation (the paper's setting).
    Exact,
    /// Finite-shot estimation of `⟨C⟩`: each objective evaluation draws
    /// `shots` basis states from the Born distribution. Optimized with
    /// SPSA.
    Sampled {
        /// Measurement shots per objective evaluation.
        shots: u32,
    },
    /// Density-matrix evaluation with uniform depolarizing noise after
    /// every gate.
    Noisy {
        /// Depolarizing probability after each one-qubit gate.
        p1: f64,
        /// Depolarizing probability after each two-qubit gate.
        p2: f64,
    },
}

impl Scenario {
    /// `true` for the exact (noiseless, infinite-shot) scenario.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        matches!(self, Scenario::Exact)
    }

    /// Checks the configuration without building anything.
    ///
    /// # Errors
    ///
    /// [`QaoaError::InvalidScenario`] for zero shots or a noise probability
    /// outside `[0, 1]` (or non-finite).
    pub fn validate(&self) -> Result<(), QaoaError> {
        match *self {
            Scenario::Exact => Ok(()),
            Scenario::Sampled { shots } => {
                if shots == 0 {
                    return Err(QaoaError::InvalidScenario {
                        reason: "sampled objective needs at least one shot",
                    });
                }
                Ok(())
            }
            Scenario::Noisy { p1, p2 } => {
                if !(p1.is_finite()
                    && p2.is_finite()
                    && (0.0..=1.0).contains(&p1)
                    && (0.0..=1.0).contains(&p2))
                {
                    return Err(QaoaError::InvalidScenario {
                        reason: "noise probabilities must be finite and within [0, 1]",
                    });
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scenario::Exact => write!(f, "exact"),
            Scenario::Sampled { shots } => write!(f, "shots={shots}"),
            Scenario::Noisy { p1, p2 } => write!(f, "noise={p1},{p2}"),
        }
    }
}

/// A depth-`p` QAOA instance evaluated under a [`Scenario`].
///
/// For [`Scenario::Exact`] this is exactly a [`QaoaInstance`] — same
/// objective, same RNG consumption, bit-identical outcomes — so threading a
/// `ScenarioInstance` through an existing protocol changes nothing when the
/// scenario is exact.
#[derive(Debug)]
pub struct ScenarioInstance {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    Exact(QaoaInstance),
    Sampled {
        objective: SampledExpectation,
        spsa: Spsa,
    },
    Noisy(NoisyQaoa),
}

impl ScenarioInstance {
    /// Builds the scenario-specific instance.
    ///
    /// `base_seed` feeds only the stochastic scenarios (shot RNG schedule
    /// and SPSA perturbations, domain-separated); exact and noisy
    /// evaluations are deterministic and ignore it.
    ///
    /// # Errors
    ///
    /// * [`QaoaError::InvalidDepth`] for `depth == 0`.
    /// * [`QaoaError::InvalidScenario`] for an invalid configuration.
    /// * [`QaoaError::TooLarge`] if a noisy scenario exceeds the
    ///   density-matrix register cap.
    pub fn new(
        problem: MaxCutProblem,
        depth: usize,
        scenario: &Scenario,
        base_seed: u64,
    ) -> Result<Self, QaoaError> {
        scenario.validate()?;
        let inner = match *scenario {
            Scenario::Exact => Inner::Exact(QaoaInstance::new(problem, depth)?),
            Scenario::Sampled { shots } => Inner::Sampled {
                objective: SampledExpectation::new(
                    problem,
                    depth,
                    shots,
                    mix64(base_seed ^ SHOT_DOMAIN),
                )?,
                spsa: Spsa::default().with_seed(mix64(base_seed ^ SPSA_DOMAIN)),
            },
            Scenario::Noisy { p1, p2 } => Inner::Noisy(NoisyQaoa::new(
                problem,
                depth,
                NoiseModel::uniform_depolarizing(p1, p2)?,
            )?),
        };
        Ok(Self { inner })
    }

    /// The underlying problem.
    #[must_use]
    pub fn problem(&self) -> &MaxCutProblem {
        match &self.inner {
            Inner::Exact(i) => i.problem(),
            Inner::Sampled { objective, .. } => objective.ansatz().problem(),
            Inner::Noisy(n) => n.ansatz().problem(),
        }
    }

    /// Circuit depth `p`.
    #[must_use]
    pub fn depth(&self) -> usize {
        match &self.inner {
            Inner::Exact(i) => i.depth(),
            Inner::Sampled { objective, .. } => objective.depth(),
            Inner::Noisy(n) => n.depth(),
        }
    }

    /// One local optimization from `initial`.
    ///
    /// Exact and noisy scenarios run `optimizer`; sampled scenarios always
    /// run the seeded SPSA instead (finite-difference or adjoint gradients
    /// are meaningless on a stochastic objective).
    ///
    /// # Errors
    ///
    /// Evaluation and optimizer errors from the scenario path.
    pub fn optimize(
        &self,
        optimizer: &dyn Optimizer,
        initial: &[f64],
        options: &Options,
    ) -> Result<InstanceOutcome, QaoaError> {
        match &self.inner {
            Inner::Exact(i) => i.optimize(optimizer, initial, options),
            Inner::Sampled { objective, spsa } => objective.optimize(spsa, initial, options),
            Inner::Noisy(n) => n.optimize(optimizer, initial, options),
        }
    }

    /// The multistart protocol under this scenario: `n_starts` runs from
    /// uniformly random initializations drawn from `rng` (the same draw
    /// sequence as [`QaoaInstance::optimize_multistart`] — an exact
    /// scenario reproduces it bit-for-bit), best outcome with summed call
    /// counts.
    ///
    /// # Errors
    ///
    /// * [`QaoaError::InvalidScenario`] if `n_starts == 0`.
    /// * Evaluation or optimizer errors from any start.
    pub fn optimize_multistart<R: Rng + ?Sized>(
        &self,
        optimizer: &dyn Optimizer,
        n_starts: usize,
        rng: &mut R,
        options: &Options,
    ) -> Result<InstanceOutcome, QaoaError> {
        if n_starts == 0 {
            return Err(QaoaError::InvalidScenario {
                reason: "multistart needs at least one start",
            });
        }
        match &self.inner {
            Inner::Exact(i) => i.optimize_multistart(optimizer, n_starts, rng, options),
            Inner::Sampled { objective, spsa } => {
                objective.optimize_multistart(spsa, n_starts, rng, options)
            }
            Inner::Noisy(n) => n.optimize_multistart(optimizer, n_starts, rng, options),
        }
    }

    /// The exact (noiseless, infinite-shot) expectation at `params` — the
    /// common yardstick all scenarios are judged against.
    ///
    /// # Errors
    ///
    /// [`QaoaError::ParameterCount`] on a parameter-length mismatch.
    pub fn exact_expectation(&self, params: &[f64]) -> Result<f64, QaoaError> {
        match &self.inner {
            Inner::Exact(i) => i.ansatz().expectation(params),
            Inner::Sampled { objective, .. } => objective.ansatz().expectation(params),
            Inner::Noisy(n) => n.ansatz().expectation(params),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use optimize::Lbfgsb;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem() -> MaxCutProblem {
        MaxCutProblem::new(&generators::cycle(5)).unwrap()
    }

    #[test]
    fn display_labels() {
        assert_eq!(Scenario::Exact.to_string(), "exact");
        assert_eq!(Scenario::Sampled { shots: 256 }.to_string(), "shots=256");
        assert_eq!(
            Scenario::Noisy {
                p1: 0.002,
                p2: 0.02
            }
            .to_string(),
            "noise=0.002,0.02"
        );
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(Scenario::Exact.validate().is_ok());
        assert!(Scenario::Sampled { shots: 1 }.validate().is_ok());
        assert!(Scenario::Sampled { shots: 0 }.validate().is_err());
        assert!(Scenario::Noisy { p1: 0.0, p2: 1.0 }.validate().is_ok());
        for (p1, p2) in [(-0.1, 0.0), (0.0, 1.5), (f64::NAN, 0.0)] {
            assert!(
                Scenario::Noisy { p1, p2 }.validate().is_err(),
                "({p1}, {p2}) accepted"
            );
        }
    }

    #[test]
    fn exact_scenario_matches_plain_instance_bit_for_bit() {
        let opts = Options::default();
        let si = ScenarioInstance::new(problem(), 2, &Scenario::Exact, 77).unwrap();
        let qi = QaoaInstance::new(problem(), 2).unwrap();
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        let a = si
            .optimize_multistart(&Lbfgsb::default(), 3, &mut rng_a, &opts)
            .unwrap();
        let b = qi
            .optimize_multistart(&Lbfgsb::default(), 3, &mut rng_b, &opts)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sampled_scenario_is_seed_deterministic() {
        let scenario = Scenario::Sampled { shots: 128 };
        let opts = Options::default().with_max_iters(25);
        let run = |seed: u64| {
            let si = ScenarioInstance::new(problem(), 1, &scenario, seed).unwrap();
            let mut rng = StdRng::seed_from_u64(9);
            si.optimize_multistart(&Lbfgsb::default(), 2, &mut rng, &opts)
                .unwrap()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b);
        let c = run(43);
        assert_ne!(a.params, c.params, "base seed must matter");
    }

    #[test]
    fn noisy_scenario_runs_and_degrades_energy() {
        let scenario = Scenario::Noisy {
            p1: 0.002,
            p2: 0.02,
        };
        let si = ScenarioInstance::new(problem(), 1, &scenario, 0).unwrap();
        let params = [0.9, 0.35];
        let exact = si.exact_expectation(&params).unwrap();
        let out = si
            .optimize(
                &optimize::NelderMead::default(),
                &params,
                &Options::default().with_max_iters(60),
            )
            .unwrap();
        assert!(out.function_calls > 0);
        // The noisy optimum energy sits below the noiseless ceiling.
        assert!(out.expectation <= si.problem().optimal_cut() + 1e-9);
        let _ = exact;
    }

    #[test]
    fn zero_starts_rejected_for_every_scenario() {
        for scenario in [
            Scenario::Exact,
            Scenario::Sampled { shots: 16 },
            Scenario::Noisy { p1: 0.0, p2: 0.0 },
        ] {
            let si = ScenarioInstance::new(problem(), 1, &scenario, 1).unwrap();
            let mut rng = StdRng::seed_from_u64(0);
            assert!(matches!(
                si.optimize_multistart(&Lbfgsb::default(), 0, &mut rng, &Options::default()),
                Err(QaoaError::InvalidScenario { .. })
            ));
        }
    }

    #[test]
    fn oversized_noisy_graph_rejected() {
        let big = MaxCutProblem::new(&generators::cycle(qsim::MAX_DM_QUBITS + 1)).unwrap();
        assert!(matches!(
            ScenarioInstance::new(big, 1, &Scenario::Noisy { p1: 0.0, p2: 0.0 }, 0),
            Err(QaoaError::TooLarge { .. })
        ));
    }
}
