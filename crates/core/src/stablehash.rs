//! Process-stable hashing and mixing primitives.
//!
//! Three guarantees in this workspace are *bit-level* and cross-crate:
//! serial sweeps equal engine-parallel sweeps (per-graph seeds), cache
//! keys are stable across processes ([`crate::canonical`]), and per-job
//! RNG derivation is a pure function of stable keys (`engine::seed`).
//! All of them reduce to the two primitives here — one shared definition,
//! so a constant tweak can never desynchronize the call sites.

/// The SplitMix64 increment ("golden gamma").
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 finalizer: a bijective avalanche mix of `z`.
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One SplitMix64 step: advance by [`GOLDEN_GAMMA`], then finalize.
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    mix64(state.wrapping_add(GOLDEN_GAMMA))
}

/// Streaming FNV-1a (64-bit): process-stable, unlike `DefaultHasher`.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    /// The standard FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Absorbs one word (little-endian bytes).
    pub fn write_u64(&mut self, word: u64) {
        self.write(&word.to_le_bytes());
    }

    /// The digest.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a of a byte string.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixers_are_pure_and_discriminating() {
        assert_eq!(mix64(7), mix64(7));
        assert_ne!(mix64(7), mix64(8));
        assert_eq!(splitmix64(0), mix64(GOLDEN_GAMMA));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
        let mut w = Fnv64::default();
        w.write_u64(0x0102_0304_0506_0708);
        assert_eq!(
            w.finish(),
            fnv1a(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01])
        );
    }
}
