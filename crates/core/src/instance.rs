use optimize::{Objective, Optimizer, Options, Termination};
use rand::Rng;

use crate::{eval, parameter_bounds, MaxCutProblem, QaoaAnsatz, QaoaError};

/// Outcome of optimizing one QAOA instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceOutcome {
    /// Best parameters found, `[γ₁…γ_p, β₁…β_p]`.
    pub params: Vec<f64>,
    /// Best expectation `⟨C⟩`.
    pub expectation: f64,
    /// Approximation ratio `⟨C⟩ / C_max` — the paper's quality metric.
    pub approximation_ratio: f64,
    /// Total objective evaluations (`nfev`) — the paper's cost metric
    /// (QC calls).
    pub function_calls: usize,
    /// Analytic adjoint-gradient evaluations (`njev`) consumed by
    /// gradient-based optimizers; 0 for gradient-free methods.
    pub gradient_calls: usize,
    /// Termination reason of the (best) run.
    pub termination: Termination,
}

impl InstanceOutcome {
    /// The γ parameters (first half of `params`).
    #[must_use]
    pub fn gammas(&self) -> &[f64] {
        &self.params[..self.params.len() / 2]
    }

    /// The β parameters (second half of `params`).
    #[must_use]
    pub fn betas(&self) -> &[f64] {
        &self.params[self.params.len() / 2..]
    }
}

/// A QAOA instance: the closed loop of Fig. 1(a)/(d) — quantum simulator in,
/// classical optimizer out — at a fixed circuit depth.
///
/// The optimizer **minimizes** `−⟨C⟩`; every objective evaluation is one
/// "QC call".
///
/// # Example
///
/// ```
/// use graphs::Graph;
/// use optimize::NelderMead;
/// use qaoa::{MaxCutProblem, QaoaInstance};
/// # fn main() -> Result<(), qaoa::QaoaError> {
/// let g = Graph::from_edges(2, &[(0, 1)])?;
/// let instance = QaoaInstance::new(MaxCutProblem::new(&g)?, 1)?;
/// let out = instance.optimize(&NelderMead::default(), &[1.0, 1.0], &Default::default())?;
/// assert!(out.approximation_ratio > 0.9); // p=1 solves the single edge exactly
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QaoaInstance {
    ansatz: QaoaAnsatz,
}

impl QaoaInstance {
    /// Creates an instance of depth `p` for `problem`.
    ///
    /// # Errors
    ///
    /// Returns [`QaoaError::InvalidDepth`] for `p = 0`.
    pub fn new(problem: MaxCutProblem, depth: usize) -> Result<Self, QaoaError> {
        Ok(Self {
            ansatz: QaoaAnsatz::new(problem, depth)?,
        })
    }

    /// The underlying ansatz.
    #[must_use]
    pub fn ansatz(&self) -> &QaoaAnsatz {
        &self.ansatz
    }

    /// The underlying problem.
    #[must_use]
    pub fn problem(&self) -> &MaxCutProblem {
        self.ansatz.problem()
    }

    /// Circuit depth `p`.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.ansatz.depth()
    }

    /// Runs one local optimization from `initial` parameters.
    ///
    /// # Errors
    ///
    /// * [`QaoaError::ParameterCount`] if `initial` has the wrong length.
    /// * Optimizer errors ([`QaoaError::Optimizer`]).
    pub fn optimize(
        &self,
        optimizer: &dyn Optimizer,
        initial: &[f64],
        options: &Options,
    ) -> Result<InstanceOutcome, QaoaError> {
        if initial.len() != self.ansatz.n_parameters() {
            return Err(QaoaError::ParameterCount {
                expected: self.ansatz.n_parameters(),
                actual: initial.len(),
            });
        }
        let bounds = parameter_bounds(self.depth())?;
        // Negate: the optimizer minimizes, QAOA maximizes ⟨C⟩. The
        // objective carries the exact adjoint gradient, so gradient-based
        // optimizers (L-BFGS-B, SLSQP) skip their finite-difference probes;
        // evaluations run in the worker thread's cached EvalContext.
        let objective = NegatedAnsatz {
            ansatz: &self.ansatz,
        };
        let result = optimizer.minimize_objective(&objective, initial, &bounds, options)?;
        let expectation = -result.fx;
        Ok(InstanceOutcome {
            approximation_ratio: self.problem().approximation_ratio(expectation),
            params: result.x,
            expectation,
            function_calls: result.n_calls,
            gradient_calls: result.n_grad_calls,
            termination: result.termination,
        })
    }

    /// The paper's "naive" protocol: `n_starts` local runs from uniformly
    /// random initializations; returns the best outcome with the **summed**
    /// function calls of all starts (the total loop-iteration cost).
    ///
    /// # Errors
    ///
    /// * [`QaoaError::InvalidDepth`] (propagated from bounds construction).
    /// * Optimizer errors from any start.
    ///
    /// # Panics
    ///
    /// Panics if `n_starts == 0`.
    pub fn optimize_multistart<R: Rng + ?Sized>(
        &self,
        optimizer: &dyn Optimizer,
        n_starts: usize,
        rng: &mut R,
        options: &Options,
    ) -> Result<InstanceOutcome, QaoaError> {
        assert!(n_starts > 0, "multistart needs at least one start");
        let bounds = parameter_bounds(self.depth())?;
        let mut best: Option<InstanceOutcome> = None;
        let mut total_calls = 0usize;
        let mut total_grad_calls = 0usize;
        for _ in 0..n_starts {
            let start = bounds.sample(rng);
            let outcome = self.optimize(optimizer, &start, options)?;
            total_calls += outcome.function_calls;
            total_grad_calls += outcome.gradient_calls;
            if best
                .as_ref()
                .is_none_or(|b| outcome.expectation > b.expectation)
            {
                best = Some(outcome);
            }
        }
        let mut best = best.expect("n_starts > 0");
        best.function_calls = total_calls;
        best.gradient_calls = total_grad_calls;
        Ok(best)
    }
}

/// The minimized objective `−⟨C⟩` with its exact adjoint gradient, evaluated
/// in the calling thread's cached [`EvalContext`](crate::EvalContext).
/// In-bounds parameter vectors always produce finite expectations, so the
/// `expect`s cannot fire under an optimizer (which only probes inside the
/// box).
struct NegatedAnsatz<'a> {
    ansatz: &'a QaoaAnsatz,
}

impl Objective for NegatedAnsatz<'_> {
    fn value(&self, x: &[f64]) -> f64 {
        -self
            .ansatz
            .expectation(x)
            .expect("in-bounds parameters always evaluate")
    }

    fn value_and_grad(&self, x: &[f64], grad: &mut [f64]) -> Option<f64> {
        let e = eval::with_thread_context(self.ansatz.problem().n_qubits(), |ctx| {
            self.ansatz.expectation_and_grad_in(ctx, x, grad)
        })
        .expect("in-bounds parameters always evaluate");
        for g in grad.iter_mut() {
            *g = -*g;
        }
        Some(-e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{generators, Graph};
    use optimize::{Cobyla, Lbfgsb, NelderMead, Slsqp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn single_edge_instance(p: usize) -> QaoaInstance {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        QaoaInstance::new(MaxCutProblem::new(&g).unwrap(), p).unwrap()
    }

    #[test]
    fn p1_single_edge_all_optimizers_reach_optimum() {
        // The p=1 landscape for one edge has max ⟨C⟩ = 1 at (π/2, π/4).
        let instance = single_edge_instance(1);
        let mut rng = StdRng::seed_from_u64(3);
        for opt in optimize::all_optimizers() {
            let out = instance
                .optimize_multistart(opt.as_ref(), 5, &mut rng, &Options::default())
                .unwrap();
            assert!(
                out.approximation_ratio > 0.999,
                "{}: AR = {}",
                opt.name(),
                out.approximation_ratio
            );
            assert!(out.function_calls > 0);
        }
    }

    #[test]
    fn ar_improves_with_depth_on_odd_cycle() {
        // C5 is not solved exactly at p=1; AR must not decrease with p.
        let problem = MaxCutProblem::new(&generators::cycle(5)).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let mut prev_ar = 0.0;
        for p in 1..=3 {
            let inst = QaoaInstance::new(problem.clone(), p).unwrap();
            let out = inst
                .optimize_multistart(&Lbfgsb::default(), 8, &mut rng, &Options::default())
                .unwrap();
            assert!(
                out.approximation_ratio >= prev_ar - 0.02,
                "p={p}: AR {} < previous {prev_ar}",
                out.approximation_ratio
            );
            prev_ar = out.approximation_ratio;
        }
        assert!(prev_ar > 0.85, "p=3 AR on C5 = {prev_ar}");
    }

    #[test]
    fn outcome_accessors() {
        let instance = single_edge_instance(2);
        let out = instance
            .optimize(
                &NelderMead::default(),
                &[1.0, 1.0, 0.5, 0.5],
                &Options::default(),
            )
            .unwrap();
        assert_eq!(out.gammas().len(), 2);
        assert_eq!(out.betas().len(), 2);
        assert_eq!(out.params.len(), 4);
    }

    #[test]
    fn multistart_accumulates_calls() {
        let instance = single_edge_instance(1);
        let mut rng = StdRng::seed_from_u64(9);
        let one = instance
            .optimize_multistart(&Slsqp::default(), 1, &mut rng, &Options::default())
            .unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let five = instance
            .optimize_multistart(&Slsqp::default(), 5, &mut rng, &Options::default())
            .unwrap();
        assert!(five.function_calls > one.function_calls);
    }

    #[test]
    fn wrong_parameter_count_rejected() {
        let instance = single_edge_instance(2);
        assert!(matches!(
            instance.optimize(&Cobyla::default(), &[0.5], &Options::default()),
            Err(QaoaError::ParameterCount { .. })
        ));
    }

    #[test]
    fn deterministic_under_seed() {
        let instance = single_edge_instance(1);
        let a = instance
            .optimize_multistart(
                &NelderMead::default(),
                3,
                &mut StdRng::seed_from_u64(1),
                &Options::default(),
            )
            .unwrap();
        let b = instance
            .optimize_multistart(
                &NelderMead::default(),
                3,
                &mut StdRng::seed_from_u64(1),
                &Options::default(),
            )
            .unwrap();
        assert_eq!(a.params, b.params);
        assert_eq!(a.function_calls, b.function_calls);
    }
}
