//! Grid scans of the `p = 1` QAOA energy landscape.
//!
//! Used by the figure binaries (parameter-trend plots) and by tests that
//! need the true `p = 1` optimum independently of any local optimizer.

use linalg::Matrix;

use crate::{MaxCutProblem, QaoaAnsatz, QaoaError, BETA_MAX, GAMMA_MAX};

/// A sampled `p = 1` landscape: `values[(i, j)] = ⟨C⟩(γᵢ, βⱼ)`.
#[derive(Debug, Clone)]
pub struct P1Landscape {
    /// Sampled γ values (rows of `values`).
    pub gammas: Vec<f64>,
    /// Sampled β values (columns of `values`).
    pub betas: Vec<f64>,
    /// Expectation at each grid point.
    pub values: Matrix,
}

impl P1Landscape {
    /// The grid point with the highest expectation, as `(γ, β, ⟨C⟩)`.
    #[must_use]
    pub fn argmax(&self) -> (f64, f64, f64) {
        let mut best = (0usize, 0usize, f64::NEG_INFINITY);
        for i in 0..self.gammas.len() {
            for j in 0..self.betas.len() {
                let v = self.values.get(i, j);
                if v > best.2 {
                    best = (i, j, v);
                }
            }
        }
        (self.gammas[best.0], self.betas[best.1], best.2)
    }
}

/// Evaluates `⟨C⟩(γ, β)` on an `n_gamma × n_beta` grid over the paper's
/// domain `γ ∈ [0, 2π], β ∈ [0, π]`.
///
/// # Errors
///
/// Returns [`QaoaError::InvalidDepth`] never in practice (depth is fixed at
/// 1) but propagates ansatz construction errors for API uniformity.
///
/// # Example
///
/// ```
/// use graphs::Graph;
/// use qaoa::{landscape, MaxCutProblem};
/// # fn main() -> Result<(), qaoa::QaoaError> {
/// let g = Graph::from_edges(2, &[(0, 1)])?;
/// let scan = landscape::p1_grid(&MaxCutProblem::new(&g)?, 41, 41)?;
/// let (gamma, beta, value) = scan.argmax();
/// // Single edge: optimum ⟨C⟩ = 1 at (π/2, π/8) (and symmetric partners).
/// assert!(value > 0.99);
/// assert!(gamma > 0.0 && beta > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn p1_grid(
    problem: &MaxCutProblem,
    n_gamma: usize,
    n_beta: usize,
) -> Result<P1Landscape, QaoaError> {
    let ansatz = QaoaAnsatz::new(problem.clone(), 1)?;
    let gammas: Vec<f64> = (0..n_gamma)
        .map(|i| GAMMA_MAX * i as f64 / (n_gamma.max(2) - 1) as f64)
        .collect();
    let betas: Vec<f64> = (0..n_beta)
        .map(|j| BETA_MAX * j as f64 / (n_beta.max(2) - 1) as f64)
        .collect();
    let mut values = Matrix::zeros(n_gamma, n_beta);
    for (i, &g) in gammas.iter().enumerate() {
        for (j, &b) in betas.iter().enumerate() {
            values.set(i, j, ansatz.expectation(&[g, b])?);
        }
    }
    Ok(P1Landscape {
        gammas,
        betas,
        values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{generators, Graph};

    #[test]
    fn single_edge_landscape_matches_closed_form() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let scan = p1_grid(&MaxCutProblem::new(&g).unwrap(), 21, 21).unwrap();
        for (i, &gamma) in scan.gammas.iter().enumerate() {
            for (j, &beta) in scan.betas.iter().enumerate() {
                let expect = 0.5 * (1.0 + (4.0 * beta).sin() * gamma.sin());
                assert!((scan.values.get(i, j) - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn argmax_is_a_grid_maximum() {
        let scan = p1_grid(&MaxCutProblem::new(&generators::cycle(4)).unwrap(), 25, 25).unwrap();
        let (_, _, best) = scan.argmax();
        for i in 0..25 {
            for j in 0..25 {
                assert!(scan.values.get(i, j) <= best + 1e-12);
            }
        }
    }

    #[test]
    fn landscape_is_periodic_in_gamma_for_unweighted_graphs() {
        // Integer-valued cost: ⟨C⟩(γ=0) = ⟨C⟩(γ=2π).
        let scan = p1_grid(&MaxCutProblem::new(&generators::cycle(3)).unwrap(), 9, 5).unwrap();
        for j in 0..5 {
            assert!((scan.values.get(0, j) - scan.values.get(8, j)).abs() < 1e-10);
        }
    }
}
