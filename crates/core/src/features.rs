//! Feature extraction for the parameter predictor (§II-D).
//!
//! The two-level approach uses three features — `γ₁OPT(p=1)`, `β₁OPT(p=1)`
//! and the target depth `pt` — and predicts the `2·pt` responses
//! `γ₁…γ_pt, β₁…β_pt`. Because the response dimension varies with `pt`,
//! training is organized **per stage**: one regression per response variable
//! `γᵢ` (respectively `βᵢ`), trained on every record whose depth is ≥ i,
//! with the record's depth as the third feature. This reproduces the
//! correlation structure the paper analyzes in Fig. 5 (each `γᵢOPT`/`βᵢOPT`
//! against `γ₁OPT(p=1)`, `β₁OPT(p=1)` and `p`).
//!
//! The hierarchical variant (§I(d)) augments the features with the optimal
//! parameters of an intermediate-depth instance.

use linalg::Matrix;

use crate::datagen::ParameterDataset;
use crate::QaoaError;

/// Which parameter family a table/model targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// Phase-separation parameters γ.
    Gamma,
    /// Mixing parameters β.
    Beta,
}

impl ParamKind {
    /// Both kinds, γ first (matching the parameter layout).
    pub const BOTH: [ParamKind; 2] = [ParamKind::Gamma, ParamKind::Beta];
}

/// A per-stage training table: features `X` and the single response column.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTable {
    /// Which family the response belongs to.
    pub kind: ParamKind,
    /// Stage index `i` (1-based).
    pub stage: usize,
    /// Feature rows.
    pub x: Matrix,
    /// Response values (`γᵢ` or `βᵢ` at the row's depth).
    pub y: Vec<f64>,
}

/// Builds the two-level feature vector `[γ₁(1), β₁(1), pt]`.
#[must_use]
pub fn two_level_features(gamma1_p1: f64, beta1_p1: f64, target_depth: usize) -> Vec<f64> {
    vec![gamma1_p1, beta1_p1, target_depth as f64]
}

/// Builds the hierarchical feature vector
/// `[γ₁(1), β₁(1), γ₁(pm), β₁(pm), pm, pt]`, where `pm` is the intermediate
/// depth whose optimum has been computed.
#[must_use]
pub fn hierarchical_features(
    gamma1_p1: f64,
    beta1_p1: f64,
    gamma1_pm: f64,
    beta1_pm: f64,
    intermediate_depth: usize,
    target_depth: usize,
) -> Vec<f64> {
    vec![
        gamma1_p1,
        beta1_p1,
        gamma1_pm,
        beta1_pm,
        intermediate_depth as f64,
        target_depth as f64,
    ]
}

/// Extracts every per-stage training table from a corpus using the
/// two-level features.
///
/// For stage `i` and kind `k`, rows are all `(graph, depth p ≥ i)` records;
/// features come from the graph's depth-1 record.
///
/// # Errors
///
/// Returns [`QaoaError::Parse`] if some graph lacks a depth-1 record (a
/// corpus invariant violation).
pub fn two_level_tables(dataset: &ParameterDataset) -> Result<Vec<StageTable>, QaoaError> {
    let base = depth1_features(dataset)?;
    let mut tables = Vec::new();
    for kind in ParamKind::BOTH {
        for stage in 1..=dataset.max_depth() {
            let mut rows: Vec<Vec<f64>> = Vec::new();
            let mut y = Vec::new();
            for r in dataset.records() {
                if r.depth < stage {
                    continue;
                }
                let (g1, b1) = base[r.graph_id];
                rows.push(two_level_features(g1, b1, r.depth));
                y.push(match kind {
                    ParamKind::Gamma => r.gammas[stage - 1],
                    ParamKind::Beta => r.betas[stage - 1],
                });
            }
            if rows.is_empty() {
                continue;
            }
            let x = Matrix::from_rows(&rows).map_err(|e| QaoaError::Parse {
                line: 0,
                message: format!("feature table: {e}"),
            })?;
            tables.push(StageTable { kind, stage, x, y });
        }
    }
    Ok(tables)
}

/// Extracts hierarchical per-stage tables with intermediate depth `pm`.
///
/// Rows are restricted to records with `depth > pm` (the regime where the
/// hierarchical flow is used).
///
/// # Errors
///
/// Same conditions as [`two_level_tables`]; additionally requires each graph
/// to carry a depth-`pm` record.
pub fn hierarchical_tables(
    dataset: &ParameterDataset,
    intermediate_depth: usize,
) -> Result<Vec<StageTable>, QaoaError> {
    let base = depth1_features(dataset)?;
    let mid: Vec<(f64, f64)> = (0..dataset.graphs().len())
        .map(|g| {
            dataset
                .record(g, intermediate_depth)
                .map(|r| (r.gammas[0], r.betas[0]))
                .ok_or_else(|| QaoaError::Parse {
                    line: 0,
                    message: format!("graph {g} lacks a depth-{intermediate_depth} record"),
                })
        })
        .collect::<Result<_, _>>()?;
    let mut tables = Vec::new();
    for kind in ParamKind::BOTH {
        for stage in 1..=dataset.max_depth() {
            let mut rows: Vec<Vec<f64>> = Vec::new();
            let mut y = Vec::new();
            for r in dataset.records() {
                if r.depth < stage || r.depth <= intermediate_depth {
                    continue;
                }
                let (g1, b1) = base[r.graph_id];
                let (gm, bm) = mid[r.graph_id];
                rows.push(hierarchical_features(
                    g1,
                    b1,
                    gm,
                    bm,
                    intermediate_depth,
                    r.depth,
                ));
                y.push(match kind {
                    ParamKind::Gamma => r.gammas[stage - 1],
                    ParamKind::Beta => r.betas[stage - 1],
                });
            }
            if rows.is_empty() {
                continue;
            }
            let x = Matrix::from_rows(&rows).map_err(|e| QaoaError::Parse {
                line: 0,
                message: format!("feature table: {e}"),
            })?;
            tables.push(StageTable { kind, stage, x, y });
        }
    }
    Ok(tables)
}

fn depth1_features(dataset: &ParameterDataset) -> Result<Vec<(f64, f64)>, QaoaError> {
    (0..dataset.graphs().len())
        .map(|g| {
            dataset
                .record(g, 1)
                .map(|r| (r.gammas[0], r.betas[0]))
                .ok_or_else(|| QaoaError::Parse {
                    line: 0,
                    message: format!("graph {g} lacks a depth-1 record"),
                })
        })
        .collect()
}

/// One Fig. 5 correlation row: `(kind, stage, r_gamma1, r_beta1, r_depth)`.
pub type CorrelationRow = (ParamKind, usize, f64, f64, f64);

/// The Fig. 5 correlation analysis: Pearson correlation between each
/// predictor (`γ₁(1)`, `β₁(1)`, `p`) and each response (`γᵢ`, `βᵢ`).
///
/// Returns rows `(kind, stage, r_gamma1, r_beta1, r_depth)`.
///
/// # Errors
///
/// Propagates table-extraction errors; correlation over fewer than two rows
/// yields zeros rather than an error.
pub fn predictor_response_correlations(
    dataset: &ParameterDataset,
) -> Result<Vec<CorrelationRow>, QaoaError> {
    let tables = two_level_tables(dataset)?;
    let mut out = Vec::with_capacity(tables.len());
    for t in tables {
        let col = |j: usize| -> Vec<f64> { (0..t.x.rows()).map(|i| t.x.get(i, j)).collect() };
        let r = |a: &[f64]| ml::metrics::pearson(a, &t.y).unwrap_or(0.0);
        out.push((t.kind, t.stage, r(&col(0)), r(&col(1)), r(&col(2))));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{DataGenConfig, ParameterDataset};

    fn tiny_dataset() -> ParameterDataset {
        ParameterDataset::generate(&DataGenConfig {
            n_graphs: 4,
            n_nodes: 5,
            edge_probability: 0.6,
            max_depth: 3,
            restarts: 2,
            seed: 21,
            options: Default::default(),
            trend_preference_margin: 1e-3,
        })
        .unwrap()
    }

    #[test]
    fn feature_vectors() {
        assert_eq!(two_level_features(1.0, 2.0, 4), vec![1.0, 2.0, 4.0]);
        assert_eq!(
            hierarchical_features(1.0, 2.0, 3.0, 4.0, 2, 5),
            vec![1.0, 2.0, 3.0, 4.0, 2.0, 5.0]
        );
    }

    #[test]
    fn table_shapes() {
        let ds = tiny_dataset();
        let tables = two_level_tables(&ds).unwrap();
        // 2 kinds × 3 stages.
        assert_eq!(tables.len(), 6);
        for t in &tables {
            assert_eq!(t.x.cols(), 3);
            assert_eq!(t.x.rows(), t.y.len());
            // Stage i uses records of depth >= i: 4 graphs × (3 − i + 1).
            assert_eq!(t.x.rows(), 4 * (3 - t.stage + 1));
            // Depth feature within range.
            for i in 0..t.x.rows() {
                let d = t.x.get(i, 2);
                assert!((t.stage as f64..=3.0).contains(&d));
            }
        }
    }

    #[test]
    fn stage1_depth1_rows_are_identity() {
        // For stage 1, depth-1 rows have response == first feature (γ case).
        let ds = tiny_dataset();
        let tables = two_level_tables(&ds).unwrap();
        let t = tables
            .iter()
            .find(|t| t.kind == ParamKind::Gamma && t.stage == 1)
            .unwrap();
        for i in 0..t.x.rows() {
            if t.x.get(i, 2) == 1.0 {
                assert!((t.x.get(i, 0) - t.y[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn hierarchical_tables_exclude_shallow_records() {
        let ds = tiny_dataset();
        let tables = hierarchical_tables(&ds, 2).unwrap();
        for t in &tables {
            assert_eq!(t.x.cols(), 6);
            for i in 0..t.x.rows() {
                assert!(t.x.get(i, 5) > 2.0); // target depth > pm
            }
        }
        // Stage tables only exist where depth > pm ≥ stage rows remain.
        assert!(tables.iter().all(|t| !t.y.is_empty()));
    }

    #[test]
    fn correlations_are_bounded() {
        let ds = tiny_dataset();
        let rows = predictor_response_correlations(&ds).unwrap();
        assert_eq!(rows.len(), 6);
        for (_, _, r1, r2, r3) in rows {
            for r in [r1, r2, r3] {
                assert!((-1.0..=1.0).contains(&r), "correlation {r} out of range");
            }
        }
    }
}
