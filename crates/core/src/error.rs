use std::error::Error;
use std::fmt;

use graphs::GraphError;
use ml::MlError;
use optimize::OptimizeError;
use qsim::QsimError;

/// Error type for the QAOA pipeline, unifying the substrate errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum QaoaError {
    /// A depth of zero (or otherwise unusable) was requested.
    InvalidDepth {
        /// The offending depth.
        depth: usize,
    },
    /// The problem graph has no edges, so the QAOA objective is identically
    /// zero and the approximation ratio is undefined.
    EmptyGraph,
    /// The graph is too large for dense state-vector simulation.
    TooLarge {
        /// Number of nodes requested.
        n_nodes: usize,
        /// Maximum supported.
        max: usize,
    },
    /// A parameter vector had the wrong length for the instance depth.
    ParameterCount {
        /// Expected length (`2·p`).
        expected: usize,
        /// Supplied length.
        actual: usize,
    },
    /// Error from the quantum simulator substrate.
    Simulator(QsimError),
    /// Error from the classical optimizer substrate.
    Optimizer(OptimizeError),
    /// Error from the ML substrate.
    Ml(MlError),
    /// Error from the graph substrate.
    Graph(GraphError),
    /// Dataset I/O failure (datagen persistence).
    Io(std::io::Error),
    /// A dataset file was malformed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An evaluation scenario was misconfigured (noise probability outside
    /// `[0, 1]`, zero multistarts, …).
    InvalidScenario {
        /// Description of the violated requirement.
        reason: &'static str,
    },
    /// A graph-index range did not fit the ensemble it addresses (sharded
    /// corpus generation).
    InvalidRange {
        /// Range start (inclusive).
        start: usize,
        /// Range end (exclusive).
        end: usize,
        /// Size of the ensemble the range was applied to.
        len: usize,
    },
}

impl fmt::Display for QaoaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QaoaError::InvalidDepth { depth } => write!(f, "invalid QAOA depth {depth}"),
            QaoaError::EmptyGraph => write!(f, "graph has no edges; MaxCut QAOA is undefined"),
            QaoaError::TooLarge { n_nodes, max } => {
                write!(
                    f,
                    "{n_nodes}-node graph exceeds the {max}-node simulator limit"
                )
            }
            QaoaError::ParameterCount { expected, actual } => {
                write!(f, "expected {expected} parameters, got {actual}")
            }
            QaoaError::Simulator(e) => write!(f, "simulator error: {e}"),
            QaoaError::Optimizer(e) => write!(f, "optimizer error: {e}"),
            QaoaError::Ml(e) => write!(f, "ml error: {e}"),
            QaoaError::Graph(e) => write!(f, "graph error: {e}"),
            QaoaError::Io(e) => write!(f, "dataset i/o error: {e}"),
            QaoaError::Parse { line, message } => {
                write!(f, "dataset parse error at line {line}: {message}")
            }
            QaoaError::InvalidScenario { reason } => {
                write!(f, "invalid evaluation scenario: {reason}")
            }
            QaoaError::InvalidRange { start, end, len } => {
                write!(
                    f,
                    "graph range {start}..{end} does not fit an ensemble of {len} graphs"
                )
            }
        }
    }
}

impl Error for QaoaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QaoaError::Simulator(e) => Some(e),
            QaoaError::Optimizer(e) => Some(e),
            QaoaError::Ml(e) => Some(e),
            QaoaError::Graph(e) => Some(e),
            QaoaError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QsimError> for QaoaError {
    fn from(e: QsimError) -> Self {
        QaoaError::Simulator(e)
    }
}

impl From<OptimizeError> for QaoaError {
    fn from(e: OptimizeError) -> Self {
        QaoaError::Optimizer(e)
    }
}

impl From<MlError> for QaoaError {
    fn from(e: MlError) -> Self {
        QaoaError::Ml(e)
    }
}

impl From<GraphError> for QaoaError {
    fn from(e: GraphError) -> Self {
        QaoaError::Graph(e)
    }
}

impl From<std::io::Error> for QaoaError {
    fn from(e: std::io::Error) -> Self {
        QaoaError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = QaoaError::InvalidDepth { depth: 0 };
        assert!(e.to_string().contains("depth 0"));
        assert!(e.source().is_none());

        let e: QaoaError = QsimError::TooManyQubits { n_qubits: 99 }.into();
        assert!(e.to_string().contains("simulator"));
        assert!(e.source().is_some());

        let e: QaoaError = OptimizeError::EmptyProblem.into();
        assert!(e.to_string().contains("optimizer"));

        let e: QaoaError = MlError::NotFitted.into();
        assert!(e.to_string().contains("ml"));

        let e: QaoaError = GraphError::SelfLoop { node: 1 }.into();
        assert!(e.to_string().contains("graph"));

        let e = QaoaError::Parse {
            line: 3,
            message: "bad field".into(),
        };
        assert!(e.to_string().contains("line 3"));

        let e = QaoaError::InvalidRange {
            start: 4,
            end: 9,
            len: 6,
        };
        assert!(e.to_string().contains("4..9"));
        assert!(e.source().is_none());
    }
}
