//! Gate-noise simulation: the QAOA objective under depolarizing errors.
//!
//! The paper's simulator (QuTiP) is noiseless, but the run-time metric it
//! optimizes — QC calls — matters precisely because real NISQ devices are
//! noisy. This module evaluates the QAOA energy on the density-matrix
//! simulator with a per-gate [`NoiseModel`], so the two-level flow can be
//! studied in the regime the paper targets (see the `noisy_qaoa` benchmark
//! binary): does ML initialization still help when every circuit execution
//! is decohered?
//!
//! # Example
//!
//! ```
//! use graphs::generators;
//! use qaoa::{noisy::NoisyQaoa, MaxCutProblem};
//! use qsim::NoiseModel;
//!
//! # fn main() -> Result<(), qaoa::QaoaError> {
//! let problem = MaxCutProblem::new(&generators::cycle(4))?;
//! let noiseless = NoisyQaoa::new(problem.clone(), 1, NoiseModel::noiseless())?;
//! let noisy = NoisyQaoa::new(problem, 1, NoiseModel::uniform_depolarizing(0.002, 0.02)?)?;
//! let params = [0.7, 0.4];
//! // Noise pulls the energy toward the maximally-mixed value.
//! assert!(noisy.expectation(&params)? <= noiseless.expectation(&params)? + 1e-9);
//! # Ok(())
//! # }
//! ```

use optimize::{Fallible, Optimizer, Options};
use qsim::{DensityMatrix, NoiseModel, MAX_DM_QUBITS};

use crate::instance::InstanceOutcome;
use crate::{parameter_bounds, MaxCutProblem, QaoaAnsatz, QaoaError};

/// A depth-`p` QAOA instance evaluated under a per-gate noise model.
///
/// Mirrors [`QaoaInstance`](crate::QaoaInstance) but runs the gate-level
/// circuit on a [`DensityMatrix`] with Kraus noise after every gate. The
/// approximation ratio is still measured against the *noiseless* exact
/// MaxCut optimum, so noise shows up as an AR penalty, as it would on
/// hardware.
#[derive(Debug, Clone)]
pub struct NoisyQaoa {
    ansatz: QaoaAnsatz,
    noise: NoiseModel,
}

impl NoisyQaoa {
    /// Builds a noisy instance.
    ///
    /// # Errors
    ///
    /// * [`QaoaError::InvalidDepth`] for `depth == 0`.
    /// * [`QaoaError::TooLarge`] if the graph exceeds the density-matrix
    ///   register cap ([`MAX_DM_QUBITS`]).
    pub fn new(problem: MaxCutProblem, depth: usize, noise: NoiseModel) -> Result<Self, QaoaError> {
        if problem.n_qubits() > MAX_DM_QUBITS {
            return Err(QaoaError::TooLarge {
                n_nodes: problem.n_qubits(),
                max: MAX_DM_QUBITS,
            });
        }
        Ok(Self {
            ansatz: QaoaAnsatz::new(problem, depth)?,
            noise,
        })
    }

    /// The underlying (noiseless) ansatz.
    #[must_use]
    pub fn ansatz(&self) -> &QaoaAnsatz {
        &self.ansatz
    }

    /// The configured noise model.
    #[must_use]
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Circuit depth `p`.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.ansatz.depth()
    }

    /// The decohered output state `ρ(γ, β)`.
    ///
    /// # Errors
    ///
    /// [`QaoaError::ParameterCount`] on a parameter-length mismatch.
    pub fn state(&self, params: &[f64]) -> Result<DensityMatrix, QaoaError> {
        let circuit = self.ansatz.build_circuit(params)?;
        let mut rho = DensityMatrix::zero_state(circuit.n_qubits())?;
        rho.run(&circuit, &self.noise)?;
        Ok(rho)
    }

    /// The noisy objective `Tr(ρ(γ, β) · H_C)`.
    ///
    /// # Errors
    ///
    /// [`QaoaError::ParameterCount`] on a parameter-length mismatch.
    pub fn expectation(&self, params: &[f64]) -> Result<f64, QaoaError> {
        let rho = self.state(params)?;
        Ok(rho.expectation_diagonal(self.ansatz.problem().cost())?)
    }

    /// Approximation ratio of the noisy energy against the noiseless
    /// exact optimum.
    ///
    /// # Errors
    ///
    /// [`QaoaError::ParameterCount`] on a parameter-length mismatch.
    pub fn approximation_ratio(&self, params: &[f64]) -> Result<f64, QaoaError> {
        Ok(self
            .ansatz
            .problem()
            .approximation_ratio(self.expectation(params)?))
    }

    /// Optimizes the noisy objective from `initial`, counting every density-
    /// matrix evaluation as one function call — each is one (noisy) QC call.
    ///
    /// The objective closure is fallible: an evaluation error surfaces as a
    /// `NaN` probe (which the optimizer winds down on) and is then returned
    /// from here as the real [`QaoaError`] — never a panic.
    ///
    /// # Errors
    ///
    /// * [`QaoaError::ParameterCount`] on a parameter-length mismatch.
    /// * Any evaluation error encountered by an optimizer probe.
    /// * Optimizer errors.
    pub fn optimize(
        &self,
        optimizer: &dyn Optimizer,
        initial: &[f64],
        options: &Options,
    ) -> Result<InstanceOutcome, QaoaError> {
        if initial.len() != self.ansatz.n_parameters() {
            return Err(QaoaError::ParameterCount {
                expected: self.ansatz.n_parameters(),
                actual: initial.len(),
            });
        }
        let bounds = parameter_bounds(self.depth())?;
        let evaluate = |x: &[f64]| self.expectation(x).map(|e| -e);
        let objective = Fallible::new(&evaluate);
        let result = optimizer.minimize_objective(&objective, initial, &bounds, options)?;
        if let Some(err) = objective.take_error() {
            return Err(err);
        }
        let expectation = -result.fx;
        Ok(InstanceOutcome {
            approximation_ratio: self.ansatz.problem().approximation_ratio(expectation),
            params: result.x,
            expectation,
            function_calls: result.n_calls,
            gradient_calls: result.n_grad_calls,
            termination: result.termination,
        })
    }

    /// The paper's multistart protocol under gate noise: `n_starts` runs
    /// from uniformly random initializations, best outcome with summed
    /// call counts (mirrors
    /// [`QaoaInstance::optimize_multistart`](crate::QaoaInstance::optimize_multistart)).
    ///
    /// # Errors
    ///
    /// * [`QaoaError::InvalidScenario`] if `n_starts == 0`.
    /// * Evaluation or optimizer errors from any start.
    pub fn optimize_multistart<R: rand::Rng + ?Sized>(
        &self,
        optimizer: &dyn Optimizer,
        n_starts: usize,
        rng: &mut R,
        options: &Options,
    ) -> Result<InstanceOutcome, QaoaError> {
        let bounds = parameter_bounds(self.depth())?;
        let mut best: Option<InstanceOutcome> = None;
        let mut total_calls = 0usize;
        let mut total_grad_calls = 0usize;
        for _ in 0..n_starts {
            let start = bounds.sample(rng);
            let outcome = self.optimize(optimizer, &start, options)?;
            total_calls += outcome.function_calls;
            total_grad_calls += outcome.gradient_calls;
            if best
                .as_ref()
                .is_none_or(|b| outcome.expectation > b.expectation)
            {
                best = Some(outcome);
            }
        }
        let mut best = best.ok_or(QaoaError::InvalidScenario {
            reason: "multistart needs at least one start",
        })?;
        best.function_calls = total_calls;
        best.gradient_calls = total_grad_calls;
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use optimize::NelderMead;
    use qsim::KrausChannel;

    fn problem() -> MaxCutProblem {
        MaxCutProblem::new(&generators::cycle(4)).unwrap()
    }

    #[test]
    fn noiseless_matches_state_vector_path() {
        let nq = NoisyQaoa::new(problem(), 2, NoiseModel::noiseless()).unwrap();
        let params = [0.7, 0.3, 0.5, 0.2];
        let dm = nq.expectation(&params).unwrap();
        let sv = nq.ansatz().expectation(&params).unwrap();
        assert!((dm - sv).abs() < 1e-9, "dm {dm} sv {sv}");
    }

    #[test]
    fn noise_monotonically_degrades_energy_at_optimum() {
        // At a good parameter point, more depolarizing noise means lower ⟨C⟩.
        let params = [0.9, 0.35];
        let mut last = f64::INFINITY;
        for p in [0.0, 0.01, 0.05, 0.2] {
            let nq = NoisyQaoa::new(
                problem(),
                1,
                NoiseModel::uniform_depolarizing(p, p).unwrap(),
            )
            .unwrap();
            let e = nq.expectation(&params).unwrap();
            assert!(e < last + 1e-12, "p={p}: {e} !< {last}");
            last = e;
        }
    }

    #[test]
    fn full_noise_gives_mixed_state_energy() {
        // p = 1 depolarizing after every gate destroys all structure; the
        // energy approaches Tr(H_C)/2ⁿ = m/2 for unweighted MaxCut.
        let nq = NoisyQaoa::new(
            problem(),
            1,
            NoiseModel::uniform_depolarizing(1.0, 1.0).unwrap(),
        )
        .unwrap();
        let e = nq.expectation(&[0.9, 0.35]).unwrap();
        let mixed_energy = 4.0 / 2.0; // cycle(4): m = 4 edges
        assert!((e - mixed_energy).abs() < 0.15, "{e}");
    }

    #[test]
    fn optimize_under_mild_noise_still_beats_mixed_state() {
        let nq = NoisyQaoa::new(
            problem(),
            1,
            NoiseModel::uniform_depolarizing(0.001, 0.005).unwrap(),
        )
        .unwrap();
        let out = nq
            .optimize(&NelderMead::default(), &[0.5, 0.5], &Options::default())
            .unwrap();
        assert!(out.function_calls > 0);
        assert!(out.expectation > 2.0, "{}", out.expectation);
        assert!(out.approximation_ratio > 0.5);
    }

    #[test]
    fn dephasing_noise_supported() {
        let nm = NoiseModel {
            after_1q: Some(KrausChannel::phase_damping(0.01).unwrap()),
            after_2q: Some(KrausChannel::amplitude_damping(0.02).unwrap()),
        };
        let nq = NoisyQaoa::new(problem(), 1, nm).unwrap();
        let e = nq.expectation(&[0.9, 0.35]).unwrap();
        assert!(e.is_finite());
        let state = nq.state(&[0.9, 0.35]).unwrap();
        assert!((state.trace() - 1.0).abs() < 1e-9);
        assert!(state.purity() < 1.0);
    }

    #[test]
    fn parameter_and_size_validation() {
        let nq = NoisyQaoa::new(problem(), 2, NoiseModel::noiseless()).unwrap();
        assert!(matches!(
            nq.expectation(&[0.1, 0.2]),
            Err(QaoaError::ParameterCount { .. })
        ));
        assert!(matches!(
            nq.optimize(&NelderMead::default(), &[0.1], &Options::default()),
            Err(QaoaError::ParameterCount { .. })
        ));
        let big = MaxCutProblem::new(&generators::cycle(MAX_DM_QUBITS + 1)).unwrap();
        assert!(matches!(
            NoisyQaoa::new(big, 1, NoiseModel::noiseless()),
            Err(QaoaError::TooLarge { .. })
        ));
    }
}
