//! The naive-vs-ML comparison harness behind Table I.
//!
//! For every (optimizer, target depth) cell the paper reports the mean and
//! standard deviation of the approximation ratio and of the function-call
//! count over the 264 test graphs, under two protocols:
//!
//! * **naive** — each graph solved from random initializations; AR and FC
//!   are averaged over the `n_starts` independent runs (Table I's FC values
//!   like `0.2172` are thousands of calls per run),
//! * **two-level** — the proposed flow: FC = level-1 calls + ML-initialized
//!   target-depth calls.

use graphs::Graph;
use ml::metrics::{mean, std_dev};
use optimize::{Optimizer, Options};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{
    MaxCutProblem, ParameterPredictor, QaoaError, Scenario, ScenarioInstance, TwoLevelConfig,
    TwoLevelFlow,
};

/// Configuration of a Table-I style comparison sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationConfig {
    /// Target depths to evaluate (paper: 2..=5).
    pub depths: Vec<usize>,
    /// Random initializations per graph for the naive protocol (paper: 20).
    pub naive_starts: usize,
    /// Level-1 starts for the two-level protocol.
    pub level1_starts: usize,
    /// Optimizer options for every run.
    pub options: Options,
    /// Seed for all random initializations.
    pub seed: u64,
    /// How every objective evaluation is performed (exact, sampled, or
    /// decohered) — in both protocols, at both levels.
    pub scenario: Scenario,
}

impl EvaluationConfig {
    /// The paper's Table-I configuration.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            depths: vec![2, 3, 4, 5],
            naive_starts: 20,
            level1_starts: 1,
            options: Options::default(),
            seed: 77,
            scenario: Scenario::Exact,
        }
    }

    /// A CI-scale configuration.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            depths: vec![2, 3],
            naive_starts: 3,
            level1_starts: 1,
            options: Options::default(),
            seed: 77,
            scenario: Scenario::Exact,
        }
    }
}

impl Default for EvaluationConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// One Table-I row: a (optimizer, depth) cell with both protocols' stats.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Optimizer name (`"L-BFGS-B"`, …).
    pub optimizer: String,
    /// Target depth `pt`.
    pub depth: usize,
    /// Naive protocol: mean AR over graphs × starts.
    pub naive_ar_mean: f64,
    /// Naive protocol: SD of AR.
    pub naive_ar_sd: f64,
    /// Naive protocol: mean function calls per run.
    pub naive_fc_mean: f64,
    /// Naive protocol: SD of function calls.
    pub naive_fc_sd: f64,
    /// Two-level protocol: mean AR over graphs.
    pub ml_ar_mean: f64,
    /// Two-level protocol: SD of AR.
    pub ml_ar_sd: f64,
    /// Two-level protocol: mean total function calls.
    pub ml_fc_mean: f64,
    /// Two-level protocol: SD of total function calls.
    pub ml_fc_sd: f64,
}

impl ComparisonRow {
    /// Percentage reduction in mean function calls (the paper's headline
    /// number; 44.9% on average across its sweep).
    #[must_use]
    pub fn fc_reduction_percent(&self) -> f64 {
        if self.naive_fc_mean <= 0.0 {
            0.0
        } else {
            100.0 * (self.naive_fc_mean - self.ml_fc_mean) / self.naive_fc_mean
        }
    }

    /// Formats the row in Table I's layout (FC in thousands, like the
    /// paper's `0.2172`-style entries).
    #[must_use]
    pub fn to_table_line(&self) -> String {
        format!(
            "{:<12} {:>2}  {:>7.4} {:>7.4} {:>8.4} {:>8.4}  {:>7.4} {:>7.4} {:>8.4} {:>8.4}  {:>6.1}",
            self.optimizer,
            self.depth,
            self.naive_ar_mean,
            self.naive_ar_sd,
            self.naive_fc_mean / 1e3,
            self.naive_fc_sd / 1e3,
            self.ml_ar_mean,
            self.ml_ar_sd,
            self.ml_fc_mean / 1e3,
            self.ml_fc_sd / 1e3,
            self.fc_reduction_percent()
        )
    }
}

/// The header matching [`ComparisonRow::to_table_line`].
#[must_use]
pub fn table_header() -> String {
    format!(
        "{:<12} {:>2}  {:>7} {:>7} {:>8} {:>8}  {:>7} {:>7} {:>8} {:>8}  {:>6}",
        "Optimizer",
        "p",
        "nAR",
        "sdAR",
        "nFC(k)",
        "sdFC(k)",
        "mAR",
        "sdAR",
        "mFC(k)",
        "sdFC(k)",
        "red%"
    )
}

/// Derives the independent RNG seed of one graph within a protocol sweep.
///
/// Both protocols seed **per graph** from `(master, graph_index)` rather
/// than streaming one RNG across the whole sweep. The derivation is a
/// SplitMix64 finalizer, so it is a pure function of its inputs — which is
/// what lets the `engine` crate run per-graph jobs on any number of workers
/// and still reproduce the serial sweep bit-for-bit.
#[must_use]
pub fn graph_seed(master: u64, graph_index: usize) -> u64 {
    use crate::stablehash::{mix64, GOLDEN_GAMMA};
    mix64(master ^ (graph_index as u64).wrapping_mul(GOLDEN_GAMMA))
}

/// Runs the naive protocol for a **single** graph: `n_starts` independent
/// random-init optimizations, one `(AR, FC)` sample per start, each
/// objective evaluation performed under `scenario` ([`Scenario::Exact`]
/// reproduces the historical noiseless protocol bit-for-bit).
///
/// # Errors
///
/// Propagates problem-construction, scenario, and optimizer errors.
#[allow(clippy::too_many_arguments)]
pub fn naive_protocol_graph(
    graph: &Graph,
    depth: usize,
    optimizer: &dyn Optimizer,
    n_starts: usize,
    options: &Options,
    seed: u64,
    scenario: &Scenario,
) -> Result<Vec<(f64, usize)>, QaoaError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bounds = crate::parameter_bounds(depth)?;
    let problem = MaxCutProblem::new(graph)?;
    let instance = ScenarioInstance::new(problem, depth, scenario, seed)?;
    let mut samples = Vec::with_capacity(n_starts);
    for _ in 0..n_starts {
        let start = bounds.sample(&mut rng);
        let out = instance.optimize(optimizer, &start, options)?;
        samples.push((out.approximation_ratio, out.function_calls));
    }
    Ok(samples)
}

/// Runs the naive protocol for one optimizer/depth over a set of graphs.
///
/// Returns per-run `(approximation_ratio, function_calls)` samples — one
/// per (graph, start) pair. Each graph is seeded independently via
/// [`graph_seed`].
///
/// # Errors
///
/// Propagates problem-construction and optimizer errors.
#[allow(clippy::too_many_arguments)]
pub fn naive_protocol(
    graphs: &[Graph],
    depth: usize,
    optimizer: &dyn Optimizer,
    n_starts: usize,
    options: &Options,
    seed: u64,
    scenario: &Scenario,
) -> Result<Vec<(f64, usize)>, QaoaError> {
    let mut samples = Vec::with_capacity(graphs.len() * n_starts);
    for (gi, graph) in graphs.iter().enumerate() {
        samples.extend(naive_protocol_graph(
            graph,
            depth,
            optimizer,
            n_starts,
            options,
            graph_seed(seed, gi),
            scenario,
        )?);
    }
    Ok(samples)
}

/// Runs the two-level protocol for a **single** graph, returning its
/// `(approximation_ratio, total_function_calls)` sample.
///
/// # Errors
///
/// Propagates flow errors.
#[allow(clippy::too_many_arguments)]
pub fn two_level_protocol_graph(
    graph: &Graph,
    depth: usize,
    optimizer: &dyn Optimizer,
    predictor: &ParameterPredictor,
    level1_starts: usize,
    options: &Options,
    seed: u64,
    scenario: &Scenario,
) -> Result<(f64, usize), QaoaError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let flow = TwoLevelFlow::new(predictor);
    let config = TwoLevelConfig {
        level1_starts,
        options: *options,
    };
    let problem = MaxCutProblem::new(graph)?;
    let out = flow.run_scenario(
        &problem, depth, optimizer, &config, &mut rng, scenario, seed,
    )?;
    Ok((out.approximation_ratio, out.total_calls()))
}

/// Runs the two-level protocol for one optimizer/depth over a set of graphs.
///
/// Returns per-graph `(approximation_ratio, total_function_calls)` samples.
/// Each graph is seeded independently via [`graph_seed`].
///
/// # Errors
///
/// Propagates flow errors.
#[allow(clippy::too_many_arguments)]
pub fn two_level_protocol(
    graphs: &[Graph],
    depth: usize,
    optimizer: &dyn Optimizer,
    predictor: &ParameterPredictor,
    level1_starts: usize,
    options: &Options,
    seed: u64,
    scenario: &Scenario,
) -> Result<Vec<(f64, usize)>, QaoaError> {
    let mut samples = Vec::with_capacity(graphs.len());
    for (gi, graph) in graphs.iter().enumerate() {
        samples.push(two_level_protocol_graph(
            graph,
            depth,
            optimizer,
            predictor,
            level1_starts,
            options,
            graph_seed(seed, gi),
            scenario,
        )?);
    }
    Ok(samples)
}

/// The RNG seed of the `(optimizer_index, depth_index)` cell of a sweep —
/// a pure function of the sweep seed and cell coordinates, shared by the
/// serial [`compare`] and the parallel engine driver.
#[must_use]
pub fn cell_seed(master: u64, optimizer_index: usize, depth_index: usize) -> u64 {
    master.wrapping_add((optimizer_index * 1000 + depth_index) as u64)
}

/// Aggregates per-run samples of both protocols into one [`ComparisonRow`].
#[must_use]
pub fn row_from_samples(
    optimizer_name: &str,
    depth: usize,
    naive: &[(f64, usize)],
    ml: &[(f64, usize)],
) -> ComparisonRow {
    let naive_ar: Vec<f64> = naive.iter().map(|s| s.0).collect();
    let naive_fc: Vec<f64> = naive.iter().map(|s| s.1 as f64).collect();
    let ml_ar: Vec<f64> = ml.iter().map(|s| s.0).collect();
    let ml_fc: Vec<f64> = ml.iter().map(|s| s.1 as f64).collect();
    ComparisonRow {
        optimizer: optimizer_name.to_string(),
        depth,
        naive_ar_mean: mean(&naive_ar),
        naive_ar_sd: std_dev(&naive_ar),
        naive_fc_mean: mean(&naive_fc),
        naive_fc_sd: std_dev(&naive_fc),
        ml_ar_mean: mean(&ml_ar),
        ml_ar_sd: std_dev(&ml_ar),
        ml_fc_mean: mean(&ml_fc),
        ml_fc_sd: std_dev(&ml_fc),
    }
}

/// Computes one Table-I cell (both protocols, all graphs) serially.
///
/// # Errors
///
/// Propagates any protocol error.
pub fn compare_cell(
    graphs: &[Graph],
    optimizer: &dyn Optimizer,
    depth: usize,
    predictor: &ParameterPredictor,
    config: &EvaluationConfig,
    seed: u64,
) -> Result<ComparisonRow, QaoaError> {
    let naive = naive_protocol(
        graphs,
        depth,
        optimizer,
        config.naive_starts,
        &config.options,
        seed,
        &config.scenario,
    )?;
    let ml = two_level_protocol(
        graphs,
        depth,
        optimizer,
        predictor,
        config.level1_starts,
        &config.options,
        seed.wrapping_add(500),
        &config.scenario,
    )?;
    Ok(row_from_samples(optimizer.name(), depth, &naive, &ml))
}

/// Produces the full Table-I comparison for the given optimizers and test
/// graphs.
///
/// # Errors
///
/// Propagates any per-cell error.
pub fn compare(
    graphs: &[Graph],
    optimizers: &[Box<dyn Optimizer + Send + Sync>],
    predictor: &ParameterPredictor,
    config: &EvaluationConfig,
) -> Result<Vec<ComparisonRow>, QaoaError> {
    let mut rows = Vec::new();
    for (oi, optimizer) in optimizers.iter().enumerate() {
        for (di, &depth) in config.depths.iter().enumerate() {
            rows.push(compare_cell(
                graphs,
                optimizer.as_ref(),
                depth,
                predictor,
                config,
                cell_seed(config.seed, oi, di),
            )?);
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{DataGenConfig, ParameterDataset};
    use ml::ModelKind;
    use optimize::Lbfgsb;

    fn corpus() -> ParameterDataset {
        ParameterDataset::generate(&DataGenConfig {
            n_graphs: 6,
            n_nodes: 5,
            edge_probability: 0.6,
            max_depth: 2,
            restarts: 2,
            seed: 91,
            options: Default::default(),
            trend_preference_margin: 1e-3,
        })
        .unwrap()
    }

    #[test]
    fn reduction_percent_math() {
        let row = ComparisonRow {
            optimizer: "X".into(),
            depth: 2,
            naive_ar_mean: 0.9,
            naive_ar_sd: 0.0,
            naive_fc_mean: 200.0,
            naive_fc_sd: 0.0,
            ml_ar_mean: 0.9,
            ml_ar_sd: 0.0,
            ml_fc_mean: 100.0,
            ml_fc_sd: 0.0,
        };
        assert_eq!(row.fc_reduction_percent(), 50.0);
        assert!(row.to_table_line().contains("50.0"));
        assert!(table_header().contains("red%"));
        let degenerate = ComparisonRow {
            naive_fc_mean: 0.0,
            ..row
        };
        assert_eq!(degenerate.fc_reduction_percent(), 0.0);
    }

    #[test]
    fn protocols_produce_expected_sample_counts() {
        let ds = corpus();
        let (train, test) = ds.split_by_graph(0.5);
        let predictor = ParameterPredictor::train(ModelKind::Linear, &train).unwrap();
        let opt = Lbfgsb::default();
        let naive = naive_protocol(
            test.graphs(),
            2,
            &opt,
            2,
            &Options::default(),
            3,
            &Scenario::Exact,
        )
        .unwrap();
        assert_eq!(naive.len(), test.graphs().len() * 2);
        let ml = two_level_protocol(
            test.graphs(),
            2,
            &opt,
            &predictor,
            1,
            &Options::default(),
            3,
            &Scenario::Exact,
        )
        .unwrap();
        assert_eq!(ml.len(), test.graphs().len());
        for (ar, fc) in naive.iter().chain(&ml) {
            assert!((0.0..=1.0 + 1e-9).contains(ar));
            assert!(*fc > 0);
        }
    }

    #[test]
    fn compare_emits_one_row_per_cell() {
        let ds = corpus();
        let (train, test) = ds.split_by_graph(0.5);
        let predictor = ParameterPredictor::train(ModelKind::Linear, &train).unwrap();
        let optimizers: Vec<Box<dyn Optimizer + Send + Sync>> = vec![Box::new(Lbfgsb::default())];
        let config = EvaluationConfig {
            depths: vec![2],
            naive_starts: 2,
            level1_starts: 1,
            options: Options::default(),
            seed: 7,
            scenario: Scenario::Exact,
        };
        let rows = compare(test.graphs(), &optimizers, &predictor, &config).unwrap();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.optimizer, "L-BFGS-B");
        assert_eq!(row.depth, 2);
        assert!(row.naive_fc_mean > 0.0);
        assert!(row.ml_fc_mean > 0.0);
    }
}
