//! ML-accelerated QAOA for MaxCut — reproduction of Alam, Ash-Saki & Ghosh,
//! *"Accelerating Quantum Approximate Optimization Algorithm using Machine
//! Learning"*, DATE 2020.
//!
//! The paper's observation: the optimal QAOA control parameters
//! `(γᵢ, βᵢ)` of a MaxCut instance are strongly correlated across circuit
//! depths, so a small regression model can predict near-optimal initial
//! parameters for a depth-`pt` circuit from the depth-1 optimum, cutting the
//! classical optimization loop's iteration count by ~45% on average.
//!
//! The crate is organized along the paper's pipeline:
//!
//! * [`MaxCutProblem`] — cost Hamiltonian and exact optimum of a graph,
//! * [`QaoaAnsatz`] — the parametric circuit, with a gate-level path
//!   (Fig. 1(a): H / CNOT·RZ·CNOT / RX layers) and a fast diagonal path,
//!   cross-validated against each other,
//! * [`QaoaInstance`] — the closed optimization loop (quantum simulator +
//!   classical optimizer) with function-call accounting,
//! * [`datagen`] — the 330-graph, depth-1..6 training corpus (§III-A),
//! * [`features`] — predictor/response extraction (§II-D),
//! * [`ParameterPredictor`] — per-stage regression models (§III-C),
//! * [`TwoLevelFlow`] — the proposed accelerated flow (Fig. 4),
//! * [`evaluation`] — the naive-vs-ML comparison harness behind Table I.
//!
//! # Quickstart
//!
//! ```
//! use graphs::generators;
//! use optimize::Lbfgsb;
//! use qaoa::{MaxCutProblem, QaoaInstance};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), qaoa::QaoaError> {
//! let graph = generators::cycle(4);
//! let problem = MaxCutProblem::new(&graph)?;
//! let instance = QaoaInstance::new(problem, 1)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let outcome = instance.optimize_multistart(&Lbfgsb::default(), 5, &mut rng, &Default::default())?;
//! assert!(outcome.approximation_ratio > 0.7);
//! # Ok(())
//! # }
//! ```

mod ansatz;
pub mod canonical;
pub mod datagen;
mod error;
pub mod eval;
pub mod evaluation;
pub mod features;
pub mod graph_aware;
mod instance;
pub mod landscape;
pub mod noise;
pub mod noisy;
mod predictor;
mod problem;
pub mod sampled;
pub mod scenario;
pub mod stablehash;
mod twolevel;
pub mod warmstart;

pub use ansatz::QaoaAnsatz;
pub use error::QaoaError;
pub use eval::EvalContext;
pub use instance::{InstanceOutcome, QaoaInstance};
pub use predictor::ParameterPredictor;
pub use problem::MaxCutProblem;
pub use scenario::{Scenario, ScenarioInstance};
pub use twolevel::{TwoLevelConfig, TwoLevelFlow, TwoLevelOutcome};

/// The paper's parameter domain: γ ∈ [0, 2π].
pub const GAMMA_MAX: f64 = 2.0 * std::f64::consts::PI;
/// The paper's parameter domain: β ∈ [0, π].
pub const BETA_MAX: f64 = std::f64::consts::PI;

/// Bound-constrained parameter box for a depth-`p` instance, laid out as
/// `[γ₁…γ_p, β₁…β_p]`.
///
/// # Errors
///
/// Returns [`QaoaError::InvalidDepth`] for `p = 0`.
///
/// ```
/// let b = qaoa::parameter_bounds(2).unwrap();
/// assert_eq!(b.dim(), 4);
/// assert_eq!(b.upper()[0], 2.0 * std::f64::consts::PI); // γ
/// assert_eq!(b.upper()[2], std::f64::consts::PI);       // β
/// ```
pub fn parameter_bounds(p: usize) -> Result<optimize::Bounds, QaoaError> {
    if p == 0 {
        return Err(QaoaError::InvalidDepth { depth: p });
    }
    let mut lower = Vec::with_capacity(2 * p);
    let mut upper = Vec::with_capacity(2 * p);
    for _ in 0..p {
        lower.push(0.0);
        upper.push(GAMMA_MAX);
    }
    for _ in 0..p {
        lower.push(0.0);
        upper.push(BETA_MAX);
    }
    optimize::Bounds::new(lower, upper).map_err(QaoaError::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_layout() {
        let b = parameter_bounds(3).unwrap();
        assert_eq!(b.dim(), 6);
        for i in 0..3 {
            assert_eq!(b.upper()[i], GAMMA_MAX);
            assert_eq!(b.upper()[3 + i], BETA_MAX);
            assert_eq!(b.lower()[i], 0.0);
        }
        assert!(parameter_bounds(0).is_err());
    }
}
