//! Training-corpus generation (§III-A of the paper).
//!
//! The paper builds its dataset from 330 Erdős–Rényi graphs (8 nodes, edge
//! probability 0.5), solving each at depths `p = 1…6` with L-BFGS-B from 20
//! random initializations — 13,860 optimal parameters in total. This module
//! reproduces that pipeline with a configurable scale and a TSV
//! serialization so the (one-time) generation cost can be amortized across
//! experiments.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use graphs::{generators, Graph};
use optimize::{Lbfgsb, Optimizer, Options};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{MaxCutProblem, QaoaError, QaoaInstance};

/// One row of the corpus: the optimal parameters of one `(graph, depth)`
/// QAOA instance.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalRecord {
    /// Index of the graph within the generated ensemble.
    pub graph_id: usize,
    /// Circuit depth `p` of this instance.
    pub depth: usize,
    /// Optimal phase-separation parameters `γ₁…γ_p`.
    pub gammas: Vec<f64>,
    /// Optimal mixing parameters `β₁…β_p`.
    pub betas: Vec<f64>,
    /// Best expectation `⟨C⟩` reached.
    pub expectation: f64,
    /// Approximation ratio at the optimum.
    pub approximation_ratio: f64,
    /// Total function calls spent (all restarts).
    pub function_calls: usize,
}

impl OptimalRecord {
    /// Number of optimal parameters this record contributes (`2·p`).
    #[must_use]
    pub fn n_parameters(&self) -> usize {
        self.gammas.len() + self.betas.len()
    }
}

/// Configuration of the data-generation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct DataGenConfig {
    /// Number of Erdős–Rényi graphs (paper: 330).
    pub n_graphs: usize,
    /// Nodes per graph (paper: 8).
    pub n_nodes: usize,
    /// Edge probability (paper: 0.5).
    pub edge_probability: f64,
    /// Depths to solve, `1..=max_depth` (paper: 6).
    pub max_depth: usize,
    /// Random initializations per instance (paper: 20).
    pub restarts: usize,
    /// RNG seed for graphs and initializations.
    pub seed: u64,
    /// Optimizer options (paper: ftol 1e-6).
    pub options: Options,
    /// Relative margin by which a random-restart optimum must beat the
    /// trend-seeded optimum to be recorded instead of it. QAOA landscapes
    /// carry near-degenerate optima in different basin families; among
    /// near-ties the trend-consistent representative keeps the corpus
    /// learnable (outliers in the regression targets otherwise wreck GPR).
    pub trend_preference_margin: f64,
}

impl DataGenConfig {
    /// The paper's full-scale configuration (330 graphs × depths 1–6 × 20
    /// restarts). Expect minutes of compute; use [`DataGenConfig::quick`]
    /// for tests.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            n_graphs: 330,
            n_nodes: 8,
            edge_probability: 0.5,
            max_depth: 6,
            restarts: 20,
            seed: 2020,
            options: Options::default(),
            trend_preference_margin: 1e-3,
        }
    }

    /// A CI-scale configuration: few small graphs, shallow depths.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            n_graphs: 10,
            n_nodes: 6,
            edge_probability: 0.5,
            max_depth: 3,
            restarts: 3,
            seed: 2020,
            options: Options::default(),
            trend_preference_margin: 1e-3,
        }
    }
}

impl Default for DataGenConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The generated corpus: the graph ensemble plus one [`OptimalRecord`] per
/// `(graph, depth)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterDataset {
    graphs: Vec<Graph>,
    records: Vec<OptimalRecord>,
    max_depth: usize,
}

impl ParameterDataset {
    /// Runs the full §III-A pipeline under `config`.
    ///
    /// Uses L-BFGS-B with multistart (the paper's data-generation
    /// optimizer). Deterministic for a fixed seed.
    ///
    /// # Errors
    ///
    /// Propagates problem-construction and optimizer errors.
    pub fn generate(config: &DataGenConfig) -> Result<Self, QaoaError> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let graphs: Vec<Graph> = (0..config.n_graphs)
            .map(|_| {
                generators::erdos_renyi_nonempty(config.n_nodes, config.edge_probability, &mut rng)
            })
            .collect();
        Self::from_graphs(graphs, config)
    }

    /// Runs the pipeline over a caller-supplied graph ensemble (used by the
    /// 3-regular figure reproductions).
    ///
    /// # Errors
    ///
    /// Propagates problem-construction and optimizer errors.
    pub fn from_graphs(graphs: Vec<Graph>, config: &DataGenConfig) -> Result<Self, QaoaError> {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(1));
        let mut records = Vec::with_capacity(graphs.len() * config.max_depth);
        for (graph_id, graph) in graphs.iter().enumerate() {
            let problem = MaxCutProblem::new(graph)?;
            // Canonical optimum of the previous depth, used to trend-seed
            // the next one.
            let mut prev: Option<(Vec<f64>, Vec<f64>)> = None;
            for depth in 1..=config.max_depth {
                let record =
                    solve_depth(&problem, graph_id, depth, prev.as_ref(), config, &mut rng)?;
                prev = Some((record.gammas.clone(), record.betas.clone()));
                records.push(record);
            }
        }
        Ok(Self {
            graphs,
            records,
            max_depth: config.max_depth,
        })
    }

    /// Assembles a dataset from pre-solved parts — the constructor used by
    /// the parallel `engine` corpus generator, which fans [`solve_depth`]
    /// jobs across a worker pool and stitches the records back together in
    /// graph order.
    ///
    /// # Errors
    ///
    /// Returns [`QaoaError::Parse`] when a record references a graph outside
    /// `graphs` or a depth beyond `max_depth` (the same invariants the TSV
    /// reader enforces).
    pub fn from_parts(
        graphs: Vec<Graph>,
        records: Vec<OptimalRecord>,
        max_depth: usize,
    ) -> Result<Self, QaoaError> {
        for (i, r) in records.iter().enumerate() {
            if r.graph_id >= graphs.len() || r.depth == 0 || r.depth > max_depth {
                return Err(QaoaError::Parse {
                    line: i + 1,
                    message: format!(
                        "record {} out of range: graph_id {} (of {}), depth {} (max {})",
                        i,
                        r.graph_id,
                        graphs.len(),
                        r.depth,
                        max_depth
                    ),
                });
            }
        }
        Ok(Self {
            graphs,
            records,
            max_depth,
        })
    }

    /// The graph ensemble, indexed by `graph_id`.
    #[must_use]
    pub fn graphs(&self) -> &[Graph] {
        &self.graphs
    }

    /// All records.
    #[must_use]
    pub fn records(&self) -> &[OptimalRecord] {
        &self.records
    }

    /// Largest depth in the corpus.
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Total count of optimal parameters — the paper quotes 13,860 for its
    /// configuration (`330 · 2·(1+2+…+6)`).
    #[must_use]
    pub fn n_parameters(&self) -> usize {
        self.records.iter().map(OptimalRecord::n_parameters).sum()
    }

    /// Records for one depth, in graph order.
    #[must_use]
    pub fn records_at_depth(&self, depth: usize) -> Vec<&OptimalRecord> {
        self.records.iter().filter(|r| r.depth == depth).collect()
    }

    /// The record for a specific `(graph, depth)` pair.
    #[must_use]
    pub fn record(&self, graph_id: usize, depth: usize) -> Option<&OptimalRecord> {
        self.records
            .iter()
            .find(|r| r.graph_id == graph_id && r.depth == depth)
    }

    /// Splits the corpus **by graph** into train/test subsets (the paper's
    /// 20:80 split keeps all depths of a graph together).
    #[must_use]
    pub fn split_by_graph(&self, train_fraction: f64) -> (ParameterDataset, ParameterDataset) {
        let n = self.graphs.len();
        let k = ((train_fraction.clamp(0.0, 1.0) * n as f64).ceil() as usize)
            .clamp(1, n.saturating_sub(1).max(1));
        let subset = |range: std::ops::Range<usize>| -> ParameterDataset {
            let graphs: Vec<Graph> = range.clone().map(|i| self.graphs[i].clone()).collect();
            let records: Vec<OptimalRecord> = self
                .records
                .iter()
                .filter(|r| range.contains(&r.graph_id))
                .map(|r| {
                    let mut r = r.clone();
                    r.graph_id -= range.start;
                    r
                })
                .collect();
            ParameterDataset {
                graphs,
                records,
                max_depth: self.max_depth,
            }
        };
        (subset(0..k), subset(k..n))
    }

    /// Writes the corpus as TSV (one header line, one line per record).
    ///
    /// Streaming producers that never hold the whole record set — the
    /// sharded corpus coordinator writes each merged record as it arrives —
    /// use the same [`write_tsv_header`] / [`write_tsv_record`] helpers
    /// directly, so their output is byte-identical to this method's.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_tsv<W: Write>(&self, mut w: W) -> Result<(), QaoaError> {
        write_tsv_header(&mut w)?;
        for r in &self.records {
            write_tsv_record(&mut w, r, &self.graphs[r.graph_id])?;
        }
        Ok(())
    }

    /// Reads a corpus previously written by [`ParameterDataset::write_tsv`].
    ///
    /// # Errors
    ///
    /// * [`QaoaError::Io`] on read failure.
    /// * [`QaoaError::Parse`] on malformed content.
    pub fn read_tsv<R: Read>(r: R) -> Result<Self, QaoaError> {
        let reader = BufReader::new(r);
        let mut records = Vec::new();
        let mut graphs: Vec<Graph> = Vec::new();
        let mut max_depth = 0usize;
        for (lineno, line) in reader.lines().enumerate() {
            let line = line?;
            if lineno == 0 || line.trim().is_empty() {
                continue; // header
            }
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != 9 {
                return Err(QaoaError::Parse {
                    line: lineno + 1,
                    message: format!("expected 9 fields, got {}", fields.len()),
                });
            }
            let parse_err = |message: String| QaoaError::Parse {
                line: lineno + 1,
                message,
            };
            let graph_id: usize = fields[0]
                .parse()
                .map_err(|e| parse_err(format!("graph_id: {e}")))?;
            let depth: usize = fields[1]
                .parse()
                .map_err(|e| parse_err(format!("depth: {e}")))?;
            let expectation: f64 = fields[2]
                .parse()
                .map_err(|e| parse_err(format!("expectation: {e}")))?;
            let ar: f64 = fields[3]
                .parse()
                .map_err(|e| parse_err(format!("ar: {e}")))?;
            let fc: usize = fields[4]
                .parse()
                .map_err(|e| parse_err(format!("fc: {e}")))?;
            let gammas = split_floats(fields[5]).map_err(|m| parse_err(format!("gammas: {m}")))?;
            let betas = split_floats(fields[6]).map_err(|m| parse_err(format!("betas: {m}")))?;
            let n_nodes: usize = fields[7]
                .parse()
                .map_err(|e| parse_err(format!("n_nodes: {e}")))?;
            // Materialize the graph the first time its id appears.
            if graph_id == graphs.len() {
                let mut g = Graph::new(n_nodes);
                for pair in fields[8].split(',').filter(|s| !s.is_empty()) {
                    let (u, v) = pair
                        .split_once('-')
                        .ok_or_else(|| parse_err(format!("edge `{pair}`")))?;
                    let u: usize = u.parse().map_err(|e| parse_err(format!("edge u: {e}")))?;
                    let v: usize = v.parse().map_err(|e| parse_err(format!("edge v: {e}")))?;
                    g.add_edge(u, v)?;
                }
                graphs.push(g);
            } else if graph_id > graphs.len() {
                return Err(parse_err("graph ids out of order".into()));
            }
            max_depth = max_depth.max(depth);
            records.push(OptimalRecord {
                graph_id,
                depth,
                gammas,
                betas,
                expectation,
                approximation_ratio: ar,
                function_calls: fc,
            });
        }
        if records.is_empty() {
            return Err(QaoaError::Parse {
                line: 1,
                message: "dataset contains no records".into(),
            });
        }
        Ok(Self {
            graphs,
            records,
            max_depth,
        })
    }

    /// Convenience: write to a filesystem path.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), QaoaError> {
        let file = std::fs::File::create(path)?;
        self.write_tsv(file)
    }

    /// Convenience: read from a filesystem path.
    ///
    /// # Errors
    ///
    /// Propagates I/O and parse errors.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, QaoaError> {
        let file = std::fs::File::open(path)?;
        Self::read_tsv(file)
    }
}

/// Solves one `(graph, depth)` corpus cell: the paper's best-of-`restarts`
/// multistart, plus one trend-seeded run interpolated from the previous
/// depth's canonical optimum (`prev`), with near-ties resolved to the
/// trend-consistent basin. Returns the canonicalized [`OptimalRecord`].
///
/// This is the unit of work of the §III-A pipeline. The serial
/// [`ParameterDataset::from_graphs`] streams one RNG through every cell;
/// the parallel engine derives an independent RNG per cell so results are
/// identical at any worker count.
///
/// # Errors
///
/// Propagates instance-construction and optimizer errors.
pub fn solve_depth<R: Rng + ?Sized>(
    problem: &MaxCutProblem,
    graph_id: usize,
    depth: usize,
    prev: Option<&(Vec<f64>, Vec<f64>)>,
    config: &DataGenConfig,
    rng: &mut R,
) -> Result<OptimalRecord, QaoaError> {
    let optimizer = Lbfgsb::default();
    let instance = QaoaInstance::new(problem.clone(), depth)?;
    // The paper's protocol: best of `restarts` random inits.
    let mut outcome = instance.optimize_multistart(
        &optimizer as &dyn Optimizer,
        config.restarts,
        rng,
        &config.options,
    )?;
    // One extra trend-seeded run (Zhou et al.'s INTERP schedule, the
    // paper's ref [5]): initialize depth p from the interpolated
    // depth-(p−1) optimum. QAOA landscapes carry many near-degenerate
    // local optima, and independent multistart hops between them across
    // graphs; the interpolation seed keeps every graph in the same smooth
    // basin family — the regularity Figs. 2/3 depend on.
    if let Some((pg, pb)) = prev {
        let mut seed = interp_resample(pg, depth);
        seed.extend(interp_resample(pb, depth));
        let seeded = instance.optimize(&optimizer as &dyn Optimizer, &seed, &config.options)?;
        let total = outcome.function_calls + seeded.function_calls;
        // Record the random-restart winner only when it beats the
        // trend-consistent optimum by a real margin; near-degenerate ties
        // resolve to the seeded basin.
        let margin = config.trend_preference_margin * (1.0 + seeded.expectation.abs());
        if outcome.expectation <= seeded.expectation + margin {
            outcome = seeded;
        }
        outcome.function_calls = total;
    }
    // Fold the optimum into the canonical symmetry domain so optimal
    // parameters are comparable across graphs (see the `canonical` module).
    let mut gammas = outcome.gammas().to_vec();
    let mut betas = outcome.betas().to_vec();
    crate::canonical::canonicalize(&mut gammas, &mut betas);
    Ok(OptimalRecord {
        graph_id,
        depth,
        gammas,
        betas,
        expectation: outcome.expectation,
        approximation_ratio: outcome.approximation_ratio,
        function_calls: outcome.function_calls,
    })
}

/// Linearly resamples a parameter schedule to a new length — Zhou et al.'s
/// INTERP initialization (the paper's ref [5]), used to seed a depth-`p`
/// optimization from a depth-`p−1` optimum. A single value is replicated.
///
/// ```
/// let seed = qaoa::datagen::interp_resample(&[1.0, 3.0], 3);
/// assert_eq!(seed, vec![1.0, 2.0, 3.0]);
/// ```
#[must_use]
pub fn interp_resample(old: &[f64], new_len: usize) -> Vec<f64> {
    if old.is_empty() || new_len == 0 {
        return vec![0.0; new_len];
    }
    if old.len() == 1 {
        return vec![old[0]; new_len];
    }
    (0..new_len)
        .map(|i| {
            let t = i as f64 * (old.len() - 1) as f64 / (new_len - 1) as f64;
            let lo = t.floor() as usize;
            let hi = (lo + 1).min(old.len() - 1);
            let frac = t - lo as f64;
            old[lo] * (1.0 - frac) + old[hi] * frac
        })
        .collect()
}

/// Writes the corpus TSV header line — the first line of every file
/// [`ParameterDataset::write_tsv`] produces.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_tsv_header<W: Write>(w: &mut W) -> Result<(), QaoaError> {
    writeln!(
        w,
        "graph_id\tdepth\texpectation\tar\tfc\tgammas\tbetas\tn_nodes\tedges"
    )?;
    Ok(())
}

/// Writes one corpus record as a TSV line, byte-identical to the line
/// [`ParameterDataset::write_tsv`] writes for the same record. `graph` must
/// be the ensemble graph `record.graph_id` refers to.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_tsv_record<W: Write>(
    w: &mut W,
    record: &OptimalRecord,
    graph: &Graph,
) -> Result<(), QaoaError> {
    let edges: Vec<String> = graph
        .edges()
        .iter()
        .map(|e| format!("{}-{}", e.u, e.v))
        .collect();
    writeln!(
        w,
        "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        record.graph_id,
        record.depth,
        record.expectation,
        record.approximation_ratio,
        record.function_calls,
        join_floats(&record.gammas),
        join_floats(&record.betas),
        graph.n_nodes(),
        edges.join(",")
    )?;
    Ok(())
}

fn join_floats(v: &[f64]) -> String {
    v.iter()
        .map(|x| format!("{x:.17e}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn split_floats(s: &str) -> Result<Vec<f64>, String> {
    s.split(',')
        .filter(|t| !t.is_empty())
        .map(|t| t.parse::<f64>().map_err(|e| e.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> DataGenConfig {
        DataGenConfig {
            n_graphs: 3,
            n_nodes: 4,
            edge_probability: 0.6,
            max_depth: 2,
            restarts: 2,
            seed: 7,
            options: Options::default(),
            trend_preference_margin: 1e-3,
        }
    }

    #[test]
    fn generation_shape_and_counts() {
        let ds = ParameterDataset::generate(&tiny_config()).unwrap();
        assert_eq!(ds.graphs().len(), 3);
        assert_eq!(ds.records().len(), 6); // 3 graphs × 2 depths
                                           // Parameter count: 3 × 2·(1+2) = 18.
        assert_eq!(ds.n_parameters(), 18);
        assert_eq!(ds.records_at_depth(1).len(), 3);
        assert!(ds.record(0, 2).is_some());
        assert!(ds.record(0, 3).is_none());
        for r in ds.records() {
            assert_eq!(r.gammas.len(), r.depth);
            assert_eq!(r.betas.len(), r.depth);
            assert!(r.approximation_ratio > 0.4 && r.approximation_ratio <= 1.0 + 1e-9);
            assert!(r.function_calls > 0);
        }
    }

    #[test]
    fn paper_scale_parameter_count_formula() {
        // 330 graphs × 2·(1+…+6) = 13,860 — the paper's quoted total.
        let per_graph: usize = (1..=6).map(|p| 2 * p).sum();
        assert_eq!(330 * per_graph, 13_860);
    }

    #[test]
    fn deterministic_generation() {
        let a = ParameterDataset::generate(&tiny_config()).unwrap();
        let b = ParameterDataset::generate(&tiny_config()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn tsv_roundtrip() {
        let ds = ParameterDataset::generate(&tiny_config()).unwrap();
        let mut buf = Vec::new();
        ds.write_tsv(&mut buf).unwrap();
        let back = ParameterDataset::read_tsv(&buf[..]).unwrap();
        assert_eq!(back.records().len(), ds.records().len());
        assert_eq!(back.graphs().len(), ds.graphs().len());
        assert_eq!(back.max_depth(), ds.max_depth());
        for (a, b) in ds.records().iter().zip(back.records()) {
            assert_eq!(a.graph_id, b.graph_id);
            assert_eq!(a.depth, b.depth);
            assert!((a.expectation - b.expectation).abs() < 1e-12);
            assert_eq!(a.gammas.len(), b.gammas.len());
        }
        // Graph edges survive the roundtrip.
        for (g, h) in ds.graphs().iter().zip(back.graphs()) {
            assert_eq!(g.n_edges(), h.n_edges());
        }
    }

    #[test]
    fn malformed_tsv_rejected() {
        assert!(matches!(
            ParameterDataset::read_tsv(&b"header\n1\t2\n"[..]),
            Err(QaoaError::Parse { line: 2, .. })
        ));
        assert!(ParameterDataset::read_tsv(&b"header only\n"[..]).is_err());
    }

    #[test]
    fn split_by_graph_keeps_depths_together() {
        let ds = ParameterDataset::generate(&tiny_config()).unwrap();
        let (train, test) = ds.split_by_graph(0.34);
        assert_eq!(train.graphs().len() + test.graphs().len(), 3);
        // Every graph contributes all its depths to exactly one side.
        assert_eq!(train.records().len() % train.graphs().len(), 0);
        assert_eq!(test.records().len() % test.graphs().len(), 0);
        // Re-indexed ids are dense.
        for r in test.records() {
            assert!(r.graph_id < test.graphs().len());
        }
    }
}

#[cfg(test)]
mod interp_tests {
    use super::interp_resample;

    #[test]
    fn single_value_replicates() {
        assert_eq!(interp_resample(&[2.0], 3), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn endpoints_preserved() {
        let out = interp_resample(&[1.0, 3.0], 4);
        assert_eq!(out.first(), Some(&1.0));
        assert_eq!(out.last(), Some(&3.0));
        assert_eq!(out.len(), 4);
        // Monotone input stays monotone.
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn identity_resample() {
        let v = vec![0.1, 0.5, 0.9];
        let out = interp_resample(&v, 3);
        for (a, b) in v.iter().zip(&out) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(interp_resample(&[], 0).is_empty());
        assert_eq!(interp_resample(&[], 2), vec![0.0, 0.0]);
        assert!(interp_resample(&[1.0, 2.0], 0).is_empty());
    }
}
