use optimize::{Optimizer, Options};
use rand::Rng;

use crate::scenario::{Scenario, ScenarioInstance};
use crate::stablehash::mix64;
use crate::{MaxCutProblem, ParameterPredictor, QaoaError, QaoaInstance};

/// Domain separators for the level-1 and level-2 scenario seeds, so the two
/// levels of one run never share a shot schedule.
const LEVEL1_DOMAIN: u64 = 0x4c45_5645_4c31; // "LEVEL1"
const LEVEL2_DOMAIN: u64 = 0x4c45_5645_4c32; // "LEVEL2"

/// Configuration of the two-level flow.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoLevelConfig {
    /// Random initializations for the level-1 (`p = 1`) optimization.
    /// The paper treats level 1 as a single cheap random-init run; raise
    /// this for a more robust (but costlier) depth-1 optimum.
    pub level1_starts: usize,
    /// Optimizer options for both levels (paper: ftol 1e-6).
    pub options: Options,
}

impl Default for TwoLevelConfig {
    fn default() -> Self {
        Self {
            level1_starts: 1,
            options: Options::default(),
        }
    }
}

/// Outcome of one two-level run.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoLevelOutcome {
    /// Final parameters at the target depth.
    pub params: Vec<f64>,
    /// Final expectation `⟨C⟩`.
    pub expectation: f64,
    /// Final approximation ratio.
    pub approximation_ratio: f64,
    /// Function calls spent on level 1 (`p = 1`, random init).
    pub level1_calls: usize,
    /// Function calls spent on intermediate levels (hierarchical runs only).
    pub intermediate_calls: usize,
    /// Function calls spent on level 2 (target depth, ML init).
    pub level2_calls: usize,
    /// Analytic gradient evaluations (`njev`) across all levels; 0 for
    /// gradient-free optimizers.
    pub gradient_calls: usize,
    /// The ML-predicted initial parameters that seeded level 2.
    pub predicted_init: Vec<f64>,
}

impl TwoLevelOutcome {
    /// Total function calls — the paper's cost metric for the proposed flow
    /// (level-1 + intermediate + level-2 calls).
    #[must_use]
    pub fn total_calls(&self) -> usize {
        self.level1_calls + self.intermediate_calls + self.level2_calls
    }
}

/// The proposed two-level QAOA implementation flow (Fig. 4).
///
/// Level 1 optimizes the cheap `p = 1` instance from random initialization;
/// the trained [`ParameterPredictor`] maps `(γ₁OPT, β₁OPT, pt)` to tuned
/// initial parameters; level 2 runs the target-depth instance from that
/// initialization with a local optimizer.
///
/// # Example
///
/// ```no_run
/// use graphs::generators;
/// use ml::ModelKind;
/// use optimize::Lbfgsb;
/// use qaoa::datagen::{DataGenConfig, ParameterDataset};
/// use qaoa::{MaxCutProblem, ParameterPredictor, TwoLevelConfig, TwoLevelFlow};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), qaoa::QaoaError> {
/// let corpus = ParameterDataset::generate(&DataGenConfig::quick())?;
/// let predictor = ParameterPredictor::train(ModelKind::Gpr, &corpus)?;
/// let flow = TwoLevelFlow::new(&predictor);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let problem = MaxCutProblem::new(&generators::cycle(6))?;
/// let out = flow.run(&problem, 3, &Lbfgsb::default(), &TwoLevelConfig::default(), &mut rng)?;
/// assert!(out.total_calls() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TwoLevelFlow<'a> {
    predictor: &'a ParameterPredictor,
}

impl<'a> TwoLevelFlow<'a> {
    /// Wraps a trained predictor.
    #[must_use]
    pub fn new(predictor: &'a ParameterPredictor) -> Self {
        Self { predictor }
    }

    /// The wrapped predictor.
    #[must_use]
    pub fn predictor(&self) -> &ParameterPredictor {
        self.predictor
    }

    /// Runs the two-level flow for `problem` at `target_depth`.
    ///
    /// # Errors
    ///
    /// * [`QaoaError::InvalidDepth`] if the target depth exceeds the
    ///   predictor's training depth.
    /// * Instance/optimizer errors from either level.
    pub fn run<R: Rng + ?Sized>(
        &self,
        problem: &MaxCutProblem,
        target_depth: usize,
        optimizer: &dyn Optimizer,
        config: &TwoLevelConfig,
        rng: &mut R,
    ) -> Result<TwoLevelOutcome, QaoaError> {
        // Level 1: cheap p = 1 optimization from random init.
        let level1 = QaoaInstance::new(problem.clone(), 1)?;
        let l1 =
            level1.optimize_multistart(optimizer, config.level1_starts, rng, &config.options)?;
        self.run_with_level1(problem, target_depth, optimizer, config, &l1)
    }

    /// Runs the flow's second level from an **already-computed** depth-1
    /// optimum — the entry point the parallel engine uses when its
    /// isomorphism cache already holds the level-1 solution for this
    /// graph's canonical class, so the `p = 1` optimization is skipped
    /// entirely.
    ///
    /// `level1.function_calls` is carried into the outcome's
    /// `level1_calls`; pass an outcome with zeroed calls to account a
    /// cache hit as free.
    ///
    /// # Errors
    ///
    /// * [`QaoaError::InvalidDepth`] if the target depth exceeds the
    ///   predictor's training depth.
    /// * Instance/optimizer errors from level 2.
    pub fn run_with_level1(
        &self,
        problem: &MaxCutProblem,
        target_depth: usize,
        optimizer: &dyn Optimizer,
        config: &TwoLevelConfig,
        level1: &crate::InstanceOutcome,
    ) -> Result<TwoLevelOutcome, QaoaError> {
        // Predict tuned initial parameters for the target depth. The level-1
        // optimum is folded into the canonical symmetry domain first, so it
        // matches the corpus the predictor was trained on.
        let l1_canon = crate::canonical::canonicalize_packed(&level1.params);
        let init = self
            .predictor
            .predict(l1_canon[0], l1_canon[1], target_depth)?;

        // Level 2: target-depth optimization from the ML initialization.
        let level2 = QaoaInstance::new(problem.clone(), target_depth)?;
        let l2 = level2.optimize(optimizer, &init, &config.options)?;

        Ok(TwoLevelOutcome {
            params: l2.params,
            expectation: l2.expectation,
            approximation_ratio: l2.approximation_ratio,
            level1_calls: level1.function_calls,
            intermediate_calls: 0,
            level2_calls: l2.function_calls,
            gradient_calls: level1.gradient_calls + l2.gradient_calls,
            predicted_init: init,
        })
    }

    /// Runs the two-level flow with every objective evaluation performed
    /// under `scenario` — level 1 and level 2 both pay the scenario's cost
    /// (sampled or decohered evaluations), which is the point of the
    /// noisy Table-I question.
    ///
    /// `base_seed` feeds the stochastic scenarios, domain-separated per
    /// level; [`Scenario::Exact`] reproduces [`TwoLevelFlow::run`]
    /// bit-for-bit.
    ///
    /// # Errors
    ///
    /// * [`QaoaError::InvalidDepth`] if the target depth exceeds the
    ///   predictor's training depth.
    /// * Scenario construction, evaluation, or optimizer errors from
    ///   either level.
    #[allow(clippy::too_many_arguments)]
    pub fn run_scenario<R: Rng + ?Sized>(
        &self,
        problem: &MaxCutProblem,
        target_depth: usize,
        optimizer: &dyn Optimizer,
        config: &TwoLevelConfig,
        rng: &mut R,
        scenario: &Scenario,
        base_seed: u64,
    ) -> Result<TwoLevelOutcome, QaoaError> {
        // Level 1: cheap p = 1 optimization from random init, under the
        // scenario.
        let level1 = ScenarioInstance::new(
            problem.clone(),
            1,
            scenario,
            mix64(base_seed ^ LEVEL1_DOMAIN),
        )?;
        let l1 =
            level1.optimize_multistart(optimizer, config.level1_starts, rng, &config.options)?;

        // Predict tuned initial parameters for the target depth.
        let l1_canon = crate::canonical::canonicalize_packed(&l1.params);
        let init = self
            .predictor
            .predict(l1_canon[0], l1_canon[1], target_depth)?;

        // Level 2: target-depth optimization from the ML initialization,
        // under the scenario.
        let level2 = ScenarioInstance::new(
            problem.clone(),
            target_depth,
            scenario,
            mix64(base_seed ^ LEVEL2_DOMAIN),
        )?;
        let l2 = level2.optimize(optimizer, &init, &config.options)?;

        Ok(TwoLevelOutcome {
            params: l2.params,
            expectation: l2.expectation,
            approximation_ratio: l2.approximation_ratio,
            level1_calls: l1.function_calls,
            intermediate_calls: 0,
            level2_calls: l2.function_calls,
            gradient_calls: l1.gradient_calls + l2.gradient_calls,
            predicted_init: init,
        })
    }

    /// Runs the hierarchical variant (§I(d)): level 1 at `p = 1`, an
    /// intermediate optimization at the predictor's intermediate depth
    /// (itself ML-initialized through a two-level companion predictor), then
    /// the target depth seeded by the hierarchical predictor.
    ///
    /// `two_level` supplies the intermediate initialization; `self` must be
    /// a hierarchical predictor.
    ///
    /// # Errors
    ///
    /// * [`QaoaError::Ml`] if `self` is not hierarchical.
    /// * Depth/instance/optimizer errors from any level.
    pub fn run_hierarchical<R: Rng + ?Sized>(
        &self,
        two_level: &ParameterPredictor,
        problem: &MaxCutProblem,
        target_depth: usize,
        optimizer: &dyn Optimizer,
        config: &TwoLevelConfig,
        rng: &mut R,
    ) -> Result<TwoLevelOutcome, QaoaError> {
        let Some(pm) = self.predictor.intermediate_depth() else {
            return Err(QaoaError::Ml(ml::MlError::ShapeMismatch {
                expected: 6,
                actual: 3,
                what: "features (run_hierarchical needs a hierarchical predictor)",
            }));
        };

        // Level 1.
        let level1 = QaoaInstance::new(problem.clone(), 1)?;
        let l1 =
            level1.optimize_multistart(optimizer, config.level1_starts, rng, &config.options)?;

        // Intermediate level at pm, ML-initialized via the two-level model.
        let l1_canon = crate::canonical::canonicalize_packed(&l1.params);
        let mid_init = two_level.predict(l1_canon[0], l1_canon[1], pm)?;
        let mid_instance = QaoaInstance::new(problem.clone(), pm)?;
        let mid = mid_instance.optimize(optimizer, &mid_init, &config.options)?;
        let mid_canon = crate::canonical::canonicalize_packed(&mid.params);

        // Target level with hierarchical features.
        let init = self.predictor.predict_hierarchical(
            l1_canon[0],
            l1_canon[1],
            mid_canon[0],
            mid_canon[pm],
            target_depth,
        )?;
        let level2 = QaoaInstance::new(problem.clone(), target_depth)?;
        let l2 = level2.optimize(optimizer, &init, &config.options)?;

        Ok(TwoLevelOutcome {
            params: l2.params,
            expectation: l2.expectation,
            approximation_ratio: l2.approximation_ratio,
            level1_calls: l1.function_calls,
            intermediate_calls: mid.function_calls,
            level2_calls: l2.function_calls,
            gradient_calls: l1.gradient_calls + mid.gradient_calls + l2.gradient_calls,
            predicted_init: init,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{DataGenConfig, ParameterDataset};
    use graphs::generators;
    use ml::ModelKind;
    use optimize::Lbfgsb;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn corpus() -> ParameterDataset {
        ParameterDataset::generate(&DataGenConfig {
            n_graphs: 6,
            n_nodes: 5,
            edge_probability: 0.6,
            max_depth: 3,
            restarts: 3,
            seed: 5,
            options: Default::default(),
            trend_preference_margin: 1e-3,
        })
        .unwrap()
    }

    #[test]
    fn two_level_produces_valid_outcome() {
        let ds = corpus();
        let predictor = ParameterPredictor::train(ModelKind::Linear, &ds).unwrap();
        let flow = TwoLevelFlow::new(&predictor);
        let problem = MaxCutProblem::new(&generators::cycle(5)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let out = flow
            .run(
                &problem,
                2,
                &Lbfgsb::default(),
                &TwoLevelConfig::default(),
                &mut rng,
            )
            .unwrap();
        assert_eq!(out.params.len(), 4);
        assert_eq!(out.predicted_init.len(), 4);
        assert!(out.level1_calls > 0);
        assert!(out.level2_calls > 0);
        assert_eq!(out.intermediate_calls, 0);
        assert_eq!(out.total_calls(), out.level1_calls + out.level2_calls);
        assert!(out.approximation_ratio > 0.6);
        assert!((0.0..=1.0 + 1e-9).contains(&out.approximation_ratio));
    }

    #[test]
    fn exact_scenario_run_matches_plain_run_bit_for_bit() {
        let ds = corpus();
        let predictor = ParameterPredictor::train(ModelKind::Linear, &ds).unwrap();
        let flow = TwoLevelFlow::new(&predictor);
        let problem = MaxCutProblem::new(&generators::cycle(5)).unwrap();
        let a = flow
            .run(
                &problem,
                2,
                &Lbfgsb::default(),
                &TwoLevelConfig::default(),
                &mut StdRng::seed_from_u64(2),
            )
            .unwrap();
        let b = flow
            .run_scenario(
                &problem,
                2,
                &Lbfgsb::default(),
                &TwoLevelConfig::default(),
                &mut StdRng::seed_from_u64(2),
                &Scenario::Exact,
                12345,
            )
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sampled_scenario_run_is_seed_deterministic() {
        let ds = corpus();
        let predictor = ParameterPredictor::train(ModelKind::Linear, &ds).unwrap();
        let flow = TwoLevelFlow::new(&predictor);
        let problem = MaxCutProblem::new(&generators::cycle(5)).unwrap();
        let config = TwoLevelConfig {
            level1_starts: 1,
            options: Options::default().with_max_iters(20),
        };
        let run = |base: u64| {
            flow.run_scenario(
                &problem,
                2,
                &Lbfgsb::default(),
                &config,
                &mut StdRng::seed_from_u64(3),
                &Scenario::Sampled { shots: 64 },
                base,
            )
            .unwrap()
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a, b);
        assert!(a.total_calls() > 0);
    }

    #[test]
    fn target_depth_beyond_training_rejected() {
        let ds = corpus();
        let predictor = ParameterPredictor::train(ModelKind::Linear, &ds).unwrap();
        let flow = TwoLevelFlow::new(&predictor);
        let problem = MaxCutProblem::new(&generators::cycle(4)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(matches!(
            flow.run(
                &problem,
                9,
                &Lbfgsb::default(),
                &TwoLevelConfig::default(),
                &mut rng
            ),
            Err(QaoaError::InvalidDepth { depth: 9 })
        ));
    }

    #[test]
    fn hierarchical_run_accumulates_intermediate_cost() {
        let ds = corpus();
        let two_level = ParameterPredictor::train(ModelKind::Linear, &ds).unwrap();
        let hier = ParameterPredictor::train_hierarchical(ModelKind::Linear, &ds, 2).unwrap();
        let flow = TwoLevelFlow::new(&hier);
        let problem = MaxCutProblem::new(&generators::cycle(5)).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let out = flow
            .run_hierarchical(
                &two_level,
                &problem,
                3,
                &Lbfgsb::default(),
                &TwoLevelConfig::default(),
                &mut rng,
            )
            .unwrap();
        assert!(out.intermediate_calls > 0);
        assert_eq!(
            out.total_calls(),
            out.level1_calls + out.intermediate_calls + out.level2_calls
        );
        // Running the plain entry point with a hierarchical predictor fails.
        assert!(flow
            .run(
                &problem,
                3,
                &Lbfgsb::default(),
                &TwoLevelConfig::default(),
                &mut rng
            )
            .is_err());
    }
}
