//! The allocation-free, gradient-capable evaluation context of the QAOA
//! hot path.
//!
//! Every "function call / QC call" of the paper is one expectation
//! evaluation, and a corpus sweep runs millions of them. The original fast
//! path paid two heap allocations per call (a fresh `plus` state plus a
//! `2^n` phase vector per stage) and `2^n` trigonometric evaluations per
//! stage. [`EvalContext`] removes all of it:
//!
//! * the state (and, for gradients, the adjoint state) live in **reusable
//!   buffers** reset in place per evaluation,
//! * the phase-separation layer is applied through a **per-level phase
//!   table** — `cis(−γ·c)` computed once per distinct cut value (at most
//!   `|E| + 1` of them) instead of once per basis state,
//! * both layers run on the split re/im structure-of-arrays kernels of
//!   [`qsim::soa::SplitState`]: autovectorized straight-line loops,
//!   cache-blocked so one memory sweep applies the phase layer plus all
//!   low-qubit mixing sub-layers, and fanned out across scoped threads for
//!   large registers (see [`EvalContext::set_threads`]).
//!
//! The same context also computes **exact analytic gradients** by the
//! adjoint method in `O(p · n · 2^n)` — roughly three forward passes,
//! independent of the parameter count — where finite differences need
//! `2p + 1` full evaluations. Because the cost Hamiltonian is diagonal, the
//! backward pass is a phase conjugation plus per-qubit RX derivatives; no
//! per-gate unitary differentiation is needed.
//!
//! [`with_thread_context`] keeps one context per register width per thread,
//! so batch workers (the `engine` crate) reuse buffers across jobs. Reuse is
//! exact: a reset context is byte-for-byte identical to a fresh one, and
//! every kernel and reduction is deterministic in the thread budget (fixed
//! tile partials combined in index order), so results are bit-identical at
//! any worker count, any within-state budget, and with any job schedule.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

use qsim::soa::{self, SplitState};
use qsim::DiagonalObservable;

/// Reusable evaluation state: the work state, the adjoint state (gradients
/// only) and the per-stage phase table, all in split re/im form.
///
/// Obtain one with [`EvalContext::new`] for exclusive use, or borrow the
/// calling thread's cached context via [`with_thread_context`]. Pass it to
/// [`QaoaAnsatz::expectation_in`](crate::QaoaAnsatz::expectation_in) /
/// [`QaoaAnsatz::expectation_and_grad_in`](crate::QaoaAnsatz::expectation_and_grad_in).
///
/// # Example
///
/// ```
/// use graphs::generators;
/// use qaoa::{EvalContext, MaxCutProblem, QaoaAnsatz};
/// # fn main() -> Result<(), qaoa::QaoaError> {
/// let problem = MaxCutProblem::new(&generators::cycle(4))?;
/// let ansatz = QaoaAnsatz::new(problem, 1)?;
/// let mut ctx = EvalContext::new(4);
/// // Repeated evaluations reuse the same buffers...
/// let a = ansatz.expectation_in(&mut ctx, &[0.4, 0.3])?;
/// let b = ansatz.expectation_in(&mut ctx, &[0.4, 0.3])?;
/// // ...and are bit-identical to the allocating wrapper.
/// assert_eq!(a.to_bits(), b.to_bits());
/// assert_eq!(a.to_bits(), ansatz.expectation(&[0.4, 0.3])?.to_bits());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EvalContext {
    state: SplitState,
    /// Costate buffer for the adjoint backward pass. Kept at width 0 (one
    /// amplitude) until the first gradient call so expectation-only users —
    /// gradient-free optimizers, plain `expectation` — never pay for a
    /// second `2^n` buffer.
    adjoint: SplitState,
    /// Per-level phase factors, split like the state.
    phase_re: Vec<f64>,
    phase_im: Vec<f64>,
    /// Within-state fan-out budget for every kernel call. Never affects
    /// results (kernels are deterministic in the budget), only wall-clock.
    threads: usize,
}

impl EvalContext {
    /// A context sized for `n_qubits`-wide registers. Widths adapt
    /// automatically on use, so the initial width is just a pre-allocation
    /// hint. The within-state thread budget starts at 1 (serial kernels).
    #[must_use]
    pub fn new(n_qubits: usize) -> Self {
        Self {
            state: SplitState::plus_state(n_qubits),
            adjoint: SplitState::plus_state(0),
            phase_re: Vec::new(),
            phase_im: Vec::new(),
            threads: 1,
        }
    }

    /// Current register width.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.state.n_qubits()
    }

    /// The work state. After a plain evaluation
    /// ([`QaoaAnsatz::expectation_in`](crate::QaoaAnsatz::expectation_in))
    /// this is `|ψ(γ, β)⟩`; after a gradient call the backward pass has
    /// **unwound** it in place (back to `|+…+⟩` up to rounding), so re-run
    /// a plain evaluation before reading the state.
    #[must_use]
    pub fn state(&self) -> &SplitState {
        &self.state
    }

    /// Sets the within-state fan-out budget: how many scoped threads one
    /// kernel call may use on registers of at least
    /// [`qsim::soa::PAR_MIN_DIM`] amplitudes. Guaranteed not to change any
    /// result — only evaluation latency. Clamped to at least 1.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The current within-state fan-out budget.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Resizes the work state when the problem width changes (reallocation
    /// only happens on an actual width switch). The adjoint buffer is
    /// sized separately, on gradient use.
    fn ensure_width(&mut self, n_qubits: usize) {
        if self.state.n_qubits() != n_qubits {
            self.state = SplitState::plus_state(n_qubits);
        }
    }

    /// Fills the phase table with `cis(scale · level)` per distinct level,
    /// split into re/im planes. The entries are bit-identical to
    /// `Complex64::cis(scale · level)`.
    fn load_phase_table(&mut self, levels: &[f64], scale: f64) {
        self.phase_re.clear();
        self.phase_im.clear();
        for &v in levels {
            let angle = scale * v;
            self.phase_re.push(angle.cos());
            self.phase_im.push(angle.sin());
        }
    }

    /// Forward pass: `|ψ(γ, β)⟩` into the work state, allocation-free.
    /// Each stage is one fused phase+mixing sweep plus the high-qubit
    /// butterflies ([`SplitState::apply_phase_rx`]).
    pub(crate) fn run_forward(&mut self, cost: &DiagonalObservable, gammas: &[f64], betas: &[f64]) {
        debug_assert_eq!(cost.level_of().len(), 1usize << cost.n_qubits());
        self.ensure_width(cost.n_qubits());
        self.state.reset_to_plus(self.threads);
        for (&gamma, &beta) in gammas.iter().zip(betas) {
            self.load_phase_table(cost.levels(), -gamma);
            self.state.apply_phase_rx(
                cost.level_of(),
                &self.phase_re,
                &self.phase_im,
                2.0 * beta,
                self.threads,
            );
        }
    }

    /// Forward pass plus expectation `⟨ψ|C|ψ⟩`.
    pub(crate) fn expectation(
        &mut self,
        cost: &DiagonalObservable,
        gammas: &[f64],
        betas: &[f64],
    ) -> f64 {
        self.run_forward(cost, gammas, betas);
        self.state.expectation_diag(cost.diagonal(), self.threads)
    }

    /// Expectation **and** its exact gradient by the adjoint method.
    ///
    /// Writes `∂⟨C⟩/∂γ_k` into `grad[k]` and `∂⟨C⟩/∂β_k` into
    /// `grad[p + k]` (the `[γ₁…γ_p, β₁…β_p]` layout) and returns `⟨C⟩`.
    ///
    /// Derivation: with `|ψ_k⟩` the state after stage `k` and
    /// `⟨λ| = ⟨ψ_p| C · U_p ⋯ U_{k+1}` the back-propagated costate,
    ///
    /// * `∂⟨C⟩/∂β_k = 2 Σ_q Im ⟨λ|X_q|ψ_k⟩` (from `∂/∂β e^{−iβX} = −iX e^{−iβX}`),
    /// * `∂⟨C⟩/∂γ_k = 2 Σ_z c_z · Im(λ̄_z ψ_z)` evaluated after undoing the
    ///   mixing layer (from `∂/∂γ e^{−iγC} = −iC e^{−iγC}`, diagonal).
    ///
    /// The backward pass undoes each stage on both states in place —
    /// `RX(−2β)` then the conjugate phase table — so the whole computation
    /// costs `O(p·n·2^n)` and allocates nothing.
    pub(crate) fn expectation_and_grad(
        &mut self,
        cost: &DiagonalObservable,
        gammas: &[f64],
        betas: &[f64],
        grad: &mut [f64],
    ) -> f64 {
        let p = gammas.len();
        debug_assert_eq!(grad.len(), 2 * p);
        self.run_forward(cost, gammas, betas);
        let energy = self.state.expectation_diag(cost.diagonal(), self.threads);

        // First gradient use (or a width switch): size the lazily-kept
        // adjoint buffer.
        if self.adjoint.n_qubits() != self.state.n_qubits() {
            self.adjoint = SplitState::plus_state(self.state.n_qubits());
        }
        // Costate seed: |λ⟩ = C|ψ⟩ (elementwise, C is diagonal).
        self.adjoint
            .assign_scaled(&self.state, cost.diagonal(), self.threads);

        for k in (0..p).rev() {
            // β_k gradient at the post-stage states.
            grad[p + k] = 2.0 * soa::sum_im_cross_x(&self.adjoint, &self.state, self.threads);
            // Undo the mixing layer on both states.
            self.state.apply_rx_layer(-2.0 * betas[k], self.threads);
            self.adjoint.apply_rx_layer(-2.0 * betas[k], self.threads);
            // γ_k gradient now that ψ is the post-phase state.
            grad[k] = 2.0
                * soa::sum_diag_im_cross(cost.diagonal(), &self.adjoint, &self.state, self.threads);
            // Undo the phase layer on both states (conjugate table).
            self.load_phase_table(cost.levels(), gammas[k]);
            self.state.apply_phase_levels(
                cost.level_of(),
                &self.phase_re,
                &self.phase_im,
                self.threads,
            );
            self.adjoint.apply_phase_levels(
                cost.level_of(),
                &self.phase_re,
                &self.phase_im,
                self.threads,
            );
        }
        energy
    }
}

thread_local! {
    /// One cached context per register width per thread. Worker threads of
    /// the batch engine keep their contexts across jobs, which is the
    /// "per-worker context reuse" of the evaluation pipeline.
    static CONTEXTS: RefCell<BTreeMap<usize, EvalContext>> =
        const { RefCell::new(BTreeMap::new()) };

    /// The calling thread's within-state fan-out budget, applied to every
    /// context handed out by [`with_thread_context`]. Set per job by the
    /// batch engine (`engine::Pool`'s within-job fan-out); defaults to 1
    /// (serial kernels).
    static WITHIN_STATE_BUDGET: Cell<usize> = const { Cell::new(1) };
}

/// Runs `f` with the calling thread's within-state fan-out budget set to
/// `threads` (clamped to at least 1), restoring the previous budget after —
/// also on panic, so pooled worker threads never leak a stale budget. Every
/// [`with_thread_context`] call inside `f` hands out a context with this
/// budget applied.
///
/// The budget is a latency lever only: kernels and reductions are
/// deterministic in it, so results are bit-identical at any setting.
pub fn with_within_state_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            WITHIN_STATE_BUDGET.with(|cell| cell.set(self.0));
        }
    }
    let prev = WITHIN_STATE_BUDGET.with(|cell| cell.replace(threads.max(1)));
    let _restore = Restore(prev);
    f()
}

/// The calling thread's current within-state fan-out budget.
#[must_use]
pub fn within_state_threads() -> usize {
    WITHIN_STATE_BUDGET.with(Cell::get)
}

/// Runs `f` with the calling thread's cached [`EvalContext`] for
/// `n_qubits`, creating it on first use. This is how the optimization loop
/// makes every objective evaluation allocation-free without threading a
/// context through every call signature. The context's within-state budget
/// is refreshed from [`within_state_threads`] on every call.
///
/// Reentrancy (calling `with_thread_context` from within `f`) panics on the
/// `RefCell`; evaluation code never needs to nest contexts of the same
/// thread.
pub fn with_thread_context<T>(n_qubits: usize, f: impl FnOnce(&mut EvalContext) -> T) -> T {
    CONTEXTS.with(|cell| {
        let mut map = cell.borrow_mut();
        let ctx = map
            .entry(n_qubits)
            .or_insert_with(|| EvalContext::new(n_qubits));
        ctx.set_threads(within_state_threads());
        f(ctx)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MaxCutProblem, QaoaAnsatz};
    use graphs::{generators, Graph};

    #[test]
    fn context_adapts_width() {
        let mut ctx = EvalContext::new(3);
        assert_eq!(ctx.n_qubits(), 3);
        let problem = MaxCutProblem::new(&generators::cycle(5)).unwrap();
        let ansatz = QaoaAnsatz::new(problem, 1).unwrap();
        let e = ansatz.expectation_in(&mut ctx, &[0.2, 0.1]).unwrap();
        assert_eq!(ctx.n_qubits(), 5);
        assert!(e.is_finite());
    }

    #[test]
    fn thread_context_is_reused() {
        let problem = MaxCutProblem::new(&generators::cycle(4)).unwrap();
        let ansatz = QaoaAnsatz::new(problem, 2).unwrap();
        let params = [0.3, 0.8, 0.2, 0.5];
        let a = with_thread_context(4, |ctx| ansatz.expectation_in(ctx, &params)).unwrap();
        let b = with_thread_context(4, |ctx| ansatz.expectation_in(ctx, &params)).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn within_state_budget_scopes_and_restores() {
        assert_eq!(within_state_threads(), 1);
        let inner = with_within_state_threads(4, || {
            let nested = with_within_state_threads(2, within_state_threads);
            assert_eq!(nested, 2);
            with_thread_context(3, |ctx| ctx.threads())
        });
        assert_eq!(inner, 4);
        assert_eq!(within_state_threads(), 1);
        // Zero clamps to serial.
        assert_eq!(with_within_state_threads(0, within_state_threads), 1);
    }

    #[test]
    fn thread_budget_never_changes_results() {
        let problem = MaxCutProblem::new(&generators::cycle(6)).unwrap();
        let ansatz = QaoaAnsatz::new(problem, 2).unwrap();
        let params = [0.9, 0.2, 0.4, 0.7];
        let mut grad1 = [0.0; 4];
        let mut grad4 = [0.0; 4];
        let mut ctx = EvalContext::new(6);
        let e1 = ansatz
            .expectation_and_grad_in(&mut ctx, &params, &mut grad1)
            .unwrap();
        ctx.set_threads(4);
        let e4 = ansatz
            .expectation_and_grad_in(&mut ctx, &params, &mut grad4)
            .unwrap();
        assert_eq!(e1.to_bits(), e4.to_bits());
        for (a, b) in grad1.iter().zip(&grad4) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn single_edge_gradient_matches_closed_form() {
        // One edge at p = 1: ⟨C⟩ = ½(1 + sin4β·sinγ), so
        // ∂γ = ½ sin4β cosγ and ∂β = 2 cos4β sinγ.
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let ansatz = QaoaAnsatz::new(MaxCutProblem::new(&g).unwrap(), 1).unwrap();
        let mut ctx = EvalContext::new(2);
        let mut grad = [0.0; 2];
        for (gamma, beta) in [(0.7, 0.3), (2.1, 1.0), (4.4, 2.9), (0.0, 0.0)] {
            let e = ansatz
                .expectation_and_grad_in(&mut ctx, &[gamma, beta], &mut grad)
                .unwrap();
            let expect_e = 0.5 * (1.0 + (4.0 * beta).sin() * gamma.sin());
            let expect_dg = 0.5 * (4.0 * beta).sin() * gamma.cos();
            let expect_db = 2.0 * (4.0 * beta).cos() * gamma.sin();
            assert!((e - expect_e).abs() < 1e-12, "γ={gamma}, β={beta}");
            assert!(
                (grad[0] - expect_dg).abs() < 1e-10,
                "∂γ at γ={gamma}, β={beta}: {} vs {expect_dg}",
                grad[0]
            );
            assert!(
                (grad[1] - expect_db).abs() < 1e-10,
                "∂β at γ={gamma}, β={beta}: {} vs {expect_db}",
                grad[1]
            );
        }
    }

    #[test]
    fn gradient_call_leaves_context_reusable() {
        // After a backward pass the context must still produce bit-identical
        // plain evaluations (the backward pass unwinds in place).
        let problem = MaxCutProblem::new(&generators::cycle(5)).unwrap();
        let ansatz = QaoaAnsatz::new(problem, 2).unwrap();
        let params = [1.2, 0.4, 0.6, 0.9];
        let mut ctx = EvalContext::new(5);
        let fresh = ansatz
            .expectation_in(&mut EvalContext::new(5), &params)
            .unwrap();
        let mut grad = [0.0; 4];
        let _ = ansatz
            .expectation_and_grad_in(&mut ctx, &params, &mut grad)
            .unwrap();
        let after = ansatz.expectation_in(&mut ctx, &params).unwrap();
        assert_eq!(fresh.to_bits(), after.to_bits());
    }
}
