//! The allocation-free, gradient-capable evaluation context of the QAOA
//! hot path.
//!
//! Every "function call / QC call" of the paper is one expectation
//! evaluation, and a corpus sweep runs millions of them. The original fast
//! path paid two heap allocations per call (a fresh `plus` state plus a
//! `2^n` phase vector per stage) and `2^n` trigonometric evaluations per
//! stage. [`EvalContext`] removes all of it:
//!
//! * the state (and, for gradients, the adjoint state) live in **reusable
//!   buffers** reset in place per evaluation,
//! * the phase-separation layer is applied through a **per-level phase
//!   table** — `cis(−γ·c)` computed once per distinct cut value (at most
//!   `|E| + 1` of them) instead of once per basis state
//!   ([`StateVector::apply_phase_levels`]),
//! * the mixing layer uses the fused RX kernel
//!   ([`StateVector::apply_rx_layer`]).
//!
//! The same context also computes **exact analytic gradients** by the
//! adjoint method in `O(p · n · 2^n)` — roughly three forward passes,
//! independent of the parameter count — where finite differences need
//! `2p + 1` full evaluations. Because the cost Hamiltonian is diagonal, the
//! backward pass is a phase conjugation plus per-qubit RX derivatives; no
//! per-gate unitary differentiation is needed.
//!
//! [`with_thread_context`] keeps one context per register width per thread,
//! so batch workers (the `engine` crate) reuse buffers across jobs. Reuse is
//! exact: a reset context is byte-for-byte identical to a fresh one, so
//! results are bit-identical at any worker count and with any job schedule.

use std::cell::RefCell;
use std::collections::BTreeMap;

use qsim::{Complex64, DiagonalObservable, StateVector};

/// Reusable evaluation state: the work state, the adjoint state (gradients
/// only) and the per-stage phase table.
///
/// Obtain one with [`EvalContext::new`] for exclusive use, or borrow the
/// calling thread's cached context via [`with_thread_context`]. Pass it to
/// [`QaoaAnsatz::expectation_in`](crate::QaoaAnsatz::expectation_in) /
/// [`QaoaAnsatz::expectation_and_grad_in`](crate::QaoaAnsatz::expectation_and_grad_in).
///
/// # Example
///
/// ```
/// use graphs::generators;
/// use qaoa::{EvalContext, MaxCutProblem, QaoaAnsatz};
/// # fn main() -> Result<(), qaoa::QaoaError> {
/// let problem = MaxCutProblem::new(&generators::cycle(4))?;
/// let ansatz = QaoaAnsatz::new(problem, 1)?;
/// let mut ctx = EvalContext::new(4);
/// // Repeated evaluations reuse the same buffers...
/// let a = ansatz.expectation_in(&mut ctx, &[0.4, 0.3])?;
/// let b = ansatz.expectation_in(&mut ctx, &[0.4, 0.3])?;
/// // ...and are bit-identical to the allocating wrapper.
/// assert_eq!(a.to_bits(), b.to_bits());
/// assert_eq!(a.to_bits(), ansatz.expectation(&[0.4, 0.3])?.to_bits());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EvalContext {
    state: StateVector,
    /// Costate buffer for the adjoint backward pass. Kept at width 0 (one
    /// amplitude) until the first gradient call so expectation-only users —
    /// gradient-free optimizers, plain `expectation` — never pay for a
    /// second `2^n` buffer.
    adjoint: StateVector,
    phase_table: Vec<Complex64>,
}

impl EvalContext {
    /// A context sized for `n_qubits`-wide registers. Widths adapt
    /// automatically on use, so the initial width is just a pre-allocation
    /// hint.
    #[must_use]
    pub fn new(n_qubits: usize) -> Self {
        Self {
            state: StateVector::plus_state(n_qubits),
            adjoint: StateVector::plus_state(0),
            phase_table: Vec::new(),
        }
    }

    /// Current register width.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.state.n_qubits()
    }

    /// The work state. After a plain evaluation
    /// ([`QaoaAnsatz::expectation_in`](crate::QaoaAnsatz::expectation_in))
    /// this is `|ψ(γ, β)⟩`; after a gradient call the backward pass has
    /// **unwound** it in place (back to `|+…+⟩` up to rounding), so re-run
    /// a plain evaluation before reading the state.
    #[must_use]
    pub fn state(&self) -> &StateVector {
        &self.state
    }

    /// Resizes the work state when the problem width changes (reallocation
    /// only happens on an actual width switch). The adjoint buffer is
    /// sized separately, on gradient use.
    fn ensure_width(&mut self, n_qubits: usize) {
        if self.state.n_qubits() != n_qubits {
            self.state = StateVector::plus_state(n_qubits);
        }
    }

    /// Fills the phase table with `cis(scale · level)` per distinct level.
    fn load_phase_table(&mut self, levels: &[f64], scale: f64) {
        self.phase_table.clear();
        self.phase_table
            .extend(levels.iter().map(|&v| Complex64::cis(scale * v)));
    }

    /// Forward pass: `|ψ(γ, β)⟩` into the work state, allocation-free.
    pub(crate) fn run_forward(&mut self, cost: &DiagonalObservable, gammas: &[f64], betas: &[f64]) {
        self.ensure_width(cost.n_qubits());
        self.state.reset_to_plus();
        for (&gamma, &beta) in gammas.iter().zip(betas) {
            self.load_phase_table(cost.levels(), -gamma);
            self.state
                .apply_phase_levels(cost.level_of(), &self.phase_table)
                .expect("context width matches cost");
            self.state.apply_rx_layer(2.0 * beta);
        }
    }

    /// Forward pass plus expectation `⟨ψ|C|ψ⟩`.
    pub(crate) fn expectation(
        &mut self,
        cost: &DiagonalObservable,
        gammas: &[f64],
        betas: &[f64],
    ) -> f64 {
        self.run_forward(cost, gammas, betas);
        cost.expectation(&self.state)
            .expect("context width matches cost")
    }

    /// Expectation **and** its exact gradient by the adjoint method.
    ///
    /// Writes `∂⟨C⟩/∂γ_k` into `grad[k]` and `∂⟨C⟩/∂β_k` into
    /// `grad[p + k]` (the `[γ₁…γ_p, β₁…β_p]` layout) and returns `⟨C⟩`.
    ///
    /// Derivation: with `|ψ_k⟩` the state after stage `k` and
    /// `⟨λ| = ⟨ψ_p| C · U_p ⋯ U_{k+1}` the back-propagated costate,
    ///
    /// * `∂⟨C⟩/∂β_k = 2 Σ_q Im ⟨λ|X_q|ψ_k⟩` (from `∂/∂β e^{−iβX} = −iX e^{−iβX}`),
    /// * `∂⟨C⟩/∂γ_k = 2 Σ_z c_z · Im(λ̄_z ψ_z)` evaluated after undoing the
    ///   mixing layer (from `∂/∂γ e^{−iγC} = −iC e^{−iγC}`, diagonal).
    ///
    /// The backward pass undoes each stage on both states in place —
    /// `RX(−2β)` then the conjugate phase table — so the whole computation
    /// costs `O(p·n·2^n)` and allocates nothing.
    pub(crate) fn expectation_and_grad(
        &mut self,
        cost: &DiagonalObservable,
        gammas: &[f64],
        betas: &[f64],
        grad: &mut [f64],
    ) -> f64 {
        let p = gammas.len();
        debug_assert_eq!(grad.len(), 2 * p);
        self.run_forward(cost, gammas, betas);
        let energy = cost
            .expectation(&self.state)
            .expect("context width matches cost");

        // First gradient use (or a width switch): size the lazily-kept
        // adjoint buffer.
        if self.adjoint.n_qubits() != self.state.n_qubits() {
            self.adjoint = StateVector::plus_state(self.state.n_qubits());
        }
        // Costate seed: |λ⟩ = C|ψ⟩ (elementwise, C is diagonal).
        {
            let diag = cost.diagonal();
            let psi = self.state.amplitudes();
            let lambda = self.adjoint.amplitudes_mut();
            for ((l, &a), &c) in lambda.iter_mut().zip(psi).zip(diag) {
                *l = a.scale(c);
            }
        }

        for k in (0..p).rev() {
            // β_k gradient at the post-stage states.
            grad[p + k] = 2.0 * sum_im_lambda_x_psi(&self.adjoint, &self.state);
            // Undo the mixing layer on both states.
            self.state.apply_rx_layer(-2.0 * betas[k]);
            self.adjoint.apply_rx_layer(-2.0 * betas[k]);
            // γ_k gradient now that ψ is the post-phase state.
            grad[k] = 2.0 * sum_c_im_lambda_psi(cost, &self.adjoint, &self.state);
            // Undo the phase layer on both states (conjugate table).
            self.load_phase_table(cost.levels(), gammas[k]);
            self.state
                .apply_phase_levels(cost.level_of(), &self.phase_table)
                .expect("context width matches cost");
            self.adjoint
                .apply_phase_levels(cost.level_of(), &self.phase_table)
                .expect("context width matches cost");
        }
        energy
    }
}

/// `Σ_q Im ⟨λ|X_q|ψ⟩`: every qubit's bit-flip pairing, visited pairwise.
fn sum_im_lambda_x_psi(lambda: &StateVector, psi: &StateVector) -> f64 {
    let l = lambda.amplitudes();
    let s = psi.amplitudes();
    let dim = s.len();
    let mut total = 0.0;
    for qubit in 0..psi.n_qubits() {
        let stride = 1usize << qubit;
        let mut base = 0;
        while base < dim {
            for offset in base..base + stride {
                let (a, b) = (l[offset], s[offset + stride]);
                total += a.re * b.im - a.im * b.re;
                let (a, b) = (l[offset + stride], s[offset]);
                total += a.re * b.im - a.im * b.re;
            }
            base += stride << 1;
        }
    }
    total
}

/// `Σ_z c_z · Im(λ̄_z ψ_z)`.
fn sum_c_im_lambda_psi(cost: &DiagonalObservable, lambda: &StateVector, psi: &StateVector) -> f64 {
    cost.diagonal()
        .iter()
        .zip(lambda.amplitudes())
        .zip(psi.amplitudes())
        .map(|((&c, l), s)| c * (l.re * s.im - l.im * s.re))
        .sum()
}

thread_local! {
    /// One cached context per register width per thread. Worker threads of
    /// the batch engine keep their contexts across jobs, which is the
    /// "per-worker context reuse" of the evaluation pipeline.
    static CONTEXTS: RefCell<BTreeMap<usize, EvalContext>> =
        const { RefCell::new(BTreeMap::new()) };
}

/// Runs `f` with the calling thread's cached [`EvalContext`] for
/// `n_qubits`, creating it on first use. This is how the optimization loop
/// makes every objective evaluation allocation-free without threading a
/// context through every call signature.
///
/// Reentrancy (calling `with_thread_context` from within `f`) panics on the
/// `RefCell`; evaluation code never needs to nest contexts of the same
/// thread.
pub fn with_thread_context<T>(n_qubits: usize, f: impl FnOnce(&mut EvalContext) -> T) -> T {
    CONTEXTS.with(|cell| {
        let mut map = cell.borrow_mut();
        let ctx = map
            .entry(n_qubits)
            .or_insert_with(|| EvalContext::new(n_qubits));
        f(ctx)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MaxCutProblem, QaoaAnsatz};
    use graphs::{generators, Graph};

    #[test]
    fn context_adapts_width() {
        let mut ctx = EvalContext::new(3);
        assert_eq!(ctx.n_qubits(), 3);
        let problem = MaxCutProblem::new(&generators::cycle(5)).unwrap();
        let ansatz = QaoaAnsatz::new(problem, 1).unwrap();
        let e = ansatz.expectation_in(&mut ctx, &[0.2, 0.1]).unwrap();
        assert_eq!(ctx.n_qubits(), 5);
        assert!(e.is_finite());
    }

    #[test]
    fn thread_context_is_reused() {
        let problem = MaxCutProblem::new(&generators::cycle(4)).unwrap();
        let ansatz = QaoaAnsatz::new(problem, 2).unwrap();
        let params = [0.3, 0.8, 0.2, 0.5];
        let a = with_thread_context(4, |ctx| ansatz.expectation_in(ctx, &params)).unwrap();
        let b = with_thread_context(4, |ctx| ansatz.expectation_in(ctx, &params)).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn single_edge_gradient_matches_closed_form() {
        // One edge at p = 1: ⟨C⟩ = ½(1 + sin4β·sinγ), so
        // ∂γ = ½ sin4β cosγ and ∂β = 2 cos4β sinγ.
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let ansatz = QaoaAnsatz::new(MaxCutProblem::new(&g).unwrap(), 1).unwrap();
        let mut ctx = EvalContext::new(2);
        let mut grad = [0.0; 2];
        for (gamma, beta) in [(0.7, 0.3), (2.1, 1.0), (4.4, 2.9), (0.0, 0.0)] {
            let e = ansatz
                .expectation_and_grad_in(&mut ctx, &[gamma, beta], &mut grad)
                .unwrap();
            let expect_e = 0.5 * (1.0 + (4.0 * beta).sin() * gamma.sin());
            let expect_dg = 0.5 * (4.0 * beta).sin() * gamma.cos();
            let expect_db = 2.0 * (4.0 * beta).cos() * gamma.sin();
            assert!((e - expect_e).abs() < 1e-12, "γ={gamma}, β={beta}");
            assert!(
                (grad[0] - expect_dg).abs() < 1e-10,
                "∂γ at γ={gamma}, β={beta}: {} vs {expect_dg}",
                grad[0]
            );
            assert!(
                (grad[1] - expect_db).abs() < 1e-10,
                "∂β at γ={gamma}, β={beta}: {} vs {expect_db}",
                grad[1]
            );
        }
    }

    #[test]
    fn gradient_call_leaves_context_reusable() {
        // After a backward pass the context must still produce bit-identical
        // plain evaluations (the backward pass unwinds in place).
        let problem = MaxCutProblem::new(&generators::cycle(5)).unwrap();
        let ansatz = QaoaAnsatz::new(problem, 2).unwrap();
        let params = [1.2, 0.4, 0.6, 0.9];
        let mut ctx = EvalContext::new(5);
        let fresh = ansatz
            .expectation_in(&mut EvalContext::new(5), &params)
            .unwrap();
        let mut grad = [0.0; 4];
        let _ = ansatz
            .expectation_and_grad_in(&mut ctx, &params, &mut grad)
            .unwrap();
        let after = ansatz.expectation_in(&mut ctx, &params).unwrap();
        assert_eq!(fresh.to_bits(), after.to_bits());
    }
}
