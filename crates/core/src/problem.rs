use graphs::{Graph, MaxCut};
use qsim::DiagonalObservable;

use crate::QaoaError;

/// Maximum graph size accepted for dense simulation (2^20 amplitudes).
pub const MAX_PROBLEM_NODES: usize = 20;

/// A MaxCut instance prepared for QAOA: the diagonal cost Hamiltonian
/// `C(z) = Σ_{(u,v)∈E} w·[z_u ≠ z_v]` plus the exact optimum used to compute
/// approximation ratios.
///
/// # Example
///
/// ```
/// use graphs::generators;
/// use qaoa::MaxCutProblem;
/// # fn main() -> Result<(), qaoa::QaoaError> {
/// let problem = MaxCutProblem::new(&generators::cycle(6))?;
/// assert_eq!(problem.optimal_cut(), 6.0);
/// assert_eq!(problem.n_qubits(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MaxCutProblem {
    graph: Graph,
    cost: DiagonalObservable,
    optimal_cut: f64,
}

impl MaxCutProblem {
    /// Prepares a graph for QAOA: builds the dense cost diagonal and solves
    /// MaxCut exactly.
    ///
    /// # Errors
    ///
    /// * [`QaoaError::EmptyGraph`] if the graph has no edges (the objective
    ///   would be identically zero).
    /// * [`QaoaError::TooLarge`] beyond [`MAX_PROBLEM_NODES`] nodes.
    pub fn new(graph: &Graph) -> Result<Self, QaoaError> {
        if graph.is_empty() {
            return Err(QaoaError::EmptyGraph);
        }
        if graph.n_nodes() > MAX_PROBLEM_NODES {
            return Err(QaoaError::TooLarge {
                n_nodes: graph.n_nodes(),
                max: MAX_PROBLEM_NODES,
            });
        }
        let cost = DiagonalObservable::from_fn(graph.n_nodes(), |z| graph.cut_value(z));
        let optimal_cut = MaxCut::solve(graph).value();
        Ok(Self {
            graph: graph.clone(),
            cost,
            optimal_cut,
        })
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of qubits (= nodes).
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.graph.n_nodes()
    }

    /// The diagonal cost observable `C`.
    #[must_use]
    pub fn cost(&self) -> &DiagonalObservable {
        &self.cost
    }

    /// The exact maximum cut `C_max`.
    #[must_use]
    pub fn optimal_cut(&self) -> f64 {
        self.optimal_cut
    }

    /// Approximation ratio `⟨C⟩ / C_max` of an expectation value.
    ///
    /// The constructor guarantees `C_max > 0` (non-empty graph with positive
    /// weights); negative-weight graphs can yield `C_max = 0`, in which case
    /// `0.0` is returned to avoid division by zero.
    #[must_use]
    pub fn approximation_ratio(&self, expectation: f64) -> f64 {
        if self.optimal_cut <= 0.0 {
            0.0
        } else {
            expectation / self.optimal_cut
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;

    #[test]
    fn cost_diagonal_matches_cut_values() {
        let g = generators::cycle(4);
        let p = MaxCutProblem::new(&g).unwrap();
        for z in 0..16 {
            assert_eq!(p.cost().diagonal()[z], g.cut_value(z));
        }
        assert_eq!(p.cost().max(), p.optimal_cut());
    }

    #[test]
    fn ar_normalization() {
        let p = MaxCutProblem::new(&generators::path(3)).unwrap();
        assert_eq!(p.optimal_cut(), 2.0);
        assert_eq!(p.approximation_ratio(1.0), 0.5);
        assert_eq!(p.approximation_ratio(2.0), 1.0);
    }

    #[test]
    fn rejects_degenerate_graphs() {
        assert!(matches!(
            MaxCutProblem::new(&Graph::new(4)),
            Err(QaoaError::EmptyGraph)
        ));
        let big = generators::cycle(MAX_PROBLEM_NODES + 2);
        assert!(matches!(
            MaxCutProblem::new(&big),
            Err(QaoaError::TooLarge { .. })
        ));
    }

    #[test]
    fn weighted_graph_cost() {
        let mut g = Graph::new(2);
        g.add_weighted_edge(0, 1, 3.5).unwrap();
        let p = MaxCutProblem::new(&g).unwrap();
        assert_eq!(p.optimal_cut(), 3.5);
        assert_eq!(p.cost().diagonal()[1], 3.5);
        assert_eq!(p.cost().diagonal()[0], 0.0);
    }
}
