use ml::{ModelKind, Regressor};

use crate::datagen::ParameterDataset;
use crate::features::{
    hierarchical_features, hierarchical_tables, two_level_features, two_level_tables, ParamKind,
    StageTable,
};
use crate::{QaoaError, BETA_MAX, GAMMA_MAX};

/// The trained parameter predictor of the two-level flow (Fig. 4).
///
/// Holds one regression model per response variable — `γᵢ` and `βᵢ` for
/// every stage `i` up to the corpus depth — each mapping the 3 two-level
/// features `(γ₁OPT(p=1), β₁OPT(p=1), pt)` to that stage's optimal value
/// (6 features in the hierarchical variant). Predictions are clamped into
/// the paper's domain `γ ∈ [0, 2π], β ∈ [0, π]` so they are always valid
/// optimizer starting points.
///
/// # Example
///
/// ```no_run
/// use ml::ModelKind;
/// use qaoa::datagen::{DataGenConfig, ParameterDataset};
/// use qaoa::ParameterPredictor;
/// # fn main() -> Result<(), qaoa::QaoaError> {
/// let corpus = ParameterDataset::generate(&DataGenConfig::quick())?;
/// let predictor = ParameterPredictor::train(ModelKind::Gpr, &corpus)?;
/// let init = predictor.predict(1.2, 0.6, 3)?; // [γ₁..γ₃, β₁..β₃]
/// assert_eq!(init.len(), 6);
/// # Ok(())
/// # }
/// ```
pub struct ParameterPredictor {
    kind: ModelKind,
    max_depth: usize,
    /// Intermediate depth for the hierarchical variant; `None` = two-level.
    intermediate_depth: Option<usize>,
    gamma_models: Vec<Box<dyn Regressor>>,
    beta_models: Vec<Box<dyn Regressor>>,
}

impl ParameterPredictor {
    /// Trains the standard two-level predictor on a corpus.
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction and model-fitting errors.
    pub fn train(kind: ModelKind, dataset: &ParameterDataset) -> Result<Self, QaoaError> {
        let tables = two_level_tables(dataset)?;
        Self::from_tables(kind, dataset.max_depth(), None, tables)
    }

    /// Trains the hierarchical predictor (§I(d)) that additionally consumes
    /// the optimal parameters of a depth-`intermediate_depth` instance.
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction and model-fitting errors; requires the
    /// corpus to contain depths beyond `intermediate_depth`.
    pub fn train_hierarchical(
        kind: ModelKind,
        dataset: &ParameterDataset,
        intermediate_depth: usize,
    ) -> Result<Self, QaoaError> {
        let tables = hierarchical_tables(dataset, intermediate_depth)?;
        Self::from_tables(kind, dataset.max_depth(), Some(intermediate_depth), tables)
    }

    fn from_tables(
        kind: ModelKind,
        max_depth: usize,
        intermediate_depth: Option<usize>,
        tables: Vec<StageTable>,
    ) -> Result<Self, QaoaError> {
        let mut gamma_models: Vec<Box<dyn Regressor>> = Vec::new();
        let mut beta_models: Vec<Box<dyn Regressor>> = Vec::new();
        let mut trained_depth = 0usize;
        for t in tables {
            let (x, y) = drop_target_outliers(&t.x, &t.y);
            let mut model = kind.build();
            model.fit(&x, &y)?;
            match t.kind {
                ParamKind::Gamma => {
                    debug_assert_eq!(gamma_models.len(), t.stage - 1);
                    gamma_models.push(model);
                }
                ParamKind::Beta => {
                    debug_assert_eq!(beta_models.len(), t.stage - 1);
                    beta_models.push(model);
                }
            }
            trained_depth = trained_depth.max(t.stage);
        }
        if gamma_models.is_empty() || gamma_models.len() != beta_models.len() {
            return Err(QaoaError::Parse {
                line: 0,
                message: "corpus produced no usable training tables".into(),
            });
        }
        Ok(Self {
            kind,
            max_depth: max_depth.min(trained_depth),
            intermediate_depth,
            gamma_models,
            beta_models,
        })
    }

    /// Reassembles a predictor from per-stage models (the model-artifact
    /// loader's entry point).
    ///
    /// `gamma_models[i]`/`beta_models[i]` must be the stage-`i+1` models, and
    /// both lists must cover every stage up to `max_depth`.
    ///
    /// # Errors
    ///
    /// Returns [`QaoaError::Parse`] when the stage lists are empty,
    /// mismatched, or shorter than `max_depth`.
    pub fn from_parts(
        kind: ModelKind,
        max_depth: usize,
        intermediate_depth: Option<usize>,
        gamma_models: Vec<Box<dyn Regressor>>,
        beta_models: Vec<Box<dyn Regressor>>,
    ) -> Result<Self, QaoaError> {
        if gamma_models.is_empty() || gamma_models.len() != beta_models.len() {
            return Err(QaoaError::Parse {
                line: 0,
                message: "predictor parts: empty or mismatched stage model lists".into(),
            });
        }
        if max_depth == 0 || max_depth > gamma_models.len() {
            return Err(QaoaError::Parse {
                line: 0,
                message: format!(
                    "predictor parts: max depth {max_depth} outside 1..={}",
                    gamma_models.len()
                ),
            });
        }
        Ok(Self {
            kind,
            max_depth,
            intermediate_depth,
            gamma_models,
            beta_models,
        })
    }

    /// The model family behind every stage regression.
    #[must_use]
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Deepest target depth this predictor can initialize.
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Intermediate depth for hierarchical predictors, `None` otherwise.
    #[must_use]
    pub fn intermediate_depth(&self) -> Option<usize> {
        self.intermediate_depth
    }

    /// Per-stage γ models (`[stage 1, …, stage max_depth]`).
    #[must_use]
    pub fn gamma_models(&self) -> &[Box<dyn Regressor>] {
        &self.gamma_models
    }

    /// Per-stage β models (`[stage 1, …, stage max_depth]`).
    #[must_use]
    pub fn beta_models(&self) -> &[Box<dyn Regressor>] {
        &self.beta_models
    }

    /// Predicts initial parameters `[γ₁…γ_pt, β₁…β_pt]` for a depth-`pt`
    /// instance from the depth-1 optimum (two-level features).
    ///
    /// # Errors
    ///
    /// * [`QaoaError::InvalidDepth`] if `pt` is 0 or beyond
    ///   [`ParameterPredictor::max_depth`].
    /// * [`QaoaError::Ml`] if this is a hierarchical predictor (use
    ///   [`ParameterPredictor::predict_hierarchical`]).
    pub fn predict(
        &self,
        gamma1_p1: f64,
        beta1_p1: f64,
        target_depth: usize,
    ) -> Result<Vec<f64>, QaoaError> {
        if self.intermediate_depth.is_some() {
            return Err(QaoaError::Ml(ml::MlError::ShapeMismatch {
                expected: 6,
                actual: 3,
                what: "features (hierarchical predictor needs predict_hierarchical)",
            }));
        }
        let features = two_level_features(gamma1_p1, beta1_p1, target_depth);
        self.predict_from_features(&features, target_depth)
    }

    /// Predicts initial parameters using the hierarchical features.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ParameterPredictor::predict`], mirrored for the
    /// two-level case.
    pub fn predict_hierarchical(
        &self,
        gamma1_p1: f64,
        beta1_p1: f64,
        gamma1_pm: f64,
        beta1_pm: f64,
        target_depth: usize,
    ) -> Result<Vec<f64>, QaoaError> {
        let Some(pm) = self.intermediate_depth else {
            return Err(QaoaError::Ml(ml::MlError::ShapeMismatch {
                expected: 3,
                actual: 6,
                what: "features (two-level predictor needs predict)",
            }));
        };
        let features =
            hierarchical_features(gamma1_p1, beta1_p1, gamma1_pm, beta1_pm, pm, target_depth);
        self.predict_from_features(&features, target_depth)
    }

    fn predict_from_features(
        &self,
        features: &[f64],
        target_depth: usize,
    ) -> Result<Vec<f64>, QaoaError> {
        if target_depth == 0 || target_depth > self.max_depth {
            return Err(QaoaError::InvalidDepth {
                depth: target_depth,
            });
        }
        let mut params = Vec::with_capacity(2 * target_depth);
        for i in 0..target_depth {
            let g = self.gamma_models[i].predict(features)?;
            params.push(g.clamp(0.0, GAMMA_MAX));
        }
        for i in 0..target_depth {
            let b = self.beta_models[i].predict(features)?;
            params.push(b.clamp(0.0, BETA_MAX));
        }
        Ok(params)
    }
}

/// Removes rows whose target is a gross outlier (more than 8 median
/// absolute deviations from the median), capped at 10% of the rows.
///
/// QAOA landscapes carry near-degenerate optima in distant basins; the
/// corpus records whichever is best, so a small fraction of targets can sit
/// far from the trend-consistent cluster. Interpolating models (GPR) are
/// destroyed by such rows; this conservative filter is standard robust-
/// regression hygiene and leaves clean tables untouched.
pub(crate) fn drop_target_outliers(x: &linalg::Matrix, y: &[f64]) -> (linalg::Matrix, Vec<f64>) {
    let n = y.len();
    if n < 8 {
        return (x.clone(), y.to_vec());
    }
    let mut sorted = y.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[n / 2];
    let mut deviations: Vec<f64> = y.iter().map(|v| (v - median).abs()).collect();
    let mut dev_sorted = deviations.clone();
    dev_sorted.sort_by(f64::total_cmp);
    let mad = dev_sorted[n / 2].max(1e-9);
    let threshold = 8.0 * mad;
    // Rank rows by deviation and drop the worst offenders, at most 10%.
    let max_drop = n / 10;
    let mut keep: Vec<bool> = deviations.iter().map(|d| *d <= threshold).collect();
    let dropped = keep.iter().filter(|k| !**k).count();
    if dropped > max_drop {
        // Keep the least-deviant among the flagged rows.
        let mut flagged: Vec<usize> = (0..n).filter(|&i| !keep[i]).collect();
        flagged.sort_by(|&a, &b| deviations[a].total_cmp(&deviations[b]));
        for &i in flagged.iter().take(dropped - max_drop) {
            keep[i] = true;
        }
    }
    deviations.clear();
    let rows: Vec<usize> = (0..n).filter(|&i| keep[i]).collect();
    if rows.len() == n {
        return (x.clone(), y.to_vec());
    }
    let xf = linalg::Matrix::from_fn(rows.len(), x.cols(), |i, j| x.get(rows[i], j));
    let yf: Vec<f64> = rows.iter().map(|&i| y[i]).collect();
    (xf, yf)
}

impl std::fmt::Debug for ParameterPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParameterPredictor")
            .field("kind", &self.kind)
            .field("max_depth", &self.max_depth)
            .field("intermediate_depth", &self.intermediate_depth)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::DataGenConfig;

    fn tiny_dataset() -> ParameterDataset {
        ParameterDataset::generate(&DataGenConfig {
            n_graphs: 5,
            n_nodes: 5,
            edge_probability: 0.6,
            max_depth: 3,
            restarts: 2,
            seed: 33,
            options: Default::default(),
            trend_preference_margin: 1e-3,
        })
        .unwrap()
    }

    #[test]
    fn train_and_predict_all_kinds() {
        let ds = tiny_dataset();
        for kind in ModelKind::ALL {
            let p = ParameterPredictor::train(kind, &ds).unwrap();
            assert_eq!(p.kind(), kind);
            assert_eq!(p.max_depth(), 3);
            assert!(p.intermediate_depth().is_none());
            for pt in 1..=3 {
                let init = p.predict(1.0, 0.5, pt).unwrap();
                assert_eq!(init.len(), 2 * pt);
                for (i, &v) in init.iter().enumerate() {
                    let hi = if i < pt { GAMMA_MAX } else { BETA_MAX };
                    assert!((0.0..=hi).contains(&v), "{kind} param {i} = {v}");
                }
            }
        }
    }

    #[test]
    fn depth_bounds_enforced() {
        let ds = tiny_dataset();
        let p = ParameterPredictor::train(ModelKind::Linear, &ds).unwrap();
        assert!(matches!(
            p.predict(1.0, 0.5, 0),
            Err(QaoaError::InvalidDepth { depth: 0 })
        ));
        assert!(matches!(
            p.predict(1.0, 0.5, 9),
            Err(QaoaError::InvalidDepth { depth: 9 })
        ));
    }

    #[test]
    fn hierarchical_predictor() {
        let ds = tiny_dataset();
        let p = ParameterPredictor::train_hierarchical(ModelKind::Linear, &ds, 2).unwrap();
        assert_eq!(p.intermediate_depth(), Some(2));
        let init = p.predict_hierarchical(1.0, 0.5, 0.9, 0.4, 3).unwrap();
        assert_eq!(init.len(), 6);
        // Wrong entry point rejected both ways.
        assert!(p.predict(1.0, 0.5, 3).is_err());
        let two_level = ParameterPredictor::train(ModelKind::Linear, &ds).unwrap();
        assert!(two_level
            .predict_hierarchical(1.0, 0.5, 0.9, 0.4, 3)
            .is_err());
    }

    #[test]
    fn stage1_prediction_tracks_depth1_feature() {
        // With a linear model, predicting pt=1 for a feature vector seen in
        // training (depth-1 rows are identities) stays close to γ₁.
        let ds = tiny_dataset();
        let p = ParameterPredictor::train(ModelKind::Linear, &ds).unwrap();
        let r = ds.record(0, 1).unwrap();
        let init = p.predict(r.gammas[0], r.betas[0], 1).unwrap();
        // Loose tolerance: the stage-1 model is trained across depths.
        assert!((init[0] - r.gammas[0]).abs() < 1.5);
    }
}

#[cfg(test)]
mod outlier_tests {
    use super::drop_target_outliers;
    use linalg::Matrix;

    #[test]
    fn clean_table_untouched() {
        let x = Matrix::from_fn(10, 2, |i, j| (i + j) as f64);
        let y: Vec<f64> = (0..10).map(|i| 0.5 + 0.01 * i as f64).collect();
        let (xf, yf) = drop_target_outliers(&x, &y);
        assert_eq!(xf.rows(), 10);
        assert_eq!(yf, y);
    }

    #[test]
    fn gross_outlier_removed() {
        let x = Matrix::from_fn(12, 1, |i, _| i as f64);
        let mut y: Vec<f64> = (0..12).map(|i| 0.6 + 0.02 * i as f64).collect();
        y[5] = 6.0; // far-basin record
        let (xf, yf) = drop_target_outliers(&x, &y);
        assert_eq!(xf.rows(), 11);
        assert!(yf.iter().all(|v| *v < 2.0));
    }

    #[test]
    fn drop_fraction_capped() {
        // A third of rows "outlying": cap keeps at least 90%.
        let x = Matrix::from_fn(12, 1, |i, _| i as f64);
        let y: Vec<f64> = (0..12)
            .map(|i| if i % 3 == 0 { 50.0 + i as f64 } else { 1.0 })
            .collect();
        let (_, yf) = drop_target_outliers(&x, &y);
        assert!(yf.len() >= 11, "dropped too many: {}", 12 - yf.len());
    }

    #[test]
    fn tiny_tables_skipped() {
        let x = Matrix::from_fn(4, 1, |i, _| i as f64);
        let y = vec![0.0, 100.0, 0.0, 0.0];
        let (_, yf) = drop_target_outliers(&x, &y);
        assert_eq!(yf.len(), 4);
    }
}
