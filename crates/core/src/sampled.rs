//! Shot-noise objective: sampled `⟨C⟩` as a first-class engine workload.
//!
//! [`ShotEstimator`](crate::noise::ShotEstimator) demonstrated finite-shot
//! estimation, but carries its own RNG *stream*: the estimate at a parameter
//! point depends on how many evaluations happened before it, which breaks
//! the engine's requirement that every job be a pure function of its seed.
//! [`SampledExpectation`] fixes the seeding scheme — evaluation `k` draws
//! from `StdRng::seed_from_u64(mix64(base_seed ^ (k+1)·GOLDEN_GAMMA))`, so
//! the whole optimization trace is a pure function of `(base_seed,
//! parameters)` and is bit-identical at any thread count — and evaluates
//! through the thread's cached [`EvalContext`](crate::EvalContext) plus a
//! reusable [`CdfSampler`], allocation-free after the first call.
//!
//! The objective is stochastic, so it is optimized with SPSA (via
//! [`optimize::Objective`] / [`optimize::Fallible`]); analytic adjoint
//! gradients do not exist for a sampled estimate.
//!
//! # Example
//!
//! ```
//! use graphs::generators;
//! use qaoa::{sampled::SampledExpectation, MaxCutProblem};
//!
//! # fn main() -> Result<(), qaoa::QaoaError> {
//! let problem = MaxCutProblem::new(&generators::cycle(4))?;
//! let obj = SampledExpectation::new(problem, 1, 4096, 2020)?;
//! let exact = obj.ansatz().expectation(&[0.7, 0.4])?;
//! let sampled = obj.estimate(&[0.7, 0.4])?;
//! assert!((sampled - exact).abs() < 0.5); // within sampling error
//! // Same evaluation index, same seed — bit-identical estimate.
//! let again = SampledExpectation::new(obj.ansatz().problem().clone(), 1, 4096, 2020)?
//!     .estimate(&[0.7, 0.4])?;
//! assert_eq!(sampled, again);
//! # Ok(())
//! # }
//! ```

use std::cell::RefCell;

use optimize::{Fallible, Optimizer, Options};
use qsim::CdfSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::instance::InstanceOutcome;
use crate::stablehash::{mix64, GOLDEN_GAMMA};
use crate::{eval, parameter_bounds, MaxCutProblem, QaoaAnsatz, QaoaError};

/// Per-evaluation scratch: the CDF table is reused across evaluations, and
/// the counter indexes the deterministic per-evaluation RNG schedule.
#[derive(Debug, Default)]
struct Scratch {
    sampler: CdfSampler,
    evals: u64,
}

/// The finite-shot QAOA objective with a deterministic seeding schedule.
///
/// Each [`SampledExpectation::estimate`] call prepares `|ψ(γ, β)⟩` in the
/// calling thread's cached evaluation context, samples `shots` basis states
/// from the Born distribution and averages the cut values — one simulated
/// hardware "QC call". Evaluation `k` uses its own RNG seeded from
/// `(base_seed, k)`, never a shared stream, so optimization traces are
/// reproducible bit-for-bit regardless of what else ran on the thread.
#[derive(Debug)]
pub struct SampledExpectation {
    ansatz: QaoaAnsatz,
    shots: u32,
    base_seed: u64,
    scratch: RefCell<Scratch>,
}

impl SampledExpectation {
    /// Builds the sampled objective at circuit depth `depth` with a
    /// per-evaluation budget of `shots` measurements.
    ///
    /// # Errors
    ///
    /// * [`QaoaError::InvalidDepth`] for `depth == 0`.
    /// * [`QaoaError::InvalidScenario`] for `shots == 0`.
    pub fn new(
        problem: MaxCutProblem,
        depth: usize,
        shots: u32,
        base_seed: u64,
    ) -> Result<Self, QaoaError> {
        if shots == 0 {
            return Err(QaoaError::InvalidScenario {
                reason: "sampled objective needs at least one shot",
            });
        }
        Ok(Self {
            ansatz: QaoaAnsatz::new(problem, depth)?,
            shots,
            base_seed,
            scratch: RefCell::new(Scratch::default()),
        })
    }

    /// The underlying (exact) ansatz.
    #[must_use]
    pub fn ansatz(&self) -> &QaoaAnsatz {
        &self.ansatz
    }

    /// Shots per evaluation.
    #[must_use]
    pub fn shots(&self) -> u32 {
        self.shots
    }

    /// Circuit depth `p`.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.ansatz.depth()
    }

    /// Evaluations performed so far (the index of the next RNG seed).
    #[must_use]
    pub fn evaluations(&self) -> u64 {
        self.scratch.borrow().evals
    }

    /// One sampled objective evaluation (one simulated QC call).
    ///
    /// # Errors
    ///
    /// * [`QaoaError::ParameterCount`] on a parameter-length mismatch.
    /// * [`QaoaError::Simulator`] if the prepared state's Born distribution
    ///   is invalid (non-finite amplitudes from non-finite parameters).
    pub fn estimate(&self, params: &[f64]) -> Result<f64, QaoaError> {
        let (gammas, betas) = self.ansatz.split_params(params)?;
        let cost = self.ansatz.problem().cost();
        let mut scratch = self.scratch.borrow_mut();
        let scratch = &mut *scratch;
        let k = scratch.evals;
        scratch.evals += 1;
        let seed = mix64(self.base_seed ^ (k.wrapping_add(1)).wrapping_mul(GOLDEN_GAMMA));
        eval::with_thread_context(cost.n_qubits(), |ctx| {
            ctx.run_forward(cost, gammas, betas);
            let state = ctx.state();
            scratch.sampler.load_amplitudes(state.re(), state.im())?;
            let mut rng = StdRng::seed_from_u64(seed);
            let diag = cost.diagonal();
            let mut sum = 0.0;
            for _ in 0..self.shots {
                sum += diag[scratch.sampler.draw(&mut rng)];
            }
            Ok(sum / f64::from(self.shots))
        })
    }

    /// Optimizes the sampled objective from `initial` — SPSA is the
    /// intended optimizer (stochastic objective, no analytic gradient).
    ///
    /// `function_calls` counts the *sampled* evaluations (the QC-call cost
    /// a practitioner pays), while `expectation` and `approximation_ratio`
    /// are judged on the **exact** expectation at the returned point, so
    /// rows remain comparable with the noiseless Table-I protocol.
    ///
    /// # Errors
    ///
    /// * [`QaoaError::ParameterCount`] on a parameter-length mismatch.
    /// * Any evaluation error encountered by an optimizer probe.
    /// * Optimizer errors.
    pub fn optimize(
        &self,
        optimizer: &dyn Optimizer,
        initial: &[f64],
        options: &Options,
    ) -> Result<InstanceOutcome, QaoaError> {
        if initial.len() != self.ansatz.n_parameters() {
            return Err(QaoaError::ParameterCount {
                expected: self.ansatz.n_parameters(),
                actual: initial.len(),
            });
        }
        let bounds = parameter_bounds(self.depth())?;
        let evaluate = |x: &[f64]| self.estimate(x).map(|e| -e);
        let objective = Fallible::new(&evaluate);
        let result = optimizer.minimize_objective(&objective, initial, &bounds, options)?;
        if let Some(err) = objective.take_error() {
            return Err(err);
        }
        let expectation = self.ansatz.expectation(&result.x)?;
        Ok(InstanceOutcome {
            approximation_ratio: self.ansatz.problem().approximation_ratio(expectation),
            params: result.x,
            expectation,
            function_calls: result.n_calls,
            gradient_calls: result.n_grad_calls,
            termination: result.termination,
        })
    }

    /// Multistart protocol on the sampled objective: best-of-`n_starts` by
    /// exact expectation at each final point, with summed sampled-call
    /// counts.
    ///
    /// # Errors
    ///
    /// * [`QaoaError::InvalidScenario`] if `n_starts == 0`.
    /// * Evaluation or optimizer errors from any start.
    pub fn optimize_multistart<R: rand::Rng + ?Sized>(
        &self,
        optimizer: &dyn Optimizer,
        n_starts: usize,
        rng: &mut R,
        options: &Options,
    ) -> Result<InstanceOutcome, QaoaError> {
        let bounds = parameter_bounds(self.depth())?;
        let mut best: Option<InstanceOutcome> = None;
        let mut total_calls = 0usize;
        let mut total_grad_calls = 0usize;
        for _ in 0..n_starts {
            let start = bounds.sample(rng);
            let outcome = self.optimize(optimizer, &start, options)?;
            total_calls += outcome.function_calls;
            total_grad_calls += outcome.gradient_calls;
            if best
                .as_ref()
                .is_none_or(|b| outcome.expectation > b.expectation)
            {
                best = Some(outcome);
            }
        }
        let mut best = best.ok_or(QaoaError::InvalidScenario {
            reason: "multistart needs at least one start",
        })?;
        best.function_calls = total_calls;
        best.gradient_calls = total_grad_calls;
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use optimize::Spsa;

    fn objective(shots: u32, seed: u64) -> SampledExpectation {
        let problem = MaxCutProblem::new(&generators::cycle(5)).unwrap();
        SampledExpectation::new(problem, 1, shots, seed).unwrap()
    }

    #[test]
    fn zero_shots_rejected() {
        let problem = MaxCutProblem::new(&generators::cycle(4)).unwrap();
        assert!(matches!(
            SampledExpectation::new(problem, 1, 0, 7),
            Err(QaoaError::InvalidScenario { .. })
        ));
    }

    #[test]
    fn estimate_is_a_pure_function_of_seed_and_eval_index() {
        let params = [0.9, 0.35];
        let a = objective(256, 11);
        let b = objective(256, 11);
        // Same eval index, same base seed: bit-identical across objects.
        let a1 = a.estimate(&params).unwrap();
        let b1 = b.estimate(&params).unwrap();
        assert_eq!(a1, b1);
        let a2 = a.estimate(&params).unwrap();
        let b2 = b.estimate(&params).unwrap();
        assert_eq!(a2, b2);
        // Different eval index: fresh shots at the same point.
        assert_ne!(a1, a2);
        assert_eq!(a.evaluations(), 2);
        // Different base seed: a different shot schedule.
        let c1 = objective(256, 12).estimate(&params).unwrap();
        assert_ne!(a1, c1);
    }

    #[test]
    fn estimate_error_shrinks_with_shots() {
        let params = [0.9, 0.35];
        let exact = objective(1, 0).ansatz().expectation(&params).unwrap();
        let mut coarse = 0.0;
        let mut fine = 0.0;
        for seed in 0..10 {
            coarse += (objective(32, seed).estimate(&params).unwrap() - exact).abs();
            fine += (objective(4096, seed).estimate(&params).unwrap() - exact).abs();
        }
        assert!(fine < coarse, "4096-shot {fine} !< 32-shot {coarse}");
        assert!(fine / 10.0 < 0.2);
    }

    #[test]
    fn spsa_optimization_improves_and_is_deterministic() {
        let options = Options::default().with_max_iters(60);
        let spsa = Spsa::default().with_seed(99);
        let run = |seed: u64| {
            let obj = objective(512, seed);
            obj.optimize(&spsa, &[2.0, 1.0], &options).unwrap()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.params, b.params, "same seed must give identical traces");
        assert_eq!(a.function_calls, b.function_calls);
        let f0 = objective(512, 5).ansatz().expectation(&[2.0, 1.0]).unwrap();
        assert!(
            a.expectation > f0,
            "SPSA should improve: {f0} -> {}",
            a.expectation
        );
        assert!(a.function_calls > 0);
    }

    #[test]
    fn outcome_judged_on_exact_expectation() {
        let obj = objective(64, 3);
        let out = obj
            .optimize(
                &Spsa::default(),
                &[0.9, 0.35],
                &Options::default().with_max_iters(20),
            )
            .unwrap();
        let exact = obj.ansatz().expectation(&out.params).unwrap();
        assert_eq!(out.expectation, exact);
    }

    #[test]
    fn multistart_accumulates_and_requires_starts() {
        use rand::SeedableRng;
        let obj = objective(64, 8);
        let options = Options::default().with_max_iters(10);
        let mut rng = StdRng::seed_from_u64(1);
        let one = obj
            .optimize_multistart(&Spsa::default(), 1, &mut rng, &options)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let three = obj
            .optimize_multistart(&Spsa::default(), 3, &mut rng, &options)
            .unwrap();
        assert!(three.function_calls > one.function_calls);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            obj.optimize_multistart(&Spsa::default(), 0, &mut rng, &options),
            Err(QaoaError::InvalidScenario { .. })
        ));
    }

    #[test]
    fn parameter_errors_propagate() {
        let obj = objective(16, 0);
        assert!(matches!(
            obj.estimate(&[0.1]),
            Err(QaoaError::ParameterCount { .. })
        ));
        assert!(matches!(
            obj.optimize(&Spsa::default(), &[0.1], &Options::default()),
            Err(QaoaError::ParameterCount { .. })
        ));
    }
}
