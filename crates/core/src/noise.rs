//! Shot-noise simulation: finite-sample estimation of the QAOA objective.
//!
//! The paper evaluates `⟨C⟩` exactly (state-vector simulation). On real
//! NISQ hardware every "QC call" estimates the expectation from a finite
//! number of measurement shots, which turns the objective into a noisy
//! function and stresses the classical optimizer — the regime the paper's
//! ML initialization is ultimately aimed at (fewer calls of an *expensive,
//! noisy* resource). This module provides that estimator so the two-level
//! flow can be studied under realistic sampling noise.
//!
//! # Example
//!
//! ```
//! use graphs::generators;
//! use qaoa::{noise::ShotEstimator, MaxCutProblem, QaoaAnsatz};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), qaoa::QaoaError> {
//! let problem = MaxCutProblem::new(&generators::cycle(4))?;
//! let ansatz = QaoaAnsatz::new(problem, 1)?;
//! let rng = rand::rngs::StdRng::seed_from_u64(5);
//! let estimator = ShotEstimator::new(ansatz, 1024, rng);
//! let exact = estimator.ansatz().expectation(&[0.7, 0.4])?;
//! let noisy = estimator.estimate(&[0.7, 0.4])?;
//! assert!((noisy - exact).abs() < 0.5); // within sampling error
//! # Ok(())
//! # }
//! ```

use std::cell::RefCell;

use rand::rngs::StdRng;

use crate::{QaoaAnsatz, QaoaError};

/// Estimates `⟨C⟩` from projective measurements instead of the exact state.
///
/// Each [`ShotEstimator::estimate`] call prepares `|ψ(γ, β)⟩`, draws
/// `shots` computational-basis samples from the Born distribution and
/// averages the cut values — exactly what one optimization-loop iteration
/// costs on hardware. The estimator is deterministic for a given RNG seed.
///
/// Interior mutability keeps the estimator usable through the
/// `&dyn Fn(&[f64]) -> f64` objective interface of the optimizers.
#[derive(Debug)]
pub struct ShotEstimator {
    ansatz: QaoaAnsatz,
    shots: usize,
    rng: RefCell<StdRng>,
}

impl ShotEstimator {
    /// Wraps an ansatz with a per-call shot budget and RNG.
    #[must_use]
    pub fn new(ansatz: QaoaAnsatz, shots: usize, rng: StdRng) -> Self {
        Self {
            ansatz,
            shots,
            rng: RefCell::new(rng),
        }
    }

    /// The wrapped ansatz.
    #[must_use]
    pub fn ansatz(&self) -> &QaoaAnsatz {
        &self.ansatz
    }

    /// Shots per estimate.
    #[must_use]
    pub fn shots(&self) -> usize {
        self.shots
    }

    /// One noisy objective evaluation (one simulated QC call).
    ///
    /// # Errors
    ///
    /// Returns [`QaoaError::ParameterCount`] on a parameter-length mismatch,
    /// or [`QaoaError::Simulator`] if the state's Born distribution is
    /// invalid (non-finite amplitudes).
    pub fn estimate(&self, params: &[f64]) -> Result<f64, QaoaError> {
        let state = self.ansatz.state_fast(params)?;
        let diag = self.ansatz.problem().cost().diagonal();
        let mut rng = self.rng.borrow_mut();
        let samples = qsim::sample_indices(&state, self.shots, &mut *rng)?;
        if samples.is_empty() {
            // Zero shots: fall back to the exact value (degenerate budget).
            return self.ansatz.expectation(params);
        }
        let n = f64::from(u32::try_from(samples.len()).unwrap_or(u32::MAX));
        Ok(samples.iter().map(|&z| diag[z]).sum::<f64>() / n)
    }

    /// The best cut value observed among `shots` fresh samples at `params` —
    /// the quantity a practitioner reads out after optimization.
    ///
    /// # Errors
    ///
    /// Returns [`QaoaError::ParameterCount`] on a parameter-length mismatch.
    pub fn best_sampled_cut(&self, params: &[f64]) -> Result<f64, QaoaError> {
        let state = self.ansatz.state_fast(params)?;
        let diag = self.ansatz.problem().cost().diagonal();
        let mut rng = self.rng.borrow_mut();
        let samples = qsim::sample_indices(&state, self.shots, &mut *rng)?;
        Ok(samples
            .iter()
            .map(|&z| diag[z])
            .fold(f64::NEG_INFINITY, f64::max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MaxCutProblem;
    use graphs::generators;
    use rand::SeedableRng;

    fn estimator(shots: usize, seed: u64) -> ShotEstimator {
        let problem = MaxCutProblem::new(&generators::cycle(5)).unwrap();
        let ansatz = QaoaAnsatz::new(problem, 1).unwrap();
        ShotEstimator::new(ansatz, shots, StdRng::seed_from_u64(seed))
    }

    #[test]
    fn estimate_converges_with_shots() {
        let params = [0.9, 0.35];
        let exact = estimator(1, 0).ansatz().expectation(&params).unwrap();
        // Error shrinks roughly as 1/sqrt(shots): compare budgets.
        let mut coarse_err = 0.0;
        let mut fine_err = 0.0;
        for seed in 0..10 {
            coarse_err += (estimator(32, seed).estimate(&params).unwrap() - exact).abs();
            fine_err += (estimator(4096, seed).estimate(&params).unwrap() - exact).abs();
        }
        assert!(
            fine_err < coarse_err,
            "4096-shot error {fine_err} should beat 32-shot error {coarse_err}"
        );
        assert!(fine_err / 10.0 < 0.2);
    }

    #[test]
    fn estimate_is_unbiased_in_aggregate() {
        let params = [1.2, 0.5];
        let exact = estimator(1, 0).ansatz().expectation(&params).unwrap();
        let mean: f64 = (0..40)
            .map(|seed| estimator(256, seed).estimate(&params).unwrap())
            .sum::<f64>()
            / 40.0;
        assert!((mean - exact).abs() < 0.1, "{mean} vs {exact}");
    }

    #[test]
    fn deterministic_per_seed() {
        let params = [0.4, 0.2];
        let a = estimator(128, 7).estimate(&params).unwrap();
        let b = estimator(128, 7).estimate(&params).unwrap();
        assert_eq!(a, b);
        // Consecutive calls consume RNG state (fresh shots every call).
        let e = estimator(128, 7);
        let first = e.estimate(&params).unwrap();
        let second = e.estimate(&params).unwrap();
        assert_ne!(first, second);
    }

    #[test]
    fn zero_shots_falls_back_to_exact() {
        let params = [0.4, 0.2];
        let e = estimator(0, 3);
        let exact = e.ansatz().expectation(&params).unwrap();
        assert_eq!(e.estimate(&params).unwrap(), exact);
    }

    #[test]
    fn best_sampled_cut_bounded_by_optimum() {
        let e = estimator(512, 11);
        let best = e.best_sampled_cut(&[0.9, 0.35]).unwrap();
        assert!(best <= e.ansatz().problem().optimal_cut() + 1e-12);
        assert!(best >= 0.0);
    }

    #[test]
    fn parameter_errors_propagate() {
        let e = estimator(16, 0);
        assert!(matches!(
            e.estimate(&[0.1]),
            Err(QaoaError::ParameterCount { .. })
        ));
        assert!(e.best_sampled_cut(&[0.1, 0.2, 0.3]).is_err());
    }

    #[test]
    fn optimizer_runs_on_noisy_objective() {
        // Nelder-Mead (noise-tolerant) still improves the objective through
        // the shot estimator.
        use optimize::{NelderMead, Optimizer, Options};
        let e = estimator(2048, 21);
        let objective = |x: &[f64]| -e.estimate(x).expect("valid params");
        let bounds = crate::parameter_bounds(1).unwrap();
        let start = [2.0, 1.0];
        let f0 = e.ansatz().expectation(&start).unwrap();
        let result = NelderMead::default()
            .minimize(
                &objective,
                &start,
                &bounds,
                &Options::default().with_max_iters(100),
            )
            .unwrap();
        let f1 = e.ansatz().expectation(&result.x).unwrap();
        assert!(
            f1 > f0,
            "noisy optimization should still improve: {f0} -> {f1}"
        );
    }
}
