//! Canonicalization of QAOA parameters under the exact landscape symmetries.
//!
//! For MaxCut cost functions (which satisfy `C(z) = C(z̄)`), the QAOA
//! expectation is invariant under
//!
//! 1. `βᵢ → βᵢ + π/2` independently per layer (the shift introduces an
//!    `X^⊗n` that commutes through the symmetric cost layers),
//! 2. `γᵢ → γᵢ + 2π` for integer-valued (unweighted) costs,
//! 3. the global conjugation `γᵢ → −γᵢ, βᵢ → −βᵢ` (complex conjugation of
//!    the circuit).
//!
//! Best-of-N multistart therefore returns an *arbitrary symmetric image* of
//! the optimum, different per graph — which destroys the cross-instance
//! regularities (§II-B/C) the predictor must learn. The paper's clean
//! parameter trends implicitly rely on consistent representatives; this
//! module makes that explicit: [`canonicalize`] folds every parameter
//! vector into the fundamental domain `γᵢ ∈ [0, 2π), βᵢ ∈ [0, π/2)` with
//! `γ₁ ≤ π` (conjugation fold), and the data-generation pipeline and
//! two-level flow apply it before any learning or prediction.
//!
//! All three symmetries are verified numerically in this module's tests and
//! in the property suite.

use std::f64::consts::{FRAC_PI_2, PI};

use graphs::Graph;

const TWO_PI: f64 = 2.0 * PI;

/// Folds `(γs, βs)` into the canonical fundamental domain in place.
///
/// Assumes an unweighted (integer-cost) MaxCut instance; for weighted graphs
/// only the β folding and conjugation remain exact, which is still a valid
/// (weaker) canonicalization.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn canonicalize(gammas: &mut [f64], betas: &mut [f64]) {
    assert_eq!(gammas.len(), betas.len(), "layer count mismatch");
    for g in gammas.iter_mut() {
        *g = g.rem_euclid(TWO_PI);
    }
    for b in betas.iter_mut() {
        *b = b.rem_euclid(FRAC_PI_2);
    }
    // Conjugation fold: pick the representative with γ₁ ∈ [0, π].
    if let Some(&g1) = gammas.first() {
        if g1 > PI {
            for g in gammas.iter_mut() {
                *g = (TWO_PI - *g).rem_euclid(TWO_PI);
            }
            for b in betas.iter_mut() {
                *b = (FRAC_PI_2 - *b).rem_euclid(FRAC_PI_2);
            }
        }
    }
}

/// Returns the canonical image of a packed parameter vector
/// `[γ₁…γ_p, β₁…β_p]`.
///
/// # Panics
///
/// Panics if the length is odd.
///
/// ```
/// use std::f64::consts::PI;
/// // A symmetric image of (π/2, π/8) folds back onto it.
/// let packed = [2.0 * PI - PI / 2.0, PI / 2.0 - PI / 8.0];
/// let canon = qaoa::canonical::canonicalize_packed(&packed);
/// assert!((canon[0] - PI / 2.0).abs() < 1e-12);
/// assert!((canon[1] - PI / 8.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn canonicalize_packed(params: &[f64]) -> Vec<f64> {
    assert!(
        params.len().is_multiple_of(2),
        "packed parameters must have even length"
    );
    let p = params.len() / 2;
    let mut gammas = params[..p].to_vec();
    let mut betas = params[p..].to_vec();
    canonicalize(&mut gammas, &mut betas);
    gammas.extend(betas);
    gammas
}

/// Applies only the global conjugation fold to a packed vector in the
/// paper's display domain `γ ∈ [0, 2π], β ∈ [0, π]`: when `γ₁ > π`, maps
/// `γᵢ → 2π − γᵢ, βᵢ → π − βᵢ` (an exact landscape symmetry).
///
/// Unlike [`canonicalize_packed`], this preserves smooth per-stage schedules
/// (no per-layer β folding), so it is the right transform for *displaying*
/// cross-graph parameter trends (Figs. 2–3) in one consistent image family.
///
/// # Panics
///
/// Panics if the length is odd.
///
/// ```
/// use std::f64::consts::PI;
/// let folded = qaoa::canonical::display_fold(&[2.0 * PI - 0.5, PI - 0.3]);
/// assert!((folded[0] - 0.5).abs() < 1e-12);
/// assert!((folded[1] - 0.3).abs() < 1e-12);
/// ```
#[must_use]
pub fn display_fold(params: &[f64]) -> Vec<f64> {
    assert!(
        params.len().is_multiple_of(2),
        "packed parameters must have even length"
    );
    let p = params.len() / 2;
    let mut gammas: Vec<f64> = params[..p].iter().map(|g| g.rem_euclid(TWO_PI)).collect();
    let mut betas: Vec<f64> = params[p..].to_vec();
    if gammas.first().is_some_and(|&g1| g1 > PI) {
        for g in &mut gammas {
            *g = (TWO_PI - *g).rem_euclid(TWO_PI);
        }
        for b in &mut betas {
            *b = PI - *b;
        }
    }
    // Uniform β shift by a multiple of π/2 (the same k for every layer is a
    // composition of exact per-layer symmetries and keeps the schedule's
    // shape) to bring the mean mixing angle into [0, π/2).
    if !betas.is_empty() {
        let mean: f64 = betas.iter().sum::<f64>() / betas.len() as f64;
        let k = (mean / FRAC_PI_2).floor();
        for b in &mut betas {
            *b -= k * FRAC_PI_2;
        }
    }
    gammas.extend(betas);
    gammas
}

/// Folds a *chain* of packed vectors (one per depth, as produced by an
/// INTERP schedule) for display, keeping the image choice continuous across
/// depths: the conjugation decision and the uniform β shift of each row are
/// anchored to the previous row's folded mean, so trends read coherently
/// down the table.
///
/// ```
/// use std::f64::consts::PI;
/// let chain = vec![vec![0.5, 0.3], vec![0.45, 0.55, 0.35, 0.25]];
/// let folded = qaoa::canonical::display_fold_chain(&chain);
/// assert_eq!(folded.len(), 2);
/// assert_eq!(folded[0].len(), 2);
/// ```
#[must_use]
pub fn display_fold_chain(chain: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let mut out = Vec::with_capacity(chain.len());
    let mut prev_mean: Option<f64> = None;
    for packed in chain {
        let p = packed.len() / 2;
        let mut gammas: Vec<f64> = packed[..p].iter().map(|g| g.rem_euclid(TWO_PI)).collect();
        let mut betas: Vec<f64> = packed[p..].to_vec();
        if gammas.first().is_some_and(|&g1| g1 > PI) {
            for g in &mut gammas {
                *g = (TWO_PI - *g).rem_euclid(TWO_PI);
            }
            for b in &mut betas {
                *b = PI - *b;
            }
        }
        if !betas.is_empty() {
            let mean: f64 = betas.iter().sum::<f64>() / betas.len() as f64;
            // Anchor: first row lands in [0, π/2); later rows pick the shift
            // whose folded mean is closest to the previous row's.
            let k = match prev_mean {
                None => (mean / FRAC_PI_2).floor(),
                Some(anchor) => ((mean - anchor) / FRAC_PI_2).round(),
            };
            for b in &mut betas {
                *b -= k * FRAC_PI_2;
            }
            prev_mean = Some(betas.iter().sum::<f64>() / betas.len() as f64);
        }
        gammas.extend(betas);
        out.push(gammas);
    }
    out
}

/// Upper bound on the number of candidate labelings [`graph_key`] will
/// enumerate before falling back to a heuristic (still sound) ordering.
const MAX_LABELINGS: u128 = 100_000;

/// A canonical, hashable form of a graph, usable as a cache key.
///
/// The key is the graph's edge list under a *canonical labeling*: vertices
/// are partitioned by iterated Weisfeiler–Leman color refinement, then the
/// lexicographically smallest relabeled edge list over all permutations
/// consistent with the partition is selected. Two properties follow:
///
/// * **Soundness** — equal keys imply isomorphic graphs, always: the key
///   contains the full edge multiset under *some* relabeling, so equal keys
///   exhibit an explicit isomorphism. A cache keyed on this type can never
///   conflate distinct problems.
/// * **Completeness** — isomorphic graphs get equal keys whenever the
///   refinement-constrained search space is below [`MAX_LABELINGS`]
///   candidates (always true for the paper's 8-node ensembles). Beyond
///   that, a deterministic heuristic ordering is used and isomorphic
///   duplicates may miss the cache — a performance, not correctness, loss.
///
/// QAOA expectation landscapes (and MaxCut optima) are invariant under
/// graph isomorphism, so a depth-1 optimum computed for the [canonical
/// representative](CanonicalGraphKey::to_graph) is valid for every graph
/// with the same key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalGraphKey {
    n_nodes: usize,
    /// Canonically relabeled edges `(u, v, weight bits)` with `u < v`,
    /// sorted.
    edges: Vec<(u32, u32, u64)>,
}

impl CanonicalGraphKey {
    /// Number of nodes of the keyed graph.
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of edges of the keyed graph.
    #[must_use]
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// The canonically relabeled edge list `(u, v, weight bits)` with
    /// `u < v`, sorted — the key's full identity, exposed so callers (wire
    /// codecs, on-disk caches) can encode it stably.
    #[must_use]
    pub fn edges(&self) -> &[(u32, u32, u64)] {
        &self.edges
    }

    /// Reassembles a key from its parts (the inverse of
    /// [`CanonicalGraphKey::edges`]), validating the structural invariants
    /// every [`graph_key`]-produced key satisfies: endpoints in range and
    /// distinct with `u < v`, the list strictly sorted (so no duplicate
    /// edges), and finite weights.
    ///
    /// Soundness survives decoding untrusted input: two equal keys have
    /// identical edge lists and therefore describe literally the same
    /// labeled graph, so a cache keyed on decoded keys still never
    /// conflates distinct problems. A forged *non-canonical* edge list
    /// merely fails to match any [`graph_key`] output (a wasted cache
    /// entry, not a wrong answer).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn from_parts(n_nodes: usize, edges: Vec<(u32, u32, u64)>) -> Result<Self, String> {
        for (i, &(u, v, bits)) in edges.iter().enumerate() {
            if u >= v {
                return Err(format!(
                    "edge {i}: endpoints must satisfy u < v, got {u}-{v}"
                ));
            }
            if v as usize >= n_nodes {
                return Err(format!(
                    "edge {i}: endpoint {v} out of range for {n_nodes} nodes"
                ));
            }
            if !f64::from_bits(bits).is_finite() {
                return Err(format!("edge {i}: non-finite weight"));
            }
            if i > 0 && edges[i - 1] >= (u, v, bits) {
                return Err(format!("edge {i}: list must be strictly sorted"));
            }
        }
        Ok(Self { n_nodes, edges })
    }

    /// Rebuilds the canonical representative graph of this key.
    ///
    /// # Panics
    ///
    /// Never panics for keys produced by [`graph_key`] (edges are in range
    /// and deduplicated by construction).
    #[must_use]
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new(self.n_nodes);
        for &(u, v, bits) in &self.edges {
            g.add_weighted_edge(u as usize, v as usize, f64::from_bits(bits))
                .expect("canonical key edges are valid");
        }
        g
    }

    /// A stable 64-bit digest (FNV-1a over the key bytes), suitable for
    /// deterministic seed derivation. Unlike `Hash`, this is identical
    /// across processes and runs.
    #[must_use]
    pub fn hash64(&self) -> u64 {
        let mut h = crate::stablehash::Fnv64::new();
        h.write_u64(self.n_nodes as u64);
        for &(u, v, w) in &self.edges {
            h.write_u64(u64::from(u));
            h.write_u64(u64::from(v));
            h.write_u64(w);
        }
        h.finish()
    }
}

/// Computes the [`CanonicalGraphKey`] of `g`. See the type docs for the
/// soundness/completeness contract.
#[must_use]
pub fn graph_key(g: &Graph) -> CanonicalGraphKey {
    let n = g.n_nodes();
    if n == 0 {
        return CanonicalGraphKey {
            n_nodes: 0,
            edges: Vec::new(),
        };
    }

    // --- 1. WL color refinement -------------------------------------------
    // Adjacency with weight bits so weighted graphs refine correctly.
    let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    for e in g.edges() {
        let bits = e.weight.to_bits();
        adj[e.u].push((e.v, bits));
        adj[e.v].push((e.u, bits));
    }
    let mut colors: Vec<usize> = (0..n).map(|v| adj[v].len()).collect();
    // Remap initial colors (degrees) into dense, order-preserving indices.
    let mut distinct: Vec<usize> = {
        let mut d = colors.clone();
        d.sort_unstable();
        d.dedup();
        d
    };
    for c in &mut colors {
        *c = distinct.binary_search(c).expect("color present");
    }
    for _round in 0..n {
        // Signature of v: (own color, sorted (neighbor color, weight bits)).
        let mut sigs: Vec<(usize, Vec<(usize, u64)>)> = (0..n)
            .map(|v| {
                let mut ns: Vec<(usize, u64)> =
                    adj[v].iter().map(|&(w, bits)| (colors[w], bits)).collect();
                ns.sort_unstable();
                (colors[v], ns)
            })
            .collect();
        let mut sorted: Vec<(usize, Vec<(usize, u64)>)> = sigs.clone();
        sorted.sort();
        sorted.dedup();
        let n_new = sorted.len();
        let new_colors: Vec<usize> = sigs
            .drain(..)
            .map(|sig| sorted.binary_search(&sig).expect("sig present"))
            .collect();
        let stable = {
            let mut old_distinct = colors.clone();
            old_distinct.sort_unstable();
            old_distinct.dedup();
            old_distinct.len() == n_new
        };
        colors = new_colors;
        if stable {
            break;
        }
    }
    distinct = colors.clone();
    distinct.sort_unstable();
    distinct.dedup();

    // --- 2. Color classes, in refined-color order -------------------------
    let classes: Vec<Vec<usize>> = distinct
        .iter()
        .map(|&c| (0..n).filter(|&v| colors[v] == c).collect())
        .collect();

    let relabel_edges = |position_of: &[u32]| -> Vec<(u32, u32, u64)> {
        let mut edges: Vec<(u32, u32, u64)> = g
            .edges()
            .iter()
            .map(|e| {
                let (a, b) = (position_of[e.u], position_of[e.v]);
                (a.min(b), a.max(b), e.weight.to_bits())
            })
            .collect();
        edges.sort_unstable();
        edges
    };

    // Candidate count: product of class factorials.
    let mut candidates: u128 = 1;
    for class in &classes {
        let mut f: u128 = 1;
        for k in 2..=class.len() as u128 {
            f = f.saturating_mul(k);
        }
        candidates = candidates.saturating_mul(f);
        if candidates > MAX_LABELINGS {
            break;
        }
    }

    // Heuristic (sound but not complete) fallback ordering: refined color,
    // then original index.
    let heuristic = |_: ()| -> Vec<(u32, u32, u64)> {
        let mut position_of = vec![0u32; n];
        let mut next = 0u32;
        for class in &classes {
            for &v in class {
                position_of[v] = next;
                next += 1;
            }
        }
        relabel_edges(&position_of)
    };

    let edges = if candidates > MAX_LABELINGS {
        heuristic(())
    } else {
        // --- 3. Exhaustive search over class-respecting labelings ---------
        // Precompute all permutations of each class, then walk the odometer.
        let perms_per_class: Vec<Vec<Vec<usize>>> =
            classes.iter().map(|c| permutations(c)).collect();
        let mut best: Option<Vec<(u32, u32, u64)>> = None;
        let mut odometer = vec![0usize; classes.len()];
        loop {
            let mut position_of = vec![0u32; n];
            let mut next = 0u32;
            for (ci, perm_idx) in odometer.iter().enumerate() {
                for &v in &perms_per_class[ci][*perm_idx] {
                    position_of[v] = next;
                    next += 1;
                }
            }
            let candidate = relabel_edges(&position_of);
            if best.as_ref().is_none_or(|b| candidate < *b) {
                best = Some(candidate);
            }
            // Advance the odometer.
            let mut digit = 0;
            loop {
                if digit == odometer.len() {
                    break;
                }
                odometer[digit] += 1;
                if odometer[digit] < perms_per_class[digit].len() {
                    break;
                }
                odometer[digit] = 0;
                digit += 1;
            }
            if digit == odometer.len() {
                break;
            }
        }
        best.expect("at least the identity labeling was tried")
    };

    CanonicalGraphKey { n_nodes: n, edges }
}

/// Stable 64-bit digest of a graph's canonical key — see
/// [`CanonicalGraphKey::hash64`].
#[must_use]
pub fn graph_hash(g: &Graph) -> u64 {
    graph_key(g).hash64()
}

/// All permutations of `items` (Heap's algorithm), deterministic order.
fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    let mut current = items.to_vec();
    let k = current.len();
    let mut out = vec![current.clone()];
    let mut c = vec![0usize; k];
    let mut i = 1;
    while i < k {
        if c[i] < i {
            if i % 2 == 0 {
                current.swap(0, i);
            } else {
                current.swap(c[i], i);
            }
            out.push(current.clone());
            c[i] += 1;
            i = 1;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    out
}

/// `true` if the packed vector already lies in the canonical domain.
#[must_use]
pub fn is_canonical(params: &[f64]) -> bool {
    let p = params.len() / 2;
    let gammas_ok = params[..p].iter().all(|g| (0.0..TWO_PI).contains(g));
    let betas_ok = params[p..].iter().all(|b| (0.0..FRAC_PI_2).contains(b));
    let conj_ok = params.first().is_none_or(|&g1| g1 <= PI);
    gammas_ok && betas_ok && conj_ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MaxCutProblem, QaoaAnsatz};
    use graphs::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn folding_lands_in_domain() {
        let mut g = vec![7.0, -1.0, 100.0];
        let mut b = vec![3.0, -0.2, 9.9];
        canonicalize(&mut g, &mut b);
        assert!(is_canonical(
            &g.iter().chain(&b).copied().collect::<Vec<_>>()
        ));
    }

    #[test]
    fn canonical_image_preserves_expectation() {
        // The whole point: folding must not change ⟨C⟩ on unweighted graphs.
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..6 {
            let graph = generators::erdos_renyi_nonempty(6, 0.5, &mut rng);
            let problem = MaxCutProblem::new(&graph).unwrap();
            for p in 1..=3 {
                let ansatz = QaoaAnsatz::new(problem.clone(), p).unwrap();
                let params: Vec<f64> = (0..2 * p)
                    .map(|i| {
                        if i < p {
                            rng.gen_range(0.0..crate::GAMMA_MAX)
                        } else {
                            rng.gen_range(0.0..crate::BETA_MAX)
                        }
                    })
                    .collect();
                let folded = canonicalize_packed(&params);
                let e0 = ansatz.expectation(&params).unwrap();
                let e1 = ansatz.expectation(&folded).unwrap();
                assert!(
                    (e0 - e1).abs() < 1e-9,
                    "p={p}: {e0} vs {e1} for {params:?} -> {folded:?}"
                );
            }
        }
    }

    #[test]
    fn per_layer_beta_shift_is_a_symmetry() {
        // β₂ → β₂ + π/2 alone (middle layer) leaves ⟨C⟩ unchanged.
        let mut rng = StdRng::seed_from_u64(4);
        let graph = generators::erdos_renyi_nonempty(5, 0.6, &mut rng);
        let ansatz = QaoaAnsatz::new(MaxCutProblem::new(&graph).unwrap(), 3).unwrap();
        let params = [0.7, 1.2, 2.0, 0.3, 0.9, 0.2];
        let mut shifted = params;
        shifted[4] += FRAC_PI_2;
        let e0 = ansatz.expectation(&params).unwrap();
        let e1 = ansatz.expectation(&shifted).unwrap();
        assert!((e0 - e1).abs() < 1e-9);
    }

    #[test]
    fn idempotent() {
        let params = [5.0, 1.0, 2.8, 0.1];
        let once = canonicalize_packed(&params);
        let twice = canonicalize_packed(&once);
        for (a, b) in once.iter().zip(&twice) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(is_canonical(&once));
    }

    #[test]
    fn symmetric_pairs_fold_to_same_point() {
        let params = [1.0, 2.5, 0.3, 0.4];
        // Image under conjugation + assorted β shifts.
        let image = [
            TWO_PI - 1.0,
            TWO_PI - 2.5,
            (FRAC_PI_2 - 0.3) + FRAC_PI_2,
            (FRAC_PI_2 - 0.4) + 3.0 * FRAC_PI_2,
        ];
        let a = canonicalize_packed(&params);
        let b = canonicalize_packed(&image);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn empty_is_fine() {
        let out = canonicalize_packed(&[]);
        assert!(out.is_empty());
        assert!(is_canonical(&[]));
    }
}

#[cfg(test)]
mod graph_key_tests {
    use super::*;
    use graphs::generators;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    /// Relabels `g` by a random permutation.
    fn relabel(g: &Graph, rng: &mut StdRng) -> Graph {
        let n = g.n_nodes();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(rng);
        let mut h = Graph::new(n);
        for e in g.edges() {
            h.add_weighted_edge(perm[e.u], perm[e.v], e.weight).unwrap();
        }
        h
    }

    #[test]
    fn isomorphic_graphs_share_a_key() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let g = generators::erdos_renyi_nonempty(7, 0.5, &mut rng);
            let h = relabel(&g, &mut rng);
            assert_eq!(graph_key(&g), graph_key(&h));
            assert_eq!(graph_hash(&g), graph_hash(&h));
        }
    }

    #[test]
    fn regular_graphs_canonicalize_exactly() {
        // Worst case for refinement: every vertex starts in one color class.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let g = generators::random_regular(8, 3, &mut rng).unwrap();
            let h = relabel(&g, &mut rng);
            assert_eq!(graph_key(&g), graph_key(&h));
        }
    }

    #[test]
    fn distinct_graphs_get_distinct_keys() {
        let path = generators::path(5);
        let cycle = generators::cycle(5);
        let star = generators::star(5);
        let kp = graph_key(&path);
        let kc = graph_key(&cycle);
        let ks = graph_key(&star);
        assert_ne!(kp, kc);
        assert_ne!(kp, ks);
        assert_ne!(kc, ks);
        // Same edge count, different structure: P4 vs K3 + isolated vertex.
        let p4 = generators::path(4);
        let mut tri = Graph::new(4);
        tri.add_edge(0, 1).unwrap();
        tri.add_edge(1, 2).unwrap();
        tri.add_edge(0, 2).unwrap();
        assert_ne!(graph_key(&p4), graph_key(&tri));
    }

    #[test]
    fn canonical_representative_is_isomorphic() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::erdos_renyi_nonempty(6, 0.6, &mut rng);
        let key = graph_key(&g);
        let rep = key.to_graph();
        assert_eq!(rep.n_nodes(), g.n_nodes());
        assert_eq!(rep.n_edges(), g.n_edges());
        // Re-keying the representative is a fixed point.
        assert_eq!(graph_key(&rep), key);
    }

    #[test]
    fn hash64_is_stable_and_discriminating() {
        let g = generators::cycle(6);
        assert_eq!(graph_hash(&g), graph_hash(&g));
        assert_ne!(graph_hash(&g), graph_hash(&generators::path(6)));
        // Must not depend on process-level hash randomization: pin a value
        // shape (nonzero, reproducible within this test run suffices for
        // FNV over fixed bytes).
        let k = graph_key(&g);
        assert_eq!(k.hash64(), graph_key(&generators::cycle(6)).hash64());
        assert_eq!(k.n_nodes(), 6);
        assert_eq!(k.n_edges(), 6);
    }

    #[test]
    fn weighted_edges_distinguish_keys() {
        let mut a = Graph::new(3);
        a.add_weighted_edge(0, 1, 1.0).unwrap();
        a.add_weighted_edge(1, 2, 2.0).unwrap();
        let mut b = Graph::new(3);
        b.add_weighted_edge(0, 1, 1.0).unwrap();
        b.add_weighted_edge(1, 2, 1.0).unwrap();
        assert_ne!(graph_key(&a), graph_key(&b));
        // Weight-permuted isomorphic image still matches.
        let mut c = Graph::new(3);
        c.add_weighted_edge(2, 1, 1.0).unwrap();
        c.add_weighted_edge(1, 0, 2.0).unwrap();
        assert_eq!(graph_key(&a), graph_key(&c));
    }

    #[test]
    fn empty_and_tiny_graphs() {
        assert_eq!(graph_key(&Graph::new(0)).n_nodes(), 0);
        let lone = Graph::new(1);
        assert_eq!(graph_key(&lone).n_edges(), 0);
        assert_eq!(permutations(&[0, 1, 2]).len(), 6);
        assert_eq!(permutations(&[]).len(), 1);
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let key = graph_key(&generators::cycle(6));
        let rebuilt = CanonicalGraphKey::from_parts(key.n_nodes(), key.edges().to_vec()).unwrap();
        assert_eq!(rebuilt, key);
        assert_eq!(rebuilt.hash64(), key.hash64());
        // Each invariant is enforced.
        let w = 1.0f64.to_bits();
        assert!(CanonicalGraphKey::from_parts(3, vec![(1, 1, w)]).is_err());
        assert!(CanonicalGraphKey::from_parts(3, vec![(1, 0, w)]).is_err());
        assert!(CanonicalGraphKey::from_parts(3, vec![(0, 3, w)]).is_err());
        assert!(CanonicalGraphKey::from_parts(3, vec![(0, 1, w), (0, 1, w)]).is_err());
        assert!(CanonicalGraphKey::from_parts(3, vec![(1, 2, w), (0, 1, w)]).is_err());
        assert!(CanonicalGraphKey::from_parts(3, vec![(0, 1, f64::NAN.to_bits())]).is_err());
        assert!(CanonicalGraphKey::from_parts(0, vec![]).is_ok());
    }
}

#[cfg(test)]
mod display_fold_tests {
    use super::*;
    use crate::{MaxCutProblem, QaoaAnsatz};
    use graphs::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn display_fold_preserves_expectation() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = generators::erdos_renyi_nonempty(5, 0.5, &mut rng);
        let ansatz = QaoaAnsatz::new(MaxCutProblem::new(&g).unwrap(), 2).unwrap();
        for _ in 0..10 {
            let params = [
                rng.gen_range(0.0..crate::GAMMA_MAX),
                rng.gen_range(0.0..crate::GAMMA_MAX),
                rng.gen_range(0.0..crate::BETA_MAX),
                rng.gen_range(0.0..crate::BETA_MAX),
            ];
            let folded = display_fold(&params);
            let e0 = ansatz.expectation(&params).unwrap();
            let e1 = ansatz.expectation(&folded).unwrap();
            assert!((e0 - e1).abs() < 1e-9, "{params:?} -> {folded:?}");
        }
    }

    #[test]
    fn display_fold_identity_when_gamma1_small() {
        let params = [1.0, 2.0, 0.5, 0.6];
        assert_eq!(display_fold(&params), params.to_vec());
    }

    #[test]
    fn display_fold_lands_in_first_image() {
        let params = [5.0, 6.0, 2.5, 3.0];
        let folded = display_fold(&params);
        assert!(folded[0] <= PI);
        // Exact mirror of every coordinate.
        assert!((folded[0] - (TWO_PI - 5.0)).abs() < 1e-12);
        assert!((folded[2] - (PI - 2.5)).abs() < 1e-12);
    }
}
