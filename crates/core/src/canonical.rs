//! Canonicalization of QAOA parameters under the exact landscape symmetries.
//!
//! For MaxCut cost functions (which satisfy `C(z) = C(z̄)`), the QAOA
//! expectation is invariant under
//!
//! 1. `βᵢ → βᵢ + π/2` independently per layer (the shift introduces an
//!    `X^⊗n` that commutes through the symmetric cost layers),
//! 2. `γᵢ → γᵢ + 2π` for integer-valued (unweighted) costs,
//! 3. the global conjugation `γᵢ → −γᵢ, βᵢ → −βᵢ` (complex conjugation of
//!    the circuit).
//!
//! Best-of-N multistart therefore returns an *arbitrary symmetric image* of
//! the optimum, different per graph — which destroys the cross-instance
//! regularities (§II-B/C) the predictor must learn. The paper's clean
//! parameter trends implicitly rely on consistent representatives; this
//! module makes that explicit: [`canonicalize`] folds every parameter
//! vector into the fundamental domain `γᵢ ∈ [0, 2π), βᵢ ∈ [0, π/2)` with
//! `γ₁ ≤ π` (conjugation fold), and the data-generation pipeline and
//! two-level flow apply it before any learning or prediction.
//!
//! All three symmetries are verified numerically in this module's tests and
//! in the property suite.

use std::f64::consts::{FRAC_PI_2, PI};

const TWO_PI: f64 = 2.0 * PI;

/// Folds `(γs, βs)` into the canonical fundamental domain in place.
///
/// Assumes an unweighted (integer-cost) MaxCut instance; for weighted graphs
/// only the β folding and conjugation remain exact, which is still a valid
/// (weaker) canonicalization.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn canonicalize(gammas: &mut [f64], betas: &mut [f64]) {
    assert_eq!(gammas.len(), betas.len(), "layer count mismatch");
    for g in gammas.iter_mut() {
        *g = g.rem_euclid(TWO_PI);
    }
    for b in betas.iter_mut() {
        *b = b.rem_euclid(FRAC_PI_2);
    }
    // Conjugation fold: pick the representative with γ₁ ∈ [0, π].
    if let Some(&g1) = gammas.first() {
        if g1 > PI {
            for g in gammas.iter_mut() {
                *g = (TWO_PI - *g).rem_euclid(TWO_PI);
            }
            for b in betas.iter_mut() {
                *b = (FRAC_PI_2 - *b).rem_euclid(FRAC_PI_2);
            }
        }
    }
}

/// Returns the canonical image of a packed parameter vector
/// `[γ₁…γ_p, β₁…β_p]`.
///
/// # Panics
///
/// Panics if the length is odd.
///
/// ```
/// use std::f64::consts::PI;
/// // A symmetric image of (π/2, π/8) folds back onto it.
/// let packed = [2.0 * PI - PI / 2.0, PI / 2.0 - PI / 8.0];
/// let canon = qaoa::canonical::canonicalize_packed(&packed);
/// assert!((canon[0] - PI / 2.0).abs() < 1e-12);
/// assert!((canon[1] - PI / 8.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn canonicalize_packed(params: &[f64]) -> Vec<f64> {
    assert!(params.len().is_multiple_of(2), "packed parameters must have even length");
    let p = params.len() / 2;
    let mut gammas = params[..p].to_vec();
    let mut betas = params[p..].to_vec();
    canonicalize(&mut gammas, &mut betas);
    gammas.extend(betas);
    gammas
}

/// Applies only the global conjugation fold to a packed vector in the
/// paper's display domain `γ ∈ [0, 2π], β ∈ [0, π]`: when `γ₁ > π`, maps
/// `γᵢ → 2π − γᵢ, βᵢ → π − βᵢ` (an exact landscape symmetry).
///
/// Unlike [`canonicalize_packed`], this preserves smooth per-stage schedules
/// (no per-layer β folding), so it is the right transform for *displaying*
/// cross-graph parameter trends (Figs. 2–3) in one consistent image family.
///
/// # Panics
///
/// Panics if the length is odd.
///
/// ```
/// use std::f64::consts::PI;
/// let folded = qaoa::canonical::display_fold(&[2.0 * PI - 0.5, PI - 0.3]);
/// assert!((folded[0] - 0.5).abs() < 1e-12);
/// assert!((folded[1] - 0.3).abs() < 1e-12);
/// ```
#[must_use]
pub fn display_fold(params: &[f64]) -> Vec<f64> {
    assert!(params.len().is_multiple_of(2), "packed parameters must have even length");
    let p = params.len() / 2;
    let mut gammas: Vec<f64> = params[..p].iter().map(|g| g.rem_euclid(TWO_PI)).collect();
    let mut betas: Vec<f64> = params[p..].to_vec();
    if gammas.first().is_some_and(|&g1| g1 > PI) {
        for g in &mut gammas {
            *g = (TWO_PI - *g).rem_euclid(TWO_PI);
        }
        for b in &mut betas {
            *b = PI - *b;
        }
    }
    // Uniform β shift by a multiple of π/2 (the same k for every layer is a
    // composition of exact per-layer symmetries and keeps the schedule's
    // shape) to bring the mean mixing angle into [0, π/2).
    if !betas.is_empty() {
        let mean: f64 = betas.iter().sum::<f64>() / betas.len() as f64;
        let k = (mean / FRAC_PI_2).floor();
        for b in &mut betas {
            *b -= k * FRAC_PI_2;
        }
    }
    gammas.extend(betas);
    gammas
}

/// Folds a *chain* of packed vectors (one per depth, as produced by an
/// INTERP schedule) for display, keeping the image choice continuous across
/// depths: the conjugation decision and the uniform β shift of each row are
/// anchored to the previous row's folded mean, so trends read coherently
/// down the table.
///
/// ```
/// use std::f64::consts::PI;
/// let chain = vec![vec![0.5, 0.3], vec![0.45, 0.55, 0.35, 0.25]];
/// let folded = qaoa::canonical::display_fold_chain(&chain);
/// assert_eq!(folded.len(), 2);
/// assert_eq!(folded[0].len(), 2);
/// ```
#[must_use]
pub fn display_fold_chain(chain: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let mut out = Vec::with_capacity(chain.len());
    let mut prev_mean: Option<f64> = None;
    for packed in chain {
        let p = packed.len() / 2;
        let mut gammas: Vec<f64> = packed[..p].iter().map(|g| g.rem_euclid(TWO_PI)).collect();
        let mut betas: Vec<f64> = packed[p..].to_vec();
        if gammas.first().is_some_and(|&g1| g1 > PI) {
            for g in &mut gammas {
                *g = (TWO_PI - *g).rem_euclid(TWO_PI);
            }
            for b in &mut betas {
                *b = PI - *b;
            }
        }
        if !betas.is_empty() {
            let mean: f64 = betas.iter().sum::<f64>() / betas.len() as f64;
            // Anchor: first row lands in [0, π/2); later rows pick the shift
            // whose folded mean is closest to the previous row's.
            let k = match prev_mean {
                None => (mean / FRAC_PI_2).floor(),
                Some(anchor) => ((mean - anchor) / FRAC_PI_2).round(),
            };
            for b in &mut betas {
                *b -= k * FRAC_PI_2;
            }
            prev_mean = Some(betas.iter().sum::<f64>() / betas.len() as f64);
        }
        gammas.extend(betas);
        out.push(gammas);
    }
    out
}

/// `true` if the packed vector already lies in the canonical domain.
#[must_use]
pub fn is_canonical(params: &[f64]) -> bool {
    let p = params.len() / 2;
    let gammas_ok = params[..p]
        .iter()
        .all(|g| (0.0..TWO_PI).contains(g));
    let betas_ok = params[p..].iter().all(|b| (0.0..FRAC_PI_2).contains(b));
    let conj_ok = params.first().is_none_or(|&g1| g1 <= PI);
    gammas_ok && betas_ok && conj_ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MaxCutProblem, QaoaAnsatz};
    use graphs::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn folding_lands_in_domain() {
        let mut g = vec![7.0, -1.0, 100.0];
        let mut b = vec![3.0, -0.2, 9.9];
        canonicalize(&mut g, &mut b);
        assert!(is_canonical(
            &g.iter().chain(&b).copied().collect::<Vec<_>>()
        ));
    }

    #[test]
    fn canonical_image_preserves_expectation() {
        // The whole point: folding must not change ⟨C⟩ on unweighted graphs.
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..6 {
            let graph = generators::erdos_renyi_nonempty(6, 0.5, &mut rng);
            let problem = MaxCutProblem::new(&graph).unwrap();
            for p in 1..=3 {
                let ansatz = QaoaAnsatz::new(problem.clone(), p).unwrap();
                let params: Vec<f64> = (0..2 * p)
                    .map(|i| {
                        if i < p {
                            rng.gen_range(0.0..crate::GAMMA_MAX)
                        } else {
                            rng.gen_range(0.0..crate::BETA_MAX)
                        }
                    })
                    .collect();
                let folded = canonicalize_packed(&params);
                let e0 = ansatz.expectation(&params).unwrap();
                let e1 = ansatz.expectation(&folded).unwrap();
                assert!(
                    (e0 - e1).abs() < 1e-9,
                    "p={p}: {e0} vs {e1} for {params:?} -> {folded:?}"
                );
            }
        }
    }

    #[test]
    fn per_layer_beta_shift_is_a_symmetry() {
        // β₂ → β₂ + π/2 alone (middle layer) leaves ⟨C⟩ unchanged.
        let mut rng = StdRng::seed_from_u64(4);
        let graph = generators::erdos_renyi_nonempty(5, 0.6, &mut rng);
        let ansatz = QaoaAnsatz::new(MaxCutProblem::new(&graph).unwrap(), 3).unwrap();
        let params = [0.7, 1.2, 2.0, 0.3, 0.9, 0.2];
        let mut shifted = params;
        shifted[4] += FRAC_PI_2;
        let e0 = ansatz.expectation(&params).unwrap();
        let e1 = ansatz.expectation(&shifted).unwrap();
        assert!((e0 - e1).abs() < 1e-9);
    }

    #[test]
    fn idempotent() {
        let params = [5.0, 1.0, 2.8, 0.1];
        let once = canonicalize_packed(&params);
        let twice = canonicalize_packed(&once);
        for (a, b) in once.iter().zip(&twice) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(is_canonical(&once));
    }

    #[test]
    fn symmetric_pairs_fold_to_same_point() {
        let params = [1.0, 2.5, 0.3, 0.4];
        // Image under conjugation + assorted β shifts.
        let image = [
            TWO_PI - 1.0,
            TWO_PI - 2.5,
            (FRAC_PI_2 - 0.3) + FRAC_PI_2,
            (FRAC_PI_2 - 0.4) + 3.0 * FRAC_PI_2,
        ];
        let a = canonicalize_packed(&params);
        let b = canonicalize_packed(&image);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn empty_is_fine() {
        let out = canonicalize_packed(&[]);
        assert!(out.is_empty());
        assert!(is_canonical(&[]));
    }
}

#[cfg(test)]
mod display_fold_tests {
    use super::*;
    use crate::{MaxCutProblem, QaoaAnsatz};
    use graphs::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn display_fold_preserves_expectation() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = generators::erdos_renyi_nonempty(5, 0.5, &mut rng);
        let ansatz = QaoaAnsatz::new(MaxCutProblem::new(&g).unwrap(), 2).unwrap();
        for _ in 0..10 {
            let params = [
                rng.gen_range(0.0..crate::GAMMA_MAX),
                rng.gen_range(0.0..crate::GAMMA_MAX),
                rng.gen_range(0.0..crate::BETA_MAX),
                rng.gen_range(0.0..crate::BETA_MAX),
            ];
            let folded = display_fold(&params);
            let e0 = ansatz.expectation(&params).unwrap();
            let e1 = ansatz.expectation(&folded).unwrap();
            assert!((e0 - e1).abs() < 1e-9, "{params:?} -> {folded:?}");
        }
    }

    #[test]
    fn display_fold_identity_when_gamma1_small() {
        let params = [1.0, 2.0, 0.5, 0.6];
        assert_eq!(display_fold(&params), params.to_vec());
    }

    #[test]
    fn display_fold_lands_in_first_image() {
        let params = [5.0, 6.0, 2.5, 3.0];
        let folded = display_fold(&params);
        assert!(folded[0] <= PI);
        // Exact mirror of every coordinate.
        assert!((folded[0] - (TWO_PI - 5.0)).abs() < 1e-12);
        assert!((folded[2] - (PI - 2.5)).abs() < 1e-12);
    }
}
