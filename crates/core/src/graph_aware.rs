//! Graph-aware parameter prediction (extension).
//!
//! The paper's predictor sees only `(γ₁OPT(1), β₁OPT(1), pt)` — nothing
//! about the problem graph itself. That is fine inside one ensemble (all
//! its graphs look statistically alike) but is exactly what should fail
//! when the test graph comes from a different family. This module augments
//! the feature vector with the nine structural graph features of
//! [`graphs::stats::feature_vector`] (size, density, degree statistics,
//! triangles, clustering), so the model can condition its prediction on
//! *what kind of graph* it is initializing. The `generalization_study`
//! benchmark compares the two predictors across graph families.

use graphs::{stats, Graph};
use linalg::Matrix;
use ml::{ModelKind, Regressor};
use optimize::{Optimizer, Options};
use rand::Rng;

use crate::datagen::ParameterDataset;
use crate::features::{ParamKind, StageTable};
use crate::predictor::drop_target_outliers;
use crate::{MaxCutProblem, QaoaError, QaoaInstance, TwoLevelOutcome, BETA_MAX, GAMMA_MAX};

/// Builds the graph-aware feature vector:
/// `[γ₁(1), β₁(1), pt]` followed by the 9 structural features.
#[must_use]
pub fn graph_aware_features(
    gamma1_p1: f64,
    beta1_p1: f64,
    target_depth: usize,
    graph: &Graph,
) -> Vec<f64> {
    let mut f = vec![gamma1_p1, beta1_p1, target_depth as f64];
    f.extend(stats::feature_vector(graph));
    f
}

/// Extracts per-stage training tables with graph-aware features.
///
/// # Errors
///
/// Returns [`QaoaError::Parse`] if some graph lacks a depth-1 record.
pub fn graph_aware_tables(dataset: &ParameterDataset) -> Result<Vec<StageTable>, QaoaError> {
    let base: Vec<(f64, f64)> = (0..dataset.graphs().len())
        .map(|g| {
            dataset
                .record(g, 1)
                .map(|r| (r.gammas[0], r.betas[0]))
                .ok_or_else(|| QaoaError::Parse {
                    line: 0,
                    message: format!("graph {g} lacks a depth-1 record"),
                })
        })
        .collect::<Result<_, _>>()?;
    let graph_feats: Vec<Vec<f64>> = dataset.graphs().iter().map(stats::feature_vector).collect();

    let mut tables = Vec::new();
    for kind in ParamKind::BOTH {
        for stage in 1..=dataset.max_depth() {
            let mut rows: Vec<Vec<f64>> = Vec::new();
            let mut y = Vec::new();
            for r in dataset.records() {
                if r.depth < stage {
                    continue;
                }
                let (g1, b1) = base[r.graph_id];
                let mut row = vec![g1, b1, r.depth as f64];
                row.extend(graph_feats[r.graph_id].iter().copied());
                rows.push(row);
                y.push(match kind {
                    ParamKind::Gamma => r.gammas[stage - 1],
                    ParamKind::Beta => r.betas[stage - 1],
                });
            }
            if rows.is_empty() {
                continue;
            }
            let x = Matrix::from_rows(&rows).map_err(|e| QaoaError::Parse {
                line: 0,
                message: format!("graph-aware feature table: {e}"),
            })?;
            tables.push(StageTable { kind, stage, x, y });
        }
    }
    Ok(tables)
}

/// A parameter predictor whose features include graph structure.
///
/// # Example
///
/// ```no_run
/// use graphs::generators;
/// use ml::ModelKind;
/// use qaoa::datagen::{DataGenConfig, ParameterDataset};
/// use qaoa::graph_aware::GraphAwarePredictor;
/// # fn main() -> Result<(), qaoa::QaoaError> {
/// let corpus = ParameterDataset::generate(&DataGenConfig::quick())?;
/// let predictor = GraphAwarePredictor::train(ModelKind::Gpr, &corpus)?;
/// let graph = generators::cycle(6);
/// let init = predictor.predict(1.2, 0.6, 3, &graph)?;
/// assert_eq!(init.len(), 6);
/// # Ok(())
/// # }
/// ```
pub struct GraphAwarePredictor {
    kind: ModelKind,
    max_depth: usize,
    gamma_models: Vec<Box<dyn Regressor>>,
    beta_models: Vec<Box<dyn Regressor>>,
}

impl GraphAwarePredictor {
    /// Trains one regression per response stage on graph-aware features.
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction and model-fitting errors.
    pub fn train(kind: ModelKind, dataset: &ParameterDataset) -> Result<Self, QaoaError> {
        let tables = graph_aware_tables(dataset)?;
        let mut gamma_models: Vec<Box<dyn Regressor>> = Vec::new();
        let mut beta_models: Vec<Box<dyn Regressor>> = Vec::new();
        let mut trained_depth = 0usize;
        for t in tables {
            let (x, y) = drop_target_outliers(&t.x, &t.y);
            let mut model = kind.build();
            model.fit(&x, &y)?;
            match t.kind {
                ParamKind::Gamma => gamma_models.push(model),
                ParamKind::Beta => beta_models.push(model),
            }
            trained_depth = trained_depth.max(t.stage);
        }
        if gamma_models.is_empty() || gamma_models.len() != beta_models.len() {
            return Err(QaoaError::Parse {
                line: 0,
                message: "corpus produced no usable graph-aware tables".into(),
            });
        }
        Ok(Self {
            kind,
            max_depth: dataset.max_depth().min(trained_depth),
            gamma_models,
            beta_models,
        })
    }

    /// The model family behind every stage regression.
    #[must_use]
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Deepest target depth this predictor can initialize.
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Predicts packed initial parameters `[γ₁…γ_pt, β₁…β_pt]` for `graph`,
    /// clamped into the paper's domain.
    ///
    /// # Errors
    ///
    /// * [`QaoaError::InvalidDepth`] outside `1..=max_depth()`.
    /// * Model prediction errors.
    pub fn predict(
        &self,
        gamma1_p1: f64,
        beta1_p1: f64,
        target_depth: usize,
        graph: &Graph,
    ) -> Result<Vec<f64>, QaoaError> {
        if target_depth == 0 || target_depth > self.max_depth {
            return Err(QaoaError::InvalidDepth {
                depth: target_depth,
            });
        }
        let features = graph_aware_features(gamma1_p1, beta1_p1, target_depth, graph);
        let mut params = Vec::with_capacity(2 * target_depth);
        for i in 0..target_depth {
            params.push(
                self.gamma_models[i]
                    .predict(&features)?
                    .clamp(0.0, GAMMA_MAX),
            );
        }
        for i in 0..target_depth {
            params.push(self.beta_models[i].predict(&features)?.clamp(0.0, BETA_MAX));
        }
        Ok(params)
    }

    /// Runs the two-level flow with graph-aware prediction (level-1 random
    /// optimization → graph-aware init → level-2 optimization).
    ///
    /// # Errors
    ///
    /// Depth, instance and optimizer errors from either level.
    pub fn run_two_level<R: Rng + ?Sized>(
        &self,
        problem: &MaxCutProblem,
        target_depth: usize,
        optimizer: &dyn Optimizer,
        options: &Options,
        rng: &mut R,
    ) -> Result<TwoLevelOutcome, QaoaError> {
        let level1 = QaoaInstance::new(problem.clone(), 1)?;
        let l1 = level1.optimize_multistart(optimizer, 1, rng, options)?;
        let l1_canon = crate::canonical::canonicalize_packed(&l1.params);
        let init = self.predict(l1_canon[0], l1_canon[1], target_depth, problem.graph())?;

        let level2 = QaoaInstance::new(problem.clone(), target_depth)?;
        let l2 = level2.optimize(optimizer, &init, options)?;
        Ok(TwoLevelOutcome {
            params: l2.params,
            expectation: l2.expectation,
            approximation_ratio: l2.approximation_ratio,
            level1_calls: l1.function_calls,
            intermediate_calls: 0,
            level2_calls: l2.function_calls,
            gradient_calls: l1.gradient_calls + l2.gradient_calls,
            predicted_init: init,
        })
    }
}

impl std::fmt::Debug for GraphAwarePredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphAwarePredictor")
            .field("kind", &self.kind)
            .field("max_depth", &self.max_depth)
            .field("n_features", &12usize)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::DataGenConfig;
    use graphs::generators;
    use optimize::Lbfgsb;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_dataset() -> ParameterDataset {
        ParameterDataset::generate(&DataGenConfig {
            n_graphs: 6,
            n_nodes: 5,
            edge_probability: 0.6,
            max_depth: 3,
            restarts: 3,
            seed: 5,
            options: Options::default(),
            trend_preference_margin: 1e-3,
        })
        .expect("corpus")
    }

    #[test]
    fn features_have_twelve_entries() {
        let g = generators::cycle(6);
        let f = graph_aware_features(1.0, 0.5, 3, &g);
        assert_eq!(f.len(), 12);
        assert_eq!(&f[..3], &[1.0, 0.5, 3.0]);
        assert_eq!(f[3], 6.0); // n
    }

    #[test]
    fn tables_match_plain_tables_row_counts() {
        let ds = tiny_dataset();
        let plain = crate::features::two_level_tables(&ds).unwrap();
        let aware = graph_aware_tables(&ds).unwrap();
        assert_eq!(plain.len(), aware.len());
        for (p, a) in plain.iter().zip(&aware) {
            assert_eq!(p.x.rows(), a.x.rows());
            assert_eq!(p.x.cols() + 9, a.x.cols());
            assert_eq!(p.y, a.y);
        }
    }

    #[test]
    fn train_predict_in_domain() {
        let ds = tiny_dataset();
        let predictor = GraphAwarePredictor::train(ModelKind::Linear, &ds).unwrap();
        assert_eq!(predictor.kind(), ModelKind::Linear);
        let g = generators::cycle(5);
        let init = predictor.predict(1.0, 0.4, 3, &g).unwrap();
        assert_eq!(init.len(), 6);
        for (i, v) in init.iter().enumerate() {
            let max = if i < 3 { GAMMA_MAX } else { BETA_MAX };
            assert!((0.0..=max).contains(v), "param {i} = {v}");
        }
        assert!(matches!(
            predictor.predict(1.0, 0.4, 9, &g),
            Err(QaoaError::InvalidDepth { .. })
        ));
        assert!(matches!(
            predictor.predict(1.0, 0.4, 0, &g),
            Err(QaoaError::InvalidDepth { .. })
        ));
    }

    #[test]
    fn two_level_run_works_end_to_end() {
        let ds = tiny_dataset();
        let predictor = GraphAwarePredictor::train(ModelKind::Linear, &ds).unwrap();
        let problem = MaxCutProblem::new(&generators::cycle(5)).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let out = predictor
            .run_two_level(
                &problem,
                2,
                &Lbfgsb::default(),
                &Options::default(),
                &mut rng,
            )
            .unwrap();
        assert_eq!(out.params.len(), 4);
        assert!(out.level1_calls > 0 && out.level2_calls > 0);
        assert!(out.approximation_ratio > 0.6);
    }

    #[test]
    fn debug_formats() {
        let ds = tiny_dataset();
        let predictor = GraphAwarePredictor::train(ModelKind::Linear, &ds).unwrap();
        let s = format!("{predictor:?}");
        assert!(s.contains("GraphAwarePredictor"));
        assert!(s.contains("max_depth"));
    }
}
