//! Non-ML parameter-initialization heuristics that compete with the
//! ML predictor.
//!
//! The paper's reference list contains the two canonical heuristics of
//! Zhou et al. (arXiv:1812.01041, the paper's \[5\]): **INTERP**, which
//! linearly interpolates a depth-`p` optimum into a depth-`p+1` start, and
//! **FOURIER**, which optimizes a small number of Fourier coefficients of
//! the parameter schedules instead of the raw angles. Together with the
//! adiabatic-inspired **linear ramp** (TQA) start, they are the strongest
//! non-learned baselines for the paper's headline claim, so the
//! `baseline_compare` benchmark binary pits all three against the two-level
//! ML flow on identical function-call accounting.
//!
//! Parameter vectors use the crate's packed layout `[γ₁…γ_p, β₁…β_p]`.

use optimize::{Optimizer, Options};
use rand::Rng;

use crate::{parameter_bounds, MaxCutProblem, QaoaError, QaoaInstance, BETA_MAX, GAMMA_MAX};

/// Linear-ramp (trotterized-quantum-annealing) initialization.
///
/// Stage `i` of `p` gets `γᵢ = Δ·fᵢ` and `βᵢ = Δ·(1−fᵢ)` with the midpoint
/// schedule `fᵢ = (i − ½)/p` and time step `Δ = total_time / p` — γ ramps
/// up while β ramps down, the trend the paper observes in its Fig. 2.
///
/// # Errors
///
/// [`QaoaError::InvalidDepth`] for `depth == 0`.
///
/// # Example
///
/// ```
/// let init = qaoa::warmstart::linear_ramp(3, 2.25)?;
/// assert_eq!(init.len(), 6);
/// // γ increases, β decreases between stages.
/// assert!(init[0] < init[1] && init[1] < init[2]);
/// assert!(init[3] > init[4] && init[4] > init[5]);
/// # Ok::<(), qaoa::QaoaError>(())
/// ```
pub fn linear_ramp(depth: usize, total_time: f64) -> Result<Vec<f64>, QaoaError> {
    if depth == 0 {
        return Err(QaoaError::InvalidDepth { depth });
    }
    let p = depth as f64;
    let dt = total_time / p;
    let mut params = vec![0.0; 2 * depth];
    for i in 0..depth {
        let f = (i as f64 + 0.5) / p;
        params[i] = (dt * f).clamp(0.0, GAMMA_MAX);
        params[depth + i] = (dt * (1.0 - f)).clamp(0.0, BETA_MAX);
    }
    Ok(params)
}

/// One INTERP step (Zhou et al., eq. 8): maps a depth-`p` optimum to a
/// depth-`p+1` starting point by linear interpolation,
/// `θ'ᵢ = ((i−1)/p)·θᵢ₋₁ + ((p−i+1)/p)·θᵢ` for `i = 1…p+1` with `θ₀ = θ_{p+1} = 0`.
///
/// Applied independently to the γ and β halves of the packed vector. Since
/// each output is a convex combination of in-domain values, the result
/// stays inside the paper's parameter box.
///
/// # Errors
///
/// [`QaoaError::ParameterCount`] for an odd-length (non-packed) input, and
/// [`QaoaError::InvalidDepth`] for an empty one.
///
/// # Example
///
/// ```
/// // A depth-1 optimum spreads into a depth-2 ramp.
/// let next = qaoa::warmstart::interp_step(&[1.0, 0.5])?;
/// assert_eq!(next, vec![1.0, 1.0, 0.5, 0.5]);
/// # Ok::<(), qaoa::QaoaError>(())
/// ```
pub fn interp_step(packed: &[f64]) -> Result<Vec<f64>, QaoaError> {
    if packed.is_empty() {
        return Err(QaoaError::InvalidDepth { depth: 0 });
    }
    if !packed.len().is_multiple_of(2) {
        return Err(QaoaError::ParameterCount {
            expected: packed.len() + 1,
            actual: packed.len(),
        });
    }
    let p = packed.len() / 2;
    let interp_half = |theta: &[f64]| -> Vec<f64> {
        let mut out = Vec::with_capacity(p + 1);
        for i in 1..=(p + 1) {
            let prev = if i >= 2 { theta[i - 2] } else { 0.0 };
            let curr = if i <= p { theta[i - 1] } else { 0.0 };
            let w = (i - 1) as f64 / p as f64;
            out.push(w * prev + (1.0 - w) * curr);
        }
        out
    };
    let mut next = interp_half(&packed[..p]);
    next.extend(interp_half(&packed[p..]));
    Ok(next)
}

/// The Fourier parameterization of Zhou et al.: `2q` coefficients
/// `(u, v)` generate a depth-`p` schedule
/// `γᵢ = Σₖ uₖ sin((k−½)(i−½)π/p)`, `βᵢ = Σₖ vₖ cos((k−½)(i−½)π/p)`.
///
/// Outputs are clamped into the paper's box `γ ∈ [0, 2π], β ∈ [0, π]` so
/// they are always valid circuit parameters.
///
/// # Panics
///
/// Panics if `u.len() != v.len()` or `depth == 0` (programmer error in the
/// flow below; public callers go through [`FourierFlow`]).
#[must_use]
pub fn fourier_to_params(u: &[f64], v: &[f64], depth: usize) -> Vec<f64> {
    assert_eq!(u.len(), v.len(), "u and v must have equal length");
    assert!(depth > 0, "depth must be positive");
    let p = depth as f64;
    let mut params = vec![0.0; 2 * depth];
    for i in 0..depth {
        let phase = (i as f64 + 0.5) * std::f64::consts::PI / p;
        let mut gamma = 0.0;
        let mut beta = 0.0;
        for (k, (&uk, &vk)) in u.iter().zip(v).enumerate() {
            let freq = (k as f64 + 0.5) * phase;
            gamma += uk * freq.sin();
            beta += vk * freq.cos();
        }
        params[i] = gamma.clamp(0.0, GAMMA_MAX);
        params[depth + i] = beta.clamp(0.0, BETA_MAX);
    }
    params
}

/// Outcome of a warm-start flow run, with the same cost accounting as
/// [`TwoLevelOutcome`](crate::TwoLevelOutcome): `total_calls` is the sum of
/// every objective evaluation across all depths.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStartOutcome {
    /// Final parameters at the target depth (packed `[γ…, β…]`).
    pub params: Vec<f64>,
    /// Final expectation `⟨C⟩`.
    pub expectation: f64,
    /// Final approximation ratio.
    pub approximation_ratio: f64,
    /// Function calls per optimized depth, in depth order.
    pub calls_per_depth: Vec<usize>,
}

impl WarmStartOutcome {
    /// Total function calls — the paper's run-time cost metric.
    #[must_use]
    pub fn total_calls(&self) -> usize {
        self.calls_per_depth.iter().sum()
    }
}

/// The INTERP incremental flow: optimize `p = 1` from random init, then for
/// each depth `2…pt` start from the [`interp_step`] of the previous optimum
/// and re-optimize.
///
/// # Example
///
/// ```no_run
/// use graphs::generators;
/// use optimize::Lbfgsb;
/// use qaoa::warmstart::InterpFlow;
/// use qaoa::MaxCutProblem;
/// use rand::SeedableRng;
/// # fn main() -> Result<(), qaoa::QaoaError> {
/// let problem = MaxCutProblem::new(&generators::cycle(6))?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let out = InterpFlow::default().run(&problem, 3, &Lbfgsb::default(), &mut rng)?;
/// assert_eq!(out.calls_per_depth.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct InterpFlow {
    /// Optimizer options used at every depth (paper: ftol 1e-6).
    pub options: Options,
}

impl InterpFlow {
    /// Runs the flow up to `target_depth`.
    ///
    /// # Errors
    ///
    /// * [`QaoaError::InvalidDepth`] for `target_depth == 0`.
    /// * Instance/optimizer errors from any depth.
    pub fn run<R: Rng + ?Sized>(
        &self,
        problem: &MaxCutProblem,
        target_depth: usize,
        optimizer: &dyn Optimizer,
        rng: &mut R,
    ) -> Result<WarmStartOutcome, QaoaError> {
        if target_depth == 0 {
            return Err(QaoaError::InvalidDepth { depth: 0 });
        }
        let mut calls = Vec::with_capacity(target_depth);

        // Depth 1 from a random start, as in the paper's level 1.
        let level1 = QaoaInstance::new(problem.clone(), 1)?;
        let bounds1 = parameter_bounds(1)?;
        let start = bounds1.sample(rng);
        let mut best = level1.optimize(optimizer, &start, &self.options)?;
        calls.push(best.function_calls);

        for depth in 2..=target_depth {
            let init = interp_step(&best.params)?;
            let instance = QaoaInstance::new(problem.clone(), depth)?;
            best = instance.optimize(optimizer, &init, &self.options)?;
            calls.push(best.function_calls);
        }

        Ok(WarmStartOutcome {
            params: best.params,
            expectation: best.expectation,
            approximation_ratio: best.approximation_ratio,
            calls_per_depth: calls,
        })
    }
}

/// The FOURIER incremental flow: optimize `2q` Fourier coefficients of the
/// parameter schedule at each depth `1…pt`, warm-starting each depth from
/// the previous depth's coefficients (new coefficients enter at zero).
///
/// `q` grows with depth up to [`FourierFlow::max_terms`] — `q = min(p, max_terms)` —
/// matching the truncated `FOURIER[q]` strategy of Zhou et al.
#[derive(Debug, Clone)]
pub struct FourierFlow {
    /// Cap on the number of Fourier terms per schedule.
    pub max_terms: usize,
    /// Optimizer options used at every depth.
    pub options: Options,
}

impl Default for FourierFlow {
    fn default() -> Self {
        Self {
            max_terms: 4,
            options: Options::default(),
        }
    }
}

impl FourierFlow {
    /// Runs the flow up to `target_depth`.
    ///
    /// # Errors
    ///
    /// * [`QaoaError::InvalidDepth`] for `target_depth == 0` or a zero
    ///   `max_terms`.
    /// * Instance/optimizer errors from any depth.
    pub fn run<R: Rng + ?Sized>(
        &self,
        problem: &MaxCutProblem,
        target_depth: usize,
        optimizer: &dyn Optimizer,
        rng: &mut R,
    ) -> Result<WarmStartOutcome, QaoaError> {
        if target_depth == 0 || self.max_terms == 0 {
            return Err(QaoaError::InvalidDepth { depth: 0 });
        }
        let mut calls = Vec::with_capacity(target_depth);
        // Coefficient state carried across depths.
        let mut u: Vec<f64> = Vec::new();
        let mut v: Vec<f64> = Vec::new();
        let mut final_outcome = None;

        for depth in 1..=target_depth {
            let q = depth.min(self.max_terms);
            u.resize(q, 0.0);
            v.resize(q, 0.0);
            if depth == 1 {
                // Random first start inside a modest coefficient range.
                u[0] = rng.gen_range(0.0..1.0);
                v[0] = rng.gen_range(0.0..1.0);
            }

            let instance = QaoaInstance::new(problem.clone(), depth)?;
            let ansatz = instance.ansatz();
            let objective = |x: &[f64]| {
                let (cu, cv) = x.split_at(q);
                let params = fourier_to_params(cu, cv, depth);
                -ansatz
                    .expectation(&params)
                    .expect("clamped parameters always evaluate")
            };
            // Generous symmetric coefficient box; the schedule itself is
            // clamped into the paper's domain by `fourier_to_params`.
            let bounds =
                optimize::Bounds::uniform(2 * q, -std::f64::consts::PI, std::f64::consts::PI)?;
            let start: Vec<f64> = u.iter().chain(v.iter()).copied().collect();
            let result = optimizer.minimize(&objective, &start, &bounds, &self.options)?;
            calls.push(result.n_calls);

            u.copy_from_slice(&result.x[..q]);
            v.copy_from_slice(&result.x[q..]);
            let params = fourier_to_params(&u, &v, depth);
            let expectation = -result.fx;
            final_outcome = Some(WarmStartOutcome {
                approximation_ratio: problem.approximation_ratio(expectation),
                params,
                expectation,
                calls_per_depth: calls.clone(),
            });
        }

        Ok(final_outcome.expect("target_depth >= 1 guarantees an outcome"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use optimize::{Lbfgsb, NelderMead};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_ramp_monotone_and_bounded() {
        let init = linear_ramp(5, 3.75).unwrap();
        assert_eq!(init.len(), 10);
        for i in 0..4 {
            assert!(init[i] < init[i + 1], "gamma must ramp up");
            assert!(init[5 + i] > init[5 + i + 1], "beta must ramp down");
        }
        for i in 0..5 {
            assert!((0.0..=GAMMA_MAX).contains(&init[i]));
            assert!((0.0..=BETA_MAX).contains(&init[5 + i]));
        }
        assert!(matches!(
            linear_ramp(0, 1.0),
            Err(QaoaError::InvalidDepth { .. })
        ));
    }

    #[test]
    fn interp_step_depth1_to_2() {
        // p = 1: θ'₁ = θ₁, θ'₂ = θ₁ (w = 0 then w = 1).
        let next = interp_step(&[1.2, 0.4]).unwrap();
        assert_eq!(next, vec![1.2, 1.2, 0.4, 0.4]);
    }

    #[test]
    fn interp_step_preserves_linear_schedules() {
        // A linear ramp is a fixed point family of INTERP: interpolating a
        // linear schedule yields a linear schedule at the next depth.
        let p = 4;
        let packed: Vec<f64> = (1..=p)
            .map(|i| i as f64 / p as f64)
            .chain((1..=p).map(|i| 1.0 - i as f64 / p as f64))
            .collect();
        let next = interp_step(&packed).unwrap();
        assert_eq!(next.len(), 2 * (p + 1));
        // γ half still (weakly) increasing, β half decreasing.
        for i in 0..p {
            assert!(next[i] <= next[i + 1] + 1e-12);
            assert!(next[p + 1 + i] + 1e-12 >= next[p + 1 + i + 1]);
        }
    }

    #[test]
    fn interp_step_rejects_bad_shapes() {
        assert!(matches!(
            interp_step(&[]),
            Err(QaoaError::InvalidDepth { .. })
        ));
        assert!(matches!(
            interp_step(&[1.0, 2.0, 3.0]),
            Err(QaoaError::ParameterCount { .. })
        ));
    }

    #[test]
    fn fourier_single_term_shapes() {
        // One sine term: γ strictly increasing over stages; one cosine term:
        // β strictly decreasing.
        let params = fourier_to_params(&[0.8], &[0.6], 4);
        for i in 0..3 {
            assert!(params[i] < params[i + 1]);
            assert!(params[4 + i] > params[4 + i + 1]);
        }
        // Clamping keeps everything in the box even for huge coefficients.
        let big = fourier_to_params(&[100.0], &[-100.0], 3);
        for i in 0..3 {
            assert!((0.0..=GAMMA_MAX).contains(&big[i]));
            assert!((0.0..=BETA_MAX).contains(&big[3 + i]));
        }
    }

    #[test]
    fn interp_flow_reaches_good_ratio() {
        let problem = MaxCutProblem::new(&generators::cycle(6)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let out = InterpFlow::default()
            .run(&problem, 3, &Lbfgsb::default(), &mut rng)
            .unwrap();
        assert_eq!(out.calls_per_depth.len(), 3);
        assert!(out.total_calls() > 0);
        assert_eq!(out.params.len(), 6);
        assert!(
            out.approximation_ratio > 0.75,
            "{}",
            out.approximation_ratio
        );
        assert!(matches!(
            InterpFlow::default().run(&problem, 0, &Lbfgsb::default(), &mut rng),
            Err(QaoaError::InvalidDepth { .. })
        ));
    }

    #[test]
    fn fourier_flow_reaches_good_ratio() {
        let problem = MaxCutProblem::new(&generators::cycle(6)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let out = FourierFlow::default()
            .run(&problem, 3, &NelderMead::default(), &mut rng)
            .unwrap();
        assert_eq!(out.calls_per_depth.len(), 3);
        assert_eq!(out.params.len(), 6);
        assert!(
            out.approximation_ratio > 0.75,
            "{}",
            out.approximation_ratio
        );
        assert!(matches!(
            FourierFlow::default().run(&problem, 0, &NelderMead::default(), &mut rng),
            Err(QaoaError::InvalidDepth { .. })
        ));
        let zero_terms = FourierFlow {
            max_terms: 0,
            ..FourierFlow::default()
        };
        assert!(zero_terms
            .run(&problem, 2, &NelderMead::default(), &mut rng)
            .is_err());
    }

    #[test]
    fn deeper_interp_never_much_worse() {
        // AR should not collapse as depth grows (warm starts keep quality).
        let problem = MaxCutProblem::new(
            &generators::random_regular(6, 3, &mut StdRng::seed_from_u64(10)).unwrap(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let shallow = InterpFlow::default()
            .run(&problem, 1, &Lbfgsb::default(), &mut rng)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let deep = InterpFlow::default()
            .run(&problem, 4, &Lbfgsb::default(), &mut rng)
            .unwrap();
        assert!(deep.approximation_ratio >= shallow.approximation_ratio - 0.02);
    }
}
