use qsim::{Circuit, StateVector};

use crate::{EvalContext, MaxCutProblem, QaoaError};

/// The depth-`p` QAOA circuit for a MaxCut problem, with two equivalent
/// execution paths.
///
/// **Gate-level path** ([`QaoaAnsatz::build_circuit`] / Fig. 1(a)): a layer
/// of Hadamards, then per stage a phase-separation layer (per edge:
/// `CNOT(u,v) · RZ_v(−γ·w) · CNOT(u,v)`, the paper's `RZ(−γ)` construction)
/// followed by a mixing layer of `RX(2β)` rotations.
///
/// **Fast diagonal path** ([`QaoaAnsatz::expectation_in`] /
/// [`QaoaAnsatz::state_fast`]): because the cost Hamiltonian is diagonal,
/// `e^{−iγC}` is a per-amplitude phase and only the mixing layer needs gate
/// kernels. This is `O(2ⁿ·(1 + n))` per stage versus `O(2ⁿ·(|E| + n))` for
/// the gate path and is what the optimization loop uses — through a
/// reusable [`EvalContext`] running on the split re/im SoA kernels of
/// `qsim::soa` (autovectorized, cache-blocked, optionally fanned out within
/// one state), which also provides the exact adjoint gradient
/// ([`QaoaAnsatz::expectation_and_grad_in`]). The paths agree to machine
/// precision (see tests and the `qsim_paths` / `eval_hot_path` benches).
///
/// Parameters are laid out `[γ₁…γ_p, β₁…β_p]`, matching
/// [`parameter_bounds`](crate::parameter_bounds).
///
/// # Example
///
/// ```
/// use graphs::generators;
/// use qaoa::{MaxCutProblem, QaoaAnsatz};
/// # fn main() -> Result<(), qaoa::QaoaError> {
/// let problem = MaxCutProblem::new(&generators::cycle(4))?;
/// let ansatz = QaoaAnsatz::new(problem, 1)?;
/// // A single-edge-free sanity point: γ = β = 0 leaves the uniform state,
/// // whose expectation is half the edges.
/// let e = ansatz.expectation(&[0.0, 0.0])?;
/// assert!((e - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QaoaAnsatz {
    problem: MaxCutProblem,
    depth: usize,
}

impl QaoaAnsatz {
    /// Wraps a problem at circuit depth `p ≥ 1`.
    ///
    /// # Errors
    ///
    /// Returns [`QaoaError::InvalidDepth`] for `p = 0`.
    pub fn new(problem: MaxCutProblem, depth: usize) -> Result<Self, QaoaError> {
        if depth == 0 {
            return Err(QaoaError::InvalidDepth { depth });
        }
        Ok(Self { problem, depth })
    }

    /// The wrapped problem.
    #[must_use]
    pub fn problem(&self) -> &MaxCutProblem {
        &self.problem
    }

    /// Circuit depth `p`.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of trainable parameters (`2·p`).
    #[must_use]
    pub fn n_parameters(&self) -> usize {
        2 * self.depth
    }

    fn check_params(&self, params: &[f64]) -> Result<(), QaoaError> {
        if params.len() != self.n_parameters() {
            return Err(QaoaError::ParameterCount {
                expected: self.n_parameters(),
                actual: params.len(),
            });
        }
        Ok(())
    }

    /// Splits a packed parameter vector into `(γs, βs)`.
    ///
    /// # Errors
    ///
    /// Returns [`QaoaError::ParameterCount`] on a length mismatch.
    pub fn split_params<'a>(&self, params: &'a [f64]) -> Result<(&'a [f64], &'a [f64]), QaoaError> {
        self.check_params(params)?;
        Ok(params.split_at(self.depth))
    }

    /// Builds the explicit gate-level circuit of Fig. 1(a).
    ///
    /// # Errors
    ///
    /// Returns [`QaoaError::ParameterCount`] on a length mismatch.
    pub fn build_circuit(&self, params: &[f64]) -> Result<Circuit, QaoaError> {
        let (gammas, betas) = self.split_params(params)?;
        let n = self.problem.n_qubits();
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        for (&gamma, &beta) in gammas.iter().zip(betas) {
            // Phase separation: e^{-iγ w_{uv} C_{uv}} per edge, realized as
            // CNOT · RZ(-γ·w) · CNOT (global phase dropped).
            for e in self.problem.graph().edges() {
                c.cnot(e.u, e.v);
                c.rz(e.v, -gamma * e.weight);
                c.cnot(e.u, e.v);
            }
            // Mixing: e^{-iβ X_q} = RX(2β).
            for q in 0..n {
                c.rx(q, 2.0 * beta);
            }
        }
        Ok(c)
    }

    /// Runs the gate-level circuit and returns the output state.
    ///
    /// # Errors
    ///
    /// Returns [`QaoaError::ParameterCount`] on a length mismatch; simulator
    /// errors cannot occur for circuits built here.
    pub fn state_gate_level(&self, params: &[f64]) -> Result<StateVector, QaoaError> {
        let circuit = self.build_circuit(params)?;
        let state = circuit.run(StateVector::zero_state(self.problem.n_qubits()))?;
        Ok(state)
    }

    /// Produces `|ψ(γ, β)⟩` via the fast diagonal path, as a fresh state.
    ///
    /// Allocates one state vector; the phase-separation layer uses the
    /// fused [`StateVector::apply_phase_from_diag`] kernel (no phase-vector
    /// materialization). The optimization loop avoids even the state
    /// allocation via [`QaoaAnsatz::expectation_in`].
    ///
    /// # Errors
    ///
    /// Returns [`QaoaError::ParameterCount`] on a length mismatch.
    pub fn state_fast(&self, params: &[f64]) -> Result<StateVector, QaoaError> {
        let (gammas, betas) = self.split_params(params)?;
        let diag = self.problem.cost().diagonal();
        let mut state = StateVector::plus_state(self.problem.n_qubits());
        for (&gamma, &beta) in gammas.iter().zip(betas) {
            state.apply_phase_from_diag(diag, gamma)?;
            state.apply_rx_layer(2.0 * beta);
        }
        Ok(state)
    }

    /// The QAOA objective `⟨ψ(γ, β)|C|ψ(γ, β)⟩` — the quantity each
    /// "function call / QC call" of the paper evaluates — computed
    /// allocation-free in the calling thread's cached [`EvalContext`].
    ///
    /// # Errors
    ///
    /// Returns [`QaoaError::ParameterCount`] on a length mismatch.
    pub fn expectation(&self, params: &[f64]) -> Result<f64, QaoaError> {
        crate::eval::with_thread_context(self.problem.n_qubits(), |ctx| {
            self.expectation_in(ctx, params)
        })
    }

    /// The objective evaluated **in** a caller-supplied [`EvalContext`]:
    /// the allocation-free hot entry point of the evaluation pipeline. The
    /// context's buffers are reset in place, so repeated calls are
    /// bit-identical to fresh-state evaluations.
    ///
    /// # Errors
    ///
    /// Returns [`QaoaError::ParameterCount`] on a length mismatch.
    pub fn expectation_in(&self, ctx: &mut EvalContext, params: &[f64]) -> Result<f64, QaoaError> {
        let (gammas, betas) = self.split_params(params)?;
        Ok(ctx.expectation(self.problem.cost(), gammas, betas))
    }

    /// The objective **and its exact gradient** by the adjoint method, in
    /// `O(p·n·2ⁿ)` — roughly the cost of three plain evaluations,
    /// independent of the parameter count (finite differences need `2p + 1`
    /// evaluations). Writes `∂⟨C⟩/∂γ_k` into `grad[k]` and `∂⟨C⟩/∂β_k` into
    /// `grad[p + k]`, returns `⟨C⟩`. Verified against central differences
    /// (see `tests/tests/gradient.rs`).
    ///
    /// # Errors
    ///
    /// Returns [`QaoaError::ParameterCount`] if `params` or `grad` have the
    /// wrong length.
    pub fn expectation_and_grad_in(
        &self,
        ctx: &mut EvalContext,
        params: &[f64],
        grad: &mut [f64],
    ) -> Result<f64, QaoaError> {
        let (gammas, betas) = self.split_params(params)?;
        if grad.len() != self.n_parameters() {
            return Err(QaoaError::ParameterCount {
                expected: self.n_parameters(),
                actual: grad.len(),
            });
        }
        Ok(ctx.expectation_and_grad(self.problem.cost(), gammas, betas, grad))
    }

    /// The objective via the gate-level path (used for cross-validation and
    /// the path-comparison bench).
    ///
    /// # Errors
    ///
    /// Returns [`QaoaError::ParameterCount`] on a length mismatch.
    pub fn expectation_gate_level(&self, params: &[f64]) -> Result<f64, QaoaError> {
        let state = self.state_gate_level(params)?;
        Ok(self.problem.cost().expectation(&state)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{generators, Graph};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const EPS: f64 = 1e-10;

    fn single_edge() -> QaoaAnsatz {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        QaoaAnsatz::new(MaxCutProblem::new(&g).unwrap(), 1).unwrap()
    }

    #[test]
    fn p1_single_edge_closed_form() {
        // For one edge, ⟨C⟩(γ, β) = ½(1 + sin(4β)·sin(γ)) (Farhi et al.).
        let ansatz = single_edge();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..25 {
            let gamma = rng.gen_range(0.0..crate::GAMMA_MAX);
            let beta = rng.gen_range(0.0..crate::BETA_MAX);
            let expect = 0.5 * (1.0 + (4.0 * beta).sin() * gamma.sin());
            let got = ansatz.expectation(&[gamma, beta]).unwrap();
            assert!(
                (got - expect).abs() < EPS,
                "γ={gamma}, β={beta}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn p1_single_edge_optimum_reaches_analytic_max() {
        // Max of ½(1 + sin4β sinγ) is 1 at γ = π/2, β = π/8.
        let ansatz = single_edge();
        let best = ansatz
            .expectation(&[std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_8])
            .unwrap();
        assert!((best - 1.0).abs() < EPS);
    }

    #[test]
    fn fast_and_gate_paths_agree() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..5 {
            let g = generators::erdos_renyi_nonempty(5, 0.5, &mut rng);
            let problem = MaxCutProblem::new(&g).unwrap();
            for p in 1..=3 {
                let ansatz = QaoaAnsatz::new(problem.clone(), p).unwrap();
                let params: Vec<f64> = (0..2 * p)
                    .map(|i| {
                        if i < p {
                            rng.gen_range(0.0..crate::GAMMA_MAX)
                        } else {
                            rng.gen_range(0.0..crate::BETA_MAX)
                        }
                    })
                    .collect();
                let fast = ansatz.expectation(&params).unwrap();
                let gate = ansatz.expectation_gate_level(&params).unwrap();
                assert!((fast - gate).abs() < 1e-9, "p={p}: {fast} vs {gate}");
                // The full states also agree up to global phase.
                let sf = ansatz.state_fast(&params).unwrap();
                let sg = ansatz.state_gate_level(&params).unwrap();
                assert!((sf.fidelity(&sg).unwrap() - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn weighted_edges_respected_by_both_paths() {
        let mut g = Graph::new(3);
        g.add_weighted_edge(0, 1, 2.0).unwrap();
        g.add_weighted_edge(1, 2, 0.5).unwrap();
        let ansatz = QaoaAnsatz::new(MaxCutProblem::new(&g).unwrap(), 2).unwrap();
        let params = [0.7, 1.1, 0.4, 0.9];
        let fast = ansatz.expectation(&params).unwrap();
        let gate = ansatz.expectation_gate_level(&params).unwrap();
        assert!((fast - gate).abs() < 1e-9);
    }

    #[test]
    fn zero_parameters_give_uniform_expectation() {
        // γ = β = 0: state stays |+…+⟩ and ⟨C⟩ = |E|·w̄/2 = m/2 (unweighted).
        let g = generators::complete(4);
        let ansatz = QaoaAnsatz::new(MaxCutProblem::new(&g).unwrap(), 3).unwrap();
        let e = ansatz.expectation(&[0.0; 6]).unwrap();
        assert!((e - 3.0).abs() < EPS); // 6 edges / 2
    }

    #[test]
    fn norm_preserved_through_ansatz() {
        let g = generators::cycle(5);
        let ansatz = QaoaAnsatz::new(MaxCutProblem::new(&g).unwrap(), 4).unwrap();
        let params: Vec<f64> = (0..8).map(|i| 0.3 + 0.1 * i as f64).collect();
        let s = ansatz.state_fast(&params).unwrap();
        assert!((s.norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn parameter_count_enforced() {
        let ansatz = single_edge();
        assert!(matches!(
            ansatz.expectation(&[0.1]),
            Err(QaoaError::ParameterCount {
                expected: 2,
                actual: 1
            })
        ));
        assert!(matches!(
            ansatz.build_circuit(&[0.1, 0.2, 0.3]),
            Err(QaoaError::ParameterCount { .. })
        ));
        assert!(QaoaAnsatz::new(ansatz.problem().clone(), 0).is_err());
    }

    #[test]
    fn circuit_structure_matches_paper() {
        // p=1 on a single edge: 2 H + 2 CNOT + 1 RZ + 2 RX = 7 gates.
        let ansatz = single_edge();
        let c = ansatz.build_circuit(&[0.5, 0.5]).unwrap();
        assert_eq!(c.len(), 7);
        assert_eq!(c.two_qubit_count(), 2);
        assert!(c.validate().is_ok());
    }
}
