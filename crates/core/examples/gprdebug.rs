use ml::{GprModel, Regressor};
use qaoa::datagen::ParameterDataset;
use qaoa::features::{two_level_tables, ParamKind};

fn main() {
    let ds = ParameterDataset::load("target/qaoa_corpus_n8_g120_d5_r10_s2020.tsv").unwrap();
    let (train, _test) = ds.split_by_graph(0.2);
    let tables = two_level_tables(&train).unwrap();
    let t = tables
        .iter()
        .find(|t| t.kind == ParamKind::Gamma && t.stage == 2)
        .unwrap();
    let mut sorted = t.y.clone();
    sorted.sort_by(f64::total_cmp);
    println!(
        "γ2 train targets sorted: {:?}",
        sorted
            .iter()
            .map(|v| (v * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    let mut m = GprModel::default();
    m.fit(&t.x, &t.y).unwrap();
    // in-sample fit
    let preds = m.predict_batch(&t.x).unwrap();
    println!(
        "in-sample mse: {:.4}",
        ml::metrics::mse(&t.y, &preds).unwrap()
    );
}
