//! Failure injection: objectives that misbehave mid-run (NaN walls,
//! discontinuities, call-budget starvation) must terminate gracefully with
//! the best finite iterate, never panic, and never blow the call cap by
//! more than one iteration's worth of evaluations.

use std::cell::Cell;

use optimize::{all_optimizers, Bounds, Options, Termination};

/// A quadratic that turns into NaN after `budget` evaluations.
fn nan_after(budget: usize) -> impl Fn(&[f64]) -> f64 {
    let calls = Cell::new(0usize);
    move |x: &[f64]| {
        calls.set(calls.get() + 1);
        if calls.get() > budget {
            f64::NAN
        } else {
            x.iter().map(|v| v * v).sum()
        }
    }
}

#[test]
fn nan_wall_mid_run_terminates_gracefully() {
    let bounds = Bounds::uniform(3, -2.0, 2.0).expect("valid bounds");
    for optimizer in all_optimizers() {
        let f = nan_after(12);
        let result = optimizer
            .minimize(&f, &[1.5, -1.0, 0.5], &bounds, &Options::default())
            .unwrap_or_else(|e| panic!("{} errored: {e}", optimizer.name()));
        // The returned point must be finite and within bounds.
        assert!(
            result.fx.is_finite(),
            "{} returned non-finite best value",
            optimizer.name()
        );
        assert!(
            bounds.contains(&result.x),
            "{} left the box",
            optimizer.name()
        );
    }
}

#[test]
fn nan_region_inside_box_avoided() {
    // NaN for x0 > 1: optimizers starting at 0.5 and pulled toward the
    // minimum at (-1, 0) should never return a NaN-region point.
    let f = |x: &[f64]| {
        if x[0] > 1.0 {
            f64::NAN
        } else {
            (x[0] + 1.0).powi(2) + x[1] * x[1]
        }
    };
    let bounds = Bounds::uniform(2, -2.0, 2.0).expect("valid bounds");
    for optimizer in all_optimizers() {
        let result = optimizer
            .minimize(&f, &[0.5, 0.5], &bounds, &Options::default())
            .unwrap_or_else(|e| panic!("{} errored: {e}", optimizer.name()));
        assert!(result.fx.is_finite(), "{}", optimizer.name());
        assert!(
            result.fx < 0.5,
            "{} made no progress: {}",
            optimizer.name(),
            result.fx
        );
    }
}

#[test]
fn call_budget_starvation_respected() {
    // With max_calls = 5 no optimizer may consume wildly more than the
    // budget plus one iteration's overhead.
    let bounds = Bounds::uniform(4, -5.0, 5.0).expect("valid bounds");
    let options = Options::default()
        .with_max_calls(5)
        .with_ftol(0.0)
        .with_gtol(0.0);
    for optimizer in all_optimizers() {
        let counter = Cell::new(0usize);
        let f = |x: &[f64]| {
            counter.set(counter.get() + 1);
            x.iter().map(|v| v * v).sum::<f64>()
        };
        let result = optimizer
            .minimize(&f, &[4.0, -4.0, 3.0, 2.0], &bounds, &options)
            .unwrap_or_else(|e| panic!("{} errored: {e}", optimizer.name()));
        // One iteration can cost up to ~(n + line search) calls beyond the cap.
        assert!(
            counter.get() <= 5 + 30,
            "{} used {} calls against a budget of 5",
            optimizer.name(),
            counter.get()
        );
        assert_eq!(
            result.n_calls,
            counter.get(),
            "{} miscounted",
            optimizer.name()
        );
    }
}

#[test]
fn discontinuous_step_function_handled() {
    // A staircase objective breaks gradients; gradient-free methods must
    // still descend and gradient-based methods must not panic.
    let f = |x: &[f64]| (x[0] * 4.0).floor() + (x[1] * 4.0).floor();
    let bounds = Bounds::uniform(2, 0.0, 1.0).expect("valid bounds");
    for optimizer in all_optimizers() {
        let result = optimizer
            .minimize(&f, &[0.9, 0.9], &bounds, &Options::default())
            .unwrap_or_else(|e| panic!("{} errored: {e}", optimizer.name()));
        assert!(result.fx.is_finite());
        assert!(bounds.contains(&result.x));
    }
}

#[test]
fn degenerate_single_point_box() {
    // lower == upper everywhere: the only feasible point is the start.
    let bounds = Bounds::new(vec![0.5, -1.0], vec![0.5, -1.0]).expect("valid bounds");
    for optimizer in all_optimizers() {
        let f = |x: &[f64]| x[0] + x[1];
        let result = optimizer
            .minimize(&f, &[0.5, -1.0], &bounds, &Options::default())
            .unwrap_or_else(|e| panic!("{} errored: {e}", optimizer.name()));
        assert_eq!(result.x, vec![0.5, -1.0], "{} moved", optimizer.name());
        assert!((result.fx + 0.5).abs() < 1e-12);
    }
}

#[test]
fn infinity_start_rejected_cleanly() {
    let f = |_: &[f64]| f64::INFINITY;
    let bounds = Bounds::uniform(2, 0.0, 1.0).expect("valid bounds");
    for optimizer in all_optimizers() {
        let err = optimizer
            .minimize(&f, &[0.5, 0.5], &bounds, &Options::default())
            .expect_err("infinite objective must be rejected");
        assert!(
            matches!(err, optimize::OptimizeError::NonFiniteObjective { .. }),
            "{}: {err}",
            optimizer.name()
        );
    }
}

#[test]
fn max_iterations_reported() {
    // A slowly-improving valley with a 2-iteration cap must report the cap.
    let f = |x: &[f64]| (x[0] - 0.9).powi(2) * 1e-3 + x[1].abs();
    let bounds = Bounds::uniform(2, -1.0, 1.0).expect("valid bounds");
    let options = Options::default()
        .with_max_iters(2)
        .with_ftol(0.0)
        .with_gtol(0.0);
    for optimizer in all_optimizers() {
        let result = optimizer
            .minimize(&f, &[-0.9, 0.8], &bounds, &options)
            .unwrap_or_else(|e| panic!("{} errored: {e}", optimizer.name()));
        assert!(
            result.n_iters <= 2,
            "{} overran the iteration cap: {}",
            optimizer.name(),
            result.n_iters
        );
        // Termination may be MaxIterations or an early convergence signal,
        // but never MaxCalls (no call cap set here).
        assert_ne!(
            result.termination,
            Termination::MaxCalls,
            "{}",
            optimizer.name()
        );
    }
}
