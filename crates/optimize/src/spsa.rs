use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{
    Bounds, Counted, FnObjective, OptimizeError, OptimizeResult, Optimizer, Options, Termination,
};

/// Simultaneous Perturbation Stochastic Approximation (Spall, 1992).
///
/// SPSA estimates the gradient from **two** objective evaluations per
/// iteration regardless of dimension, which makes it the optimizer of choice
/// for QAOA loops that run on shot-noisy hardware — the regime the paper's
/// introduction motivates. It is not one of the four SciPy optimizers of
/// Table I; it is included as an extension so the two-level flow can be
/// compared against the hardware-practical baseline (see the
/// `shot_noise_study` and `optimizer_zoo` benchmark binaries).
///
/// Gains follow Spall's standard schedules `a_k = a/(k+1+A)^α` and
/// `c_k = c/(k+1)^γ` with `α = 0.602`, `γ = 0.101`. Perturbations are
/// Rademacher (±1). Iterates are projected onto the box after every step,
/// and the best evaluated point is returned (the raw SPSA iterate is never
/// evaluated, so the best probe point is the honest estimate).
///
/// The run is deterministic for a fixed [`Spsa::seed`].
///
/// # Example
///
/// ```
/// use optimize::{Bounds, Optimizer, Options, Spsa};
/// # fn main() -> Result<(), optimize::OptimizeError> {
/// let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
/// let bounds = Bounds::uniform(2, -2.0, 2.0)?;
/// let opts = Options::default().with_max_iters(500);
/// let r = Spsa::default().minimize(&sphere, &[1.5, -1.0], &bounds, &opts)?;
/// assert!(r.fx < 1e-2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spsa {
    /// Numerator of the step-size schedule `a_k = a / (k + 1 + A)^alpha`.
    pub a: f64,
    /// Stability offset `A` (typically ~10% of the iteration budget).
    pub big_a: f64,
    /// Step-size decay exponent `α` (Spall recommends 0.602).
    pub alpha: f64,
    /// Numerator of the perturbation schedule `c_k = c / (k + 1)^gamma`,
    /// as a fraction of the narrowest bound width.
    pub c: f64,
    /// Perturbation decay exponent `γ` (Spall recommends 0.101).
    pub gamma: f64,
    /// RNG seed for the Rademacher perturbations.
    pub seed: u64,
    /// Number of consecutive small smoothed-improvement iterations required
    /// to declare `ftol` convergence.
    pub patience: usize,
}

impl Default for Spsa {
    fn default() -> Self {
        Self {
            a: 0.2,
            big_a: 10.0,
            alpha: 0.602,
            c: 0.05,
            gamma: 0.101,
            seed: 0x5b5a_2020,
            patience: 10,
        }
    }
}

impl Spsa {
    /// Returns a copy with a different RNG seed; useful for multi-start runs.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Optimizer for Spsa {
    fn minimize(
        &self,
        f: &dyn Fn(&[f64]) -> f64,
        x0: &[f64],
        bounds: &Bounds,
        options: &Options,
    ) -> Result<OptimizeResult, OptimizeError> {
        if x0.is_empty() {
            return Err(OptimizeError::EmptyProblem);
        }
        if x0.len() != bounds.dim() {
            return Err(OptimizeError::DimensionMismatch {
                x0: x0.len(),
                bounds: bounds.dim(),
            });
        }
        let f = FnObjective(f);
        let counted = Counted::new(&f);
        let mut x = bounds.project(x0);
        let f0 = counted.eval(&x);
        if !f0.is_finite() {
            return Err(OptimizeError::NonFiniteObjective { value: f0 });
        }

        let n = x.len();
        let min_width = (0..n)
            .map(|i| bounds.width(i))
            .fold(f64::INFINITY, f64::min);
        let c_scale = (self.c * min_width).max(1e-6);

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut best_x = x.clone();
        let mut best_f = f0;
        let mut smoothed = f0;
        let mut stall = 0usize;
        let mut termination = Termination::MaxIterations;
        let mut iters = 0;

        for k in 0..options.max_iters {
            iters = k + 1;
            if options.calls_exhausted(counted.count()) {
                termination = Termination::MaxCalls;
                break;
            }
            let ak = self.a / (k as f64 + 1.0 + self.big_a).powf(self.alpha);
            let ck = c_scale / (k as f64 + 1.0).powf(self.gamma);

            let delta: Vec<f64> = (0..n)
                .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
            let x_plus: Vec<f64> = bounds.project(
                &x.iter()
                    .zip(&delta)
                    .map(|(&xi, &d)| xi + ck * d)
                    .collect::<Vec<_>>(),
            );
            let x_minus: Vec<f64> = bounds.project(
                &x.iter()
                    .zip(&delta)
                    .map(|(&xi, &d)| xi - ck * d)
                    .collect::<Vec<_>>(),
            );
            let f_plus = counted.eval(&x_plus);
            let f_minus = counted.eval(&x_minus);
            if !f_plus.is_finite() || !f_minus.is_finite() {
                termination = Termination::NonFinite;
                break;
            }

            if f_plus < best_f {
                best_f = f_plus;
                best_x = x_plus.clone();
            }
            if f_minus < best_f {
                best_f = f_minus;
                best_x = x_minus.clone();
            }

            let diff = f_plus - f_minus;
            for i in 0..n {
                // ĝ_i = (f+ − f−) / (2 c_k δ_i); δ_i = ±1 so divide by δ_i.
                let g = diff / (2.0 * ck * delta[i]);
                x[i] -= ak * g;
            }
            bounds.project_in_place(&mut x);

            let probe = 0.5 * (f_plus + f_minus);
            let new_smoothed = 0.9 * smoothed + 0.1 * probe;
            if (smoothed - new_smoothed).abs() <= options.ftol * (1.0 + smoothed.abs()) {
                stall += 1;
                if stall >= self.patience {
                    termination = Termination::FtolSatisfied;
                    break;
                }
            } else {
                stall = 0;
            }
            smoothed = new_smoothed;
        }

        // Final polish readout: evaluate the last iterate so it can compete
        // with the probe points.
        if !options.calls_exhausted(counted.count()) {
            let fx = counted.eval(&x);
            if fx.is_finite() && fx < best_f {
                best_f = fx;
                best_x = x;
            }
        }

        Ok(OptimizeResult {
            x: best_x,
            fx: best_f,
            n_calls: counted.count(),
            n_grad_calls: 0,
            n_iters: iters,
            termination,
        })
    }

    fn name(&self) -> &'static str {
        "SPSA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    #[test]
    fn minimizes_sphere() {
        let b = Bounds::uniform(3, -2.0, 2.0).unwrap();
        let opts = Options::default().with_max_iters(3000);
        let r = Spsa::default()
            .minimize(&sphere, &[1.0, -1.5, 0.7], &b, &opts)
            .unwrap();
        assert!(r.fx < 1e-2, "{r}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let b = Bounds::uniform(2, -2.0, 2.0).unwrap();
        let opts = Options::default().with_max_iters(200);
        let r1 = Spsa::default()
            .minimize(&sphere, &[1.0, 1.0], &b, &opts)
            .unwrap();
        let r2 = Spsa::default()
            .minimize(&sphere, &[1.0, 1.0], &b, &opts)
            .unwrap();
        assert_eq!(r1.x, r2.x);
        assert_eq!(r1.n_calls, r2.n_calls);
    }

    #[test]
    fn different_seeds_diverge() {
        let b = Bounds::uniform(2, -2.0, 2.0).unwrap();
        let opts = Options::default().with_max_iters(50);
        let r1 = Spsa::default()
            .minimize(&sphere, &[1.0, 1.0], &b, &opts)
            .unwrap();
        let r2 = Spsa::default()
            .with_seed(99)
            .minimize(&sphere, &[1.0, 1.0], &b, &opts)
            .unwrap();
        assert_ne!(r1.x, r2.x);
    }

    #[test]
    fn stays_in_bounds() {
        let f = |x: &[f64]| (x[0] - 5.0).powi(2) + (x[1] - 5.0).powi(2);
        let b = Bounds::uniform(2, 0.0, 1.0).unwrap();
        let opts = Options::default().with_max_iters(500);
        let r = Spsa::default()
            .minimize(&f, &[0.5, 0.5], &b, &opts)
            .unwrap();
        assert!(b.contains(&r.x));
        assert!(r.x[0] > 0.8 && r.x[1] > 0.8, "{r}");
    }

    #[test]
    fn two_calls_per_iteration() {
        let b = Bounds::uniform(4, -1.0, 1.0).unwrap();
        let opts = Options::default().with_max_iters(25).with_ftol(0.0);
        let r = Spsa::default()
            .minimize(&sphere, &[0.5; 4], &b, &opts)
            .unwrap();
        // 1 initial + 2 per iteration + 1 final polish, independent of dim.
        assert_eq!(r.n_calls, 1 + 2 * 25 + 1);
    }

    #[test]
    fn max_calls_cap_respected() {
        let b = Bounds::uniform(2, -1.0, 1.0).unwrap();
        let opts = Options::default().with_max_calls(9).with_max_iters(1000);
        let r = Spsa::default()
            .minimize(&sphere, &[0.5; 2], &b, &opts)
            .unwrap();
        assert_eq!(r.termination, Termination::MaxCalls);
        assert!(r.n_calls <= 11);
    }

    #[test]
    fn dimension_checks() {
        let b = Bounds::uniform(2, 0.0, 1.0).unwrap();
        assert!(matches!(
            Spsa::default().minimize(&sphere, &[0.5], &b, &Options::default()),
            Err(OptimizeError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Spsa::default().minimize(&sphere, &[], &b, &Options::default()),
            Err(OptimizeError::EmptyProblem)
        ));
    }

    #[test]
    fn nonfinite_start_rejected() {
        let f = |_: &[f64]| f64::INFINITY;
        let b = Bounds::uniform(1, 0.0, 1.0).unwrap();
        assert!(matches!(
            Spsa::default().minimize(&f, &[0.5], &b, &Options::default()),
            Err(OptimizeError::NonFiniteObjective { .. })
        ));
    }
}
