use rand::Rng;

use crate::OptimizeError;

/// A box constraint `lowerᵢ ≤ xᵢ ≤ upperᵢ`.
///
/// The paper restricts the optimization domain to `βᵢ ∈ [0, π]`,
/// `γᵢ ∈ [0, 2π]`; every optimizer in this crate both starts inside and
/// stays inside its box.
///
/// # Example
///
/// ```
/// use optimize::Bounds;
/// # fn main() -> Result<(), optimize::OptimizeError> {
/// let b = Bounds::uniform(2, 0.0, 1.0)?;
/// assert_eq!(b.project(&[-0.5, 2.0]), vec![0.0, 1.0]);
/// assert!(b.contains(&[0.5, 0.5]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bounds {
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl Bounds {
    /// Creates bounds from per-coordinate lower/upper pairs.
    ///
    /// # Errors
    ///
    /// * [`OptimizeError::DimensionMismatch`] if lengths differ.
    /// * [`OptimizeError::EmptyProblem`] for empty input.
    /// * [`OptimizeError::InvalidBounds`] if any `lower > upper`.
    pub fn new(lower: Vec<f64>, upper: Vec<f64>) -> Result<Self, OptimizeError> {
        if lower.len() != upper.len() {
            return Err(OptimizeError::DimensionMismatch {
                x0: lower.len(),
                bounds: upper.len(),
            });
        }
        if lower.is_empty() {
            return Err(OptimizeError::EmptyProblem);
        }
        for (i, (&lo, &hi)) in lower.iter().zip(&upper).enumerate() {
            if lo > hi {
                return Err(OptimizeError::InvalidBounds {
                    index: i,
                    lower: lo,
                    upper: hi,
                });
            }
        }
        Ok(Self { lower, upper })
    }

    /// Creates `dim` identical `[lower, upper]` intervals.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Bounds::new`].
    pub fn uniform(dim: usize, lower: f64, upper: f64) -> Result<Self, OptimizeError> {
        Self::new(vec![lower; dim], vec![upper; dim])
    }

    /// Dimensionality of the box.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lower.len()
    }

    /// Lower bounds.
    #[must_use]
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// Upper bounds.
    #[must_use]
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// Interval width of coordinate `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim()`.
    #[must_use]
    pub fn width(&self, i: usize) -> f64 {
        self.upper[i] - self.lower[i]
    }

    /// `true` if `x` lies inside the box (inclusive).
    #[must_use]
    pub fn contains(&self, x: &[f64]) -> bool {
        x.len() == self.dim()
            && x.iter()
                .zip(self.lower.iter().zip(&self.upper))
                .all(|(&xi, (&lo, &hi))| xi >= lo && xi <= hi)
    }

    /// Euclidean projection of `x` onto the box (component-wise clamp).
    #[must_use]
    pub fn project(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(self.lower.iter().zip(&self.upper))
            .map(|(&xi, (&lo, &hi))| xi.clamp(lo, hi))
            .collect()
    }

    /// In-place version of [`Bounds::project`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn project_in_place(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.dim(), "projection dimension mismatch");
        for (xi, (&lo, &hi)) in x.iter_mut().zip(self.lower.iter().zip(&self.upper)) {
            *xi = xi.clamp(lo, hi);
        }
    }

    /// Samples a uniformly random interior point — the paper's "random
    /// initialization" of the QAOA control parameters.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.lower
            .iter()
            .zip(&self.upper)
            .map(|(&lo, &hi)| if lo == hi { lo } else { rng.gen_range(lo..hi) })
            .collect()
    }

    /// The box center, a deterministic fallback start.
    #[must_use]
    pub fn center(&self) -> Vec<f64> {
        self.lower
            .iter()
            .zip(&self.upper)
            .map(|(&lo, &hi)| 0.5 * (lo + hi))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_checks() {
        assert!(matches!(
            Bounds::new(vec![0.0], vec![1.0, 2.0]),
            Err(OptimizeError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Bounds::new(vec![], vec![]),
            Err(OptimizeError::EmptyProblem)
        ));
        assert!(matches!(
            Bounds::new(vec![2.0], vec![1.0]),
            Err(OptimizeError::InvalidBounds { index: 0, .. })
        ));
        let b = Bounds::uniform(3, -1.0, 1.0).unwrap();
        assert_eq!(b.dim(), 3);
        assert_eq!(b.width(0), 2.0);
    }

    #[test]
    fn membership_and_projection() {
        let b = Bounds::new(vec![0.0, -1.0], vec![1.0, 1.0]).unwrap();
        assert!(b.contains(&[0.0, 1.0]));
        assert!(!b.contains(&[1.5, 0.0]));
        assert!(!b.contains(&[0.5])); // wrong dimension
        assert_eq!(b.project(&[2.0, -3.0]), vec![1.0, -1.0]);
        let mut x = [0.5, 0.5];
        b.project_in_place(&mut x);
        assert_eq!(x, [0.5, 0.5]);
    }

    #[test]
    fn sampling_stays_inside() {
        let b = Bounds::new(vec![0.0, 5.0], vec![2.0, 5.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            let x = b.sample(&mut rng);
            assert!(b.contains(&x));
            assert_eq!(x[1], 5.0); // degenerate interval sampled exactly
        }
    }

    #[test]
    fn center_point() {
        let b = Bounds::new(vec![0.0, 2.0], vec![4.0, 2.0]).unwrap();
        assert_eq!(b.center(), vec![2.0, 2.0]);
        assert!(b.contains(&b.center()));
    }
}
