use std::collections::VecDeque;

use crate::{
    gradient, Bounds, Counted, FnObjective, Objective, OptimizeError, OptimizeResult, Optimizer,
    Options, Termination,
};

/// Projected limited-memory BFGS for box constraints — the workspace's
/// L-BFGS-B and the optimizer the paper used to generate its training data.
///
/// This is the gradient-projection variant: the quasi-Newton direction comes
/// from the standard L-BFGS two-loop recursion over the last `memory`
/// curvature pairs, and feasibility is maintained by searching along the
/// *projected* path `x(α) = P(x + α d)` with an Armijo backtracking rule.
/// It differs from the Byrd–Lu–Nocedal–Zhu subspace algorithm in how the
/// active set is handled (projection instead of generalized Cauchy point)
/// but exhibits the same first-order behaviour on the smooth, low-dimensional
/// QAOA landscapes studied here; the substitution is recorded in DESIGN.md.
///
/// Gradients are forward finite differences (SciPy's default when no
/// Jacobian is passed), so each outer iteration costs `n + O(line search)`
/// function calls — all counted. When the objective supplies an analytic
/// gradient (via [`Optimizer::minimize_objective`] and
/// [`Objective::value_and_grad`]), the finite-difference probes disappear:
/// each outer iteration costs `O(line search)` function calls plus one
/// gradient call, reported separately as
/// [`OptimizeResult::n_grad_calls`].
///
/// # Example
///
/// ```
/// use optimize::{Bounds, Lbfgsb, Optimizer, Options};
/// # fn main() -> Result<(), optimize::OptimizeError> {
/// let f = |x: &[f64]| (x[0] - 0.5_f64).powi(2) + 3.0 * (x[1] + 0.25_f64).powi(2);
/// let bounds = Bounds::uniform(2, -1.0, 1.0)?;
/// let r = Lbfgsb::default().minimize(&f, &[0.9, 0.9], &bounds, &Options::default())?;
/// assert!(r.fx < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lbfgsb {
    /// Number of curvature pairs retained (SciPy default: 10).
    pub memory: usize,
    /// Armijo sufficient-decrease constant.
    pub armijo_c1: f64,
    /// Backtracking factor per line-search step.
    pub backtrack: f64,
    /// Maximum line-search evaluations per outer iteration.
    pub max_line_steps: usize,
}

impl Default for Lbfgsb {
    fn default() -> Self {
        Self {
            memory: 10,
            armijo_c1: 1e-4,
            backtrack: 0.5,
            max_line_steps: 20,
        }
    }
}

/// One (s, y, ρ) curvature pair for the two-loop recursion.
#[derive(Debug, Clone)]
struct Pair {
    s: Vec<f64>,
    y: Vec<f64>,
    rho: f64,
}

/// Two-loop recursion producing `-H·g` (a descent direction).
fn two_loop(grad: &[f64], pairs: &VecDeque<Pair>) -> Vec<f64> {
    let mut q: Vec<f64> = grad.to_vec();
    let mut alphas = Vec::with_capacity(pairs.len());
    for p in pairs.iter().rev() {
        let alpha = p.rho * linalg_dot(&p.s, &q);
        for (qi, yi) in q.iter_mut().zip(&p.y) {
            *qi -= alpha * yi;
        }
        alphas.push(alpha);
    }
    // Initial Hessian scaling γ = sᵀy / yᵀy from the most recent pair.
    if let Some(last) = pairs.back() {
        let gamma = linalg_dot(&last.s, &last.y) / linalg_dot(&last.y, &last.y).max(1e-300);
        for qi in &mut q {
            *qi *= gamma;
        }
    }
    for (p, &alpha) in pairs.iter().zip(alphas.iter().rev()) {
        let beta = p.rho * linalg_dot(&p.y, &q);
        for (qi, si) in q.iter_mut().zip(&p.s) {
            *qi += (alpha - beta) * si;
        }
    }
    for qi in &mut q {
        *qi = -*qi;
    }
    q
}

fn linalg_dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Infinity norm of the projected gradient `P(x − g) − x`, the standard
/// bound-constrained stationarity measure.
fn projected_gradient_norm(x: &[f64], grad: &[f64], bounds: &Bounds) -> f64 {
    let stepped: Vec<f64> = x.iter().zip(grad).map(|(&xi, &gi)| xi - gi).collect();
    let projected = bounds.project(&stepped);
    projected
        .iter()
        .zip(x)
        .map(|(p, xi)| (p - xi).abs())
        .fold(0.0_f64, f64::max)
}

impl Optimizer for Lbfgsb {
    fn minimize(
        &self,
        f: &dyn Fn(&[f64]) -> f64,
        x0: &[f64],
        bounds: &Bounds,
        options: &Options,
    ) -> Result<OptimizeResult, OptimizeError> {
        self.minimize_objective(&FnObjective(f), x0, bounds, options)
    }

    fn minimize_objective(
        &self,
        f: &dyn Objective,
        x0: &[f64],
        bounds: &Bounds,
        options: &Options,
    ) -> Result<OptimizeResult, OptimizeError> {
        if x0.is_empty() {
            return Err(OptimizeError::EmptyProblem);
        }
        if x0.len() != bounds.dim() {
            return Err(OptimizeError::DimensionMismatch {
                x0: x0.len(),
                bounds: bounds.dim(),
            });
        }
        let counted = Counted::new(f);
        let mut x = bounds.project(x0);
        let mut fx = counted.eval(&x);
        if !fx.is_finite() {
            return Err(OptimizeError::NonFiniteObjective { value: fx });
        }
        let mut grad = gradient(&counted, &x, fx, bounds, options.fd_step);
        let mut pairs: VecDeque<Pair> = VecDeque::with_capacity(self.memory);

        let mut termination = Termination::MaxIterations;
        let mut iters = 0;

        for iter in 0..options.max_iters {
            iters = iter + 1;
            if projected_gradient_norm(&x, &grad, bounds) <= options.gtol {
                termination = Termination::GtolSatisfied;
                break;
            }
            if options.calls_exhausted(counted.count()) {
                termination = Termination::MaxCalls;
                break;
            }

            let mut direction = two_loop(&grad, &pairs);
            // Safeguard: fall back to steepest descent on a non-descent dir.
            if linalg_dot(&direction, &grad) >= 0.0 {
                direction = grad.iter().map(|g| -g).collect();
                pairs.clear();
            }
            // First iteration has no curvature information: normalize the
            // steepest-descent step so the unit trial stays commensurate
            // with the box (SciPy seeds `H0 = I/‖g‖` the same way).
            if pairs.is_empty() {
                let dnorm = linalg_dot(&direction, &direction).sqrt();
                if dnorm > 1.0 {
                    for di in &mut direction {
                        *di /= dnorm;
                    }
                }
            }

            // Armijo backtracking along the projected path, with greedy
            // doubling when the unit step is accepted immediately (prevents
            // tiny-step creep after an early backtracking collapse).
            let trial_at = |alpha: f64| -> Vec<f64> {
                let raw: Vec<f64> = x
                    .iter()
                    .zip(&direction)
                    .map(|(&xi, &di)| xi + alpha * di)
                    .collect();
                bounds.project(&raw)
            };
            let armijo_ok = |trial: &[f64], ft: f64| -> bool {
                let disp: Vec<f64> = trial.iter().zip(&x).map(|(t, xi)| t - xi).collect();
                ft.is_finite() && ft <= fx + self.armijo_c1 * linalg_dot(&grad, &disp)
            };
            let mut accepted = false;
            let mut x_new = x.clone();
            let mut f_new = fx;
            let mut alpha = 1.0;
            for step in 0..self.max_line_steps {
                let trial = trial_at(alpha);
                if trial.iter().zip(&x).all(|(t, xi)| (t - xi).abs() < 1e-16) {
                    break; // projection annihilated the step
                }
                let ft = counted.eval(&trial);
                if armijo_ok(&trial, ft) {
                    x_new = trial;
                    f_new = ft;
                    accepted = true;
                    if step == 0 {
                        // Expansion phase: keep doubling while it pays off.
                        let mut expand = 2.0_f64;
                        for _ in 0..self.max_line_steps {
                            if options.calls_exhausted(counted.count()) {
                                break;
                            }
                            let wide = trial_at(expand);
                            if wide
                                .iter()
                                .zip(&x_new)
                                .all(|(w, xi)| (w - xi).abs() < 1e-16)
                            {
                                break;
                            }
                            let fw = counted.eval(&wide);
                            if fw.is_finite() && fw < f_new && armijo_ok(&wide, fw) {
                                x_new = wide;
                                f_new = fw;
                                expand *= 2.0;
                            } else {
                                break;
                            }
                        }
                    }
                    break;
                }
                alpha *= self.backtrack;
                if options.calls_exhausted(counted.count()) {
                    break;
                }
            }
            if !accepted {
                termination = Termination::StepSizeZero;
                break;
            }

            let grad_new = gradient(&counted, &x_new, f_new, bounds, options.fd_step);
            // Curvature update with the standard positivity guard.
            let s: Vec<f64> = x_new.iter().zip(&x).map(|(a, b)| a - b).collect();
            let y: Vec<f64> = grad_new.iter().zip(&grad).map(|(a, b)| a - b).collect();
            let sy = linalg_dot(&s, &y);
            if sy > 1e-10 * linalg_dot(&y, &y).sqrt() * linalg_dot(&s, &s).sqrt() {
                if pairs.len() == self.memory {
                    pairs.pop_front();
                }
                pairs.push_back(Pair {
                    s,
                    y,
                    rho: 1.0 / sy,
                });
            }

            let converged = options.f_converged(fx, f_new);
            x = x_new;
            fx = f_new;
            grad = grad_new;
            if converged {
                termination = Termination::FtolSatisfied;
                break;
            }
        }

        Ok(OptimizeResult {
            x,
            fx,
            n_calls: counted.count(),
            n_grad_calls: counted.njev(),
            n_iters: iters,
            termination,
        })
    }

    fn name(&self) -> &'static str {
        "L-BFGS-B"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    #[test]
    fn minimizes_quadratic_fast() {
        let b = Bounds::uniform(4, -5.0, 5.0).unwrap();
        let r = Lbfgsb::default()
            .minimize(&sphere, &[3.0, -2.0, 1.0, 4.0], &b, &Options::default())
            .unwrap();
        assert!(r.fx < 1e-9, "{r}");
        assert!(r.converged());
        assert!(r.n_iters < 50);
    }

    #[test]
    fn rosenbrock_converges() {
        let f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let b = Bounds::uniform(2, -5.0, 5.0).unwrap();
        let r = Lbfgsb::default()
            .minimize(
                &f,
                &[-1.2, 1.0],
                &b,
                &Options::default().with_max_iters(500),
            )
            .unwrap();
        assert!((r.x[0] - 1.0).abs() < 1e-3, "{r}");
        assert!((r.x[1] - 1.0).abs() < 1e-3, "{r}");
    }

    #[test]
    fn active_bound_identified() {
        // Minimum at x = 2 but box caps at 1: solution must sit on the bound.
        let f = |x: &[f64]| (x[0] - 2.0) * (x[0] - 2.0);
        let b = Bounds::uniform(1, 0.0, 1.0).unwrap();
        let r = Lbfgsb::default()
            .minimize(&f, &[0.2], &b, &Options::default())
            .unwrap();
        assert!((r.x[0] - 1.0).abs() < 1e-8, "{r}");
        assert!(b.contains(&r.x));
    }

    #[test]
    fn counts_include_gradient_probes() {
        let b = Bounds::uniform(3, -1.0, 1.0).unwrap();
        let r = Lbfgsb::default()
            .minimize(&sphere, &[0.5, 0.5, 0.5], &b, &Options::default())
            .unwrap();
        // At minimum: 1 initial + 3 gradient probes per iteration.
        assert!(r.n_calls > 3 * r.n_iters.min(2));
    }

    #[test]
    fn analytic_gradient_cuts_nfev() {
        struct Sphere;
        impl Objective for Sphere {
            fn value(&self, x: &[f64]) -> f64 {
                x.iter().map(|v| v * v).sum()
            }
            fn value_and_grad(&self, x: &[f64], grad: &mut [f64]) -> Option<f64> {
                for (g, v) in grad.iter_mut().zip(x) {
                    *g = 2.0 * v;
                }
                Some(self.value(x))
            }
        }
        let b = Bounds::uniform(4, -5.0, 5.0).unwrap();
        let x0 = [3.0, -2.0, 1.0, 4.0];
        let opts = Options::default();
        let fd = Lbfgsb::default().minimize(&sphere, &x0, &b, &opts).unwrap();
        let an = Lbfgsb::default()
            .minimize_objective(&Sphere, &x0, &b, &opts)
            .unwrap();
        assert!(an.fx < 1e-9, "{an}");
        assert!((an.fx - fd.fx).abs() < 1e-8);
        assert!(an.n_grad_calls > 0);
        assert_eq!(fd.n_grad_calls, 0);
        // No finite-difference probes: strictly fewer objective evaluations.
        assert!(an.n_calls < fd.n_calls, "{} vs {}", an.n_calls, fd.n_calls);
    }

    #[test]
    fn trapped_objective_terminates() {
        // Constant function: gradient is zero immediately.
        let f = |_: &[f64]| 1.0;
        let b = Bounds::uniform(2, 0.0, 1.0).unwrap();
        let r = Lbfgsb::default()
            .minimize(&f, &[0.5, 0.5], &b, &Options::default())
            .unwrap();
        assert_eq!(r.termination, Termination::GtolSatisfied);
        assert_eq!(r.fx, 1.0);
    }

    #[test]
    fn call_cap_enforced() {
        let b = Bounds::uniform(6, -5.0, 5.0).unwrap();
        let opts = Options::default()
            .with_max_calls(20)
            .with_gtol(0.0)
            .with_ftol(0.0);
        let f = |x: &[f64]| sphere(x) + (x[0] * 10.0).sin() * 0.01;
        let r = Lbfgsb::default()
            .minimize(&f, &[4.0; 6], &b, &opts)
            .unwrap();
        // Cap checked per outer iteration; slack of one iteration's calls.
        assert!(r.n_calls <= 20 + 6 + Lbfgsb::default().max_line_steps + 6);
    }

    #[test]
    fn error_paths() {
        let b = Bounds::uniform(2, 0.0, 1.0).unwrap();
        assert!(Lbfgsb::default()
            .minimize(&sphere, &[0.5], &b, &Options::default())
            .is_err());
        let nan = |_: &[f64]| f64::NAN;
        assert!(matches!(
            Lbfgsb::default().minimize(&nan, &[0.5, 0.5], &b, &Options::default()),
            Err(OptimizeError::NonFiniteObjective { .. })
        ));
    }

    #[test]
    fn start_outside_box_is_projected() {
        let b = Bounds::uniform(2, 0.0, 1.0).unwrap();
        let r = Lbfgsb::default()
            .minimize(&sphere, &[5.0, -3.0], &b, &Options::default())
            .unwrap();
        assert!(b.contains(&r.x));
        assert!(r.fx < 1e-9);
    }
}
