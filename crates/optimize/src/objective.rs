//! The gradient-capable objective interface.
//!
//! The original optimizer entry point takes a plain `&dyn Fn(&[f64]) -> f64`
//! and estimates gradients by finite differences — SciPy's behaviour when no
//! Jacobian is passed, and the paper's hardware-realistic setup. On a
//! simulator, however, the QAOA expectation admits an **exact adjoint
//! gradient** at roughly the cost of three objective evaluations, independent
//! of the parameter count. [`Objective`] lets callers expose that gradient;
//! gradient-based optimizers consume it through
//! [`Optimizer::minimize_objective`](crate::Optimizer::minimize_objective)
//! and fall back to finite differences when [`Objective::value_and_grad`]
//! returns `None`.

/// A scalar objective that may provide an analytic gradient.
///
/// Every closure `Fn(&[f64]) -> f64` implements this trait (gradient-free);
/// implement it directly to supply `value_and_grad`.
///
/// # Example
///
/// ```
/// use optimize::Objective;
///
/// struct Quadratic;
/// impl Objective for Quadratic {
///     fn value(&self, x: &[f64]) -> f64 {
///         x.iter().map(|v| v * v).sum()
///     }
///     fn value_and_grad(&self, x: &[f64], grad: &mut [f64]) -> Option<f64> {
///         for (g, v) in grad.iter_mut().zip(x) {
///             *g = 2.0 * v;
///         }
///         Some(self.value(x))
///     }
/// }
///
/// let q = Quadratic;
/// let mut g = [0.0; 2];
/// assert_eq!(q.value_and_grad(&[1.0, -2.0], &mut g), Some(5.0));
/// assert_eq!(g, [2.0, -4.0]);
/// ```
pub trait Objective {
    /// Evaluates `f(x)`.
    fn value(&self, x: &[f64]) -> f64;

    /// Writes `∇f(x)` into `grad` and returns `f(x)` when an analytic
    /// gradient is available; returns `None` otherwise, in which case the
    /// caller estimates the gradient by finite differences (each probe a
    /// counted objective evaluation).
    ///
    /// `grad.len()` always equals `x.len()`.
    fn value_and_grad(&self, _x: &[f64], _grad: &mut [f64]) -> Option<f64> {
        None
    }
}

/// Plain closures are gradient-free objectives.
impl<F: Fn(&[f64]) -> f64> Objective for F {
    fn value(&self, x: &[f64]) -> f64 {
        self(x)
    }
}

/// Adapts the legacy `&dyn Fn` objective to [`Objective`] (a `&dyn Fn`
/// cannot coerce to `&dyn Objective` directly because trait-object-to-
/// trait-object unsizing is not a thing).
pub(crate) struct FnObjective<'a>(pub &'a dyn Fn(&[f64]) -> f64);

impl Objective for FnObjective<'_> {
    fn value(&self, x: &[f64]) -> f64 {
        (self.0)(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_have_no_gradient() {
        let f = |x: &[f64]| x[0] + 1.0;
        assert_eq!(Objective::value(&f, &[2.0]), 3.0);
        let mut g = [0.0];
        assert_eq!(f.value_and_grad(&[2.0], &mut g), None);
    }

    #[test]
    fn fn_objective_passes_through() {
        let f = |x: &[f64]| 2.0 * x[0];
        let wrapped = FnObjective(&f);
        assert_eq!(wrapped.value(&[21.0]), 42.0);
        let mut g = [0.0];
        assert_eq!(wrapped.value_and_grad(&[21.0], &mut g), None);
    }
}
