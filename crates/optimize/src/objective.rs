//! The gradient-capable objective interface.
//!
//! The original optimizer entry point takes a plain `&dyn Fn(&[f64]) -> f64`
//! and estimates gradients by finite differences — SciPy's behaviour when no
//! Jacobian is passed, and the paper's hardware-realistic setup. On a
//! simulator, however, the QAOA expectation admits an **exact adjoint
//! gradient** at roughly the cost of three objective evaluations, independent
//! of the parameter count. [`Objective`] lets callers expose that gradient;
//! gradient-based optimizers consume it through
//! [`Optimizer::minimize_objective`](crate::Optimizer::minimize_objective)
//! and fall back to finite differences when [`Objective::value_and_grad`]
//! returns `None`.

/// A scalar objective that may provide an analytic gradient.
///
/// Every closure `Fn(&[f64]) -> f64` implements this trait (gradient-free);
/// implement it directly to supply `value_and_grad`.
///
/// # Example
///
/// ```
/// use optimize::Objective;
///
/// struct Quadratic;
/// impl Objective for Quadratic {
///     fn value(&self, x: &[f64]) -> f64 {
///         x.iter().map(|v| v * v).sum()
///     }
///     fn value_and_grad(&self, x: &[f64], grad: &mut [f64]) -> Option<f64> {
///         for (g, v) in grad.iter_mut().zip(x) {
///             *g = 2.0 * v;
///         }
///         Some(self.value(x))
///     }
/// }
///
/// let q = Quadratic;
/// let mut g = [0.0; 2];
/// assert_eq!(q.value_and_grad(&[1.0, -2.0], &mut g), Some(5.0));
/// assert_eq!(g, [2.0, -4.0]);
/// ```
pub trait Objective {
    /// Evaluates `f(x)`.
    fn value(&self, x: &[f64]) -> f64;

    /// Writes `∇f(x)` into `grad` and returns `f(x)` when an analytic
    /// gradient is available; returns `None` otherwise, in which case the
    /// caller estimates the gradient by finite differences (each probe a
    /// counted objective evaluation).
    ///
    /// `grad.len()` always equals `x.len()`.
    fn value_and_grad(&self, _x: &[f64], _grad: &mut [f64]) -> Option<f64> {
        None
    }
}

/// Plain closures are gradient-free objectives.
impl<F: Fn(&[f64]) -> f64> Objective for F {
    fn value(&self, x: &[f64]) -> f64 {
        self(x)
    }
}

/// Adapts the legacy `&dyn Fn` objective to [`Objective`] (a `&dyn Fn`
/// cannot coerce to `&dyn Objective` directly because trait-object-to-
/// trait-object unsizing is not a thing).
pub(crate) struct FnObjective<'a>(pub &'a dyn Fn(&[f64]) -> f64);

impl Objective for FnObjective<'_> {
    fn value(&self, x: &[f64]) -> f64 {
        (self.0)(x)
    }
}

/// Adapts a fallible evaluation `Fn(&[f64]) -> Result<f64, E>` to
/// [`Objective`] without panicking inside the optimizer loop.
///
/// An `Err` evaluation yields `f64::NAN`, which every optimizer in this
/// crate handles gracefully (terminating with
/// [`Termination::NonFinite`](crate::Termination::NonFinite) or rejecting
/// the probe); the **first** error is stored and can be recovered with
/// [`Fallible::take_error`] after `minimize_objective` returns, so the
/// caller reports the real failure instead of a panic or a silent `NaN`.
///
/// # Example
///
/// ```
/// use optimize::{Fallible, Objective};
///
/// let f = |x: &[f64]| -> Result<f64, &'static str> {
///     if x[0] < 0.0 {
///         Err("negative domain")
///     } else {
///         Ok(x[0] * x[0])
///     }
/// };
/// let obj = Fallible::new(&f);
/// assert_eq!(obj.value(&[3.0]), 9.0);
/// assert!(obj.value(&[-1.0]).is_nan());
/// assert_eq!(obj.take_error(), Some("negative domain"));
/// assert_eq!(obj.take_error(), None);
/// ```
pub struct Fallible<'a, E> {
    f: &'a dyn Fn(&[f64]) -> Result<f64, E>,
    error: core::cell::RefCell<Option<E>>,
}

impl<'a, E> Fallible<'a, E> {
    /// Wraps a fallible evaluation.
    #[must_use]
    pub fn new(f: &'a dyn Fn(&[f64]) -> Result<f64, E>) -> Self {
        Self {
            f,
            error: core::cell::RefCell::new(None),
        }
    }

    /// Removes and returns the first captured error, if any evaluation
    /// failed since construction (or the previous `take_error`).
    pub fn take_error(&self) -> Option<E> {
        self.error.borrow_mut().take()
    }
}

impl<E> Objective for Fallible<'_, E> {
    fn value(&self, x: &[f64]) -> f64 {
        match (self.f)(x) {
            Ok(v) => v,
            Err(e) => {
                let mut slot = self.error.borrow_mut();
                if slot.is_none() {
                    *slot = Some(e);
                }
                f64::NAN
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_have_no_gradient() {
        let f = |x: &[f64]| x[0] + 1.0;
        assert_eq!(Objective::value(&f, &[2.0]), 3.0);
        let mut g = [0.0];
        assert_eq!(f.value_and_grad(&[2.0], &mut g), None);
    }

    #[test]
    fn fn_objective_passes_through() {
        let f = |x: &[f64]| 2.0 * x[0];
        let wrapped = FnObjective(&f);
        assert_eq!(wrapped.value(&[21.0]), 42.0);
        let mut g = [0.0];
        assert_eq!(wrapped.value_and_grad(&[21.0], &mut g), None);
    }

    #[test]
    fn fallible_passes_ok_values_through() {
        let f = |x: &[f64]| -> Result<f64, String> { Ok(x[0] + 1.0) };
        let obj = Fallible::new(&f);
        assert_eq!(obj.value(&[1.0]), 2.0);
        assert_eq!(obj.take_error(), None);
    }

    #[test]
    fn fallible_keeps_first_error_only() {
        let f = |x: &[f64]| -> Result<f64, String> { Err(format!("bad {}", x[0])) };
        let obj = Fallible::new(&f);
        assert!(obj.value(&[1.0]).is_nan());
        assert!(obj.value(&[2.0]).is_nan());
        assert_eq!(obj.take_error(), Some("bad 1".to_string()));
        assert_eq!(obj.take_error(), None);
    }

    #[test]
    fn fallible_terminates_optimizer_gracefully() {
        // An objective that fails away from the start point must not panic;
        // the optimizer winds down on the NaN probe and the error is
        // recoverable afterwards.
        use crate::{Bounds, NelderMead, Optimizer, Options};
        let f = |x: &[f64]| -> Result<f64, &'static str> {
            if x[0] > 0.55 {
                Err("probe escaped")
            } else {
                Ok((x[0] - 1.0).powi(2))
            }
        };
        let obj = Fallible::new(&f);
        let bounds = Bounds::new(vec![0.0], vec![2.0]).unwrap();
        let result =
            NelderMead::default().minimize_objective(&obj, &[0.5], &bounds, &Options::default());
        assert!(result.is_ok());
        assert_eq!(obj.take_error(), Some("probe escaped"));
    }
}
