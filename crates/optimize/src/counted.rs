use std::cell::Cell;

/// Wraps an objective and counts every evaluation.
///
/// The paper's headline metric is the number of optimization-loop iterations
/// ("function calls" / "QC calls"), so the count must be airtight: every
/// optimizer in this crate funnels all evaluations — including finite-
/// difference gradient probes — through one `Counted` instance.
///
/// Interior mutability (a `Cell`) keeps the public objective type a plain
/// `&dyn Fn(&[f64]) -> f64`.
///
/// # Example
///
/// ```
/// use optimize::Counted;
/// let f = |x: &[f64]| x[0] * x[0];
/// let counted = Counted::new(&f);
/// counted.eval(&[2.0]);
/// counted.eval(&[3.0]);
/// assert_eq!(counted.count(), 2);
/// ```
pub struct Counted<'a> {
    f: &'a dyn Fn(&[f64]) -> f64,
    calls: Cell<usize>,
}

impl<'a> Counted<'a> {
    /// Wraps `f` with a zeroed counter.
    #[must_use]
    pub fn new(f: &'a dyn Fn(&[f64]) -> f64) -> Self {
        Self {
            f,
            calls: Cell::new(0),
        }
    }

    /// Evaluates the objective, incrementing the counter.
    #[must_use]
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.calls.set(self.calls.get() + 1);
        (self.f)(x)
    }

    /// Number of evaluations so far.
    #[must_use]
    pub fn count(&self) -> usize {
        self.calls.get()
    }
}

impl std::fmt::Debug for Counted<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counted")
            .field("calls", &self.calls.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_every_call() {
        let f = |x: &[f64]| x.iter().sum();
        let c = Counted::new(&f);
        assert_eq!(c.count(), 0);
        for i in 0..17 {
            let _ = c.eval(&[i as f64]);
        }
        assert_eq!(c.count(), 17);
    }

    #[test]
    fn passes_values_through() {
        let f = |x: &[f64]| 2.0 * x[0];
        let c = Counted::new(&f);
        assert_eq!(c.eval(&[21.0]), 42.0);
    }

    #[test]
    fn debug_shows_count() {
        let f = |_: &[f64]| 0.0;
        let c = Counted::new(&f);
        let _ = c.eval(&[]);
        assert!(format!("{c:?}").contains("calls: 1"));
    }
}
