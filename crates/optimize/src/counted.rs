use std::cell::Cell;

use crate::Objective;

/// Wraps an objective and counts every evaluation, SciPy-style: `nfev` for
/// objective values, `njev` for analytic gradient evaluations.
///
/// The paper's headline metric is the number of optimization-loop iterations
/// ("function calls" / "QC calls"), so the count must be airtight: every
/// optimizer in this crate funnels all evaluations — including finite-
/// difference gradient probes — through one `Counted` instance. Analytic
/// gradients (the adjoint method of the QAOA layer) are counted separately
/// as `njev`, exactly as SciPy reports `nfev`/`njev` when a Jacobian is
/// supplied.
///
/// Interior mutability (`Cell`s) keeps the public objective type a plain
/// `&dyn Objective`.
///
/// # Example
///
/// ```
/// use optimize::Counted;
/// let f = |x: &[f64]| x[0] * x[0];
/// let counted = Counted::new(&f);
/// counted.eval(&[2.0]);
/// counted.eval(&[3.0]);
/// assert_eq!(counted.count(), 2);
/// assert_eq!(counted.njev(), 0);
/// ```
pub struct Counted<'a> {
    f: &'a dyn Objective,
    nfev: Cell<usize>,
    njev: Cell<usize>,
}

impl<'a> Counted<'a> {
    /// Wraps `f` with zeroed counters.
    #[must_use]
    pub fn new(f: &'a dyn Objective) -> Self {
        Self {
            f,
            nfev: Cell::new(0),
            njev: Cell::new(0),
        }
    }

    /// Evaluates the objective, incrementing `nfev`.
    #[must_use]
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.nfev.set(self.nfev.get() + 1);
        self.f.value(x)
    }

    /// Evaluates the analytic value-and-gradient if the objective provides
    /// one, incrementing `njev` (not `nfev`: the value comes free with the
    /// gradient, mirroring SciPy's `jac=True` accounting). Returns `None` —
    /// and counts nothing — for gradient-free objectives.
    #[must_use]
    pub fn eval_grad(&self, x: &[f64], grad: &mut [f64]) -> Option<f64> {
        let fx = self.f.value_and_grad(x, grad)?;
        self.njev.set(self.njev.get() + 1);
        Some(fx)
    }

    /// Number of objective evaluations so far (`nfev`).
    #[must_use]
    pub fn count(&self) -> usize {
        self.nfev.get()
    }

    /// Number of analytic gradient evaluations so far (`njev`).
    #[must_use]
    pub fn njev(&self) -> usize {
        self.njev.get()
    }
}

impl std::fmt::Debug for Counted<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counted")
            .field("calls", &self.nfev.get())
            .field("grad_calls", &self.njev.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_every_call() {
        let f = |x: &[f64]| x.iter().sum();
        let c = Counted::new(&f);
        assert_eq!(c.count(), 0);
        for i in 0..17 {
            let _ = c.eval(&[i as f64]);
        }
        assert_eq!(c.count(), 17);
        assert_eq!(c.njev(), 0);
    }

    #[test]
    fn passes_values_through() {
        let f = |x: &[f64]| 2.0 * x[0];
        let c = Counted::new(&f);
        assert_eq!(c.eval(&[21.0]), 42.0);
    }

    #[test]
    fn gradient_free_objective_counts_no_njev() {
        let f = |x: &[f64]| x[0];
        let c = Counted::new(&f);
        let mut g = [0.0];
        assert_eq!(c.eval_grad(&[1.0], &mut g), None);
        assert_eq!((c.count(), c.njev()), (0, 0));
    }

    #[test]
    fn analytic_gradient_counts_njev_only() {
        struct Quad;
        impl Objective for Quad {
            fn value(&self, x: &[f64]) -> f64 {
                x[0] * x[0]
            }
            fn value_and_grad(&self, x: &[f64], grad: &mut [f64]) -> Option<f64> {
                grad[0] = 2.0 * x[0];
                Some(self.value(x))
            }
        }
        let q = Quad;
        let c = Counted::new(&q);
        let mut g = [0.0];
        assert_eq!(c.eval_grad(&[3.0], &mut g), Some(9.0));
        assert_eq!(g[0], 6.0);
        assert_eq!((c.count(), c.njev()), (0, 1));
    }

    #[test]
    fn debug_shows_count() {
        let f = |_: &[f64]| 0.0;
        let c = Counted::new(&f);
        let _ = c.eval(&[]);
        assert!(format!("{c:?}").contains("calls: 1"));
    }
}
