/// Shared termination settings for every optimizer.
///
/// The paper runs all optimizers with a functional tolerance of `1e-6` and
/// SciPy-like default iteration budgets; those are the defaults here.
///
/// # Example
///
/// ```
/// let opts = optimize::Options::default().with_ftol(1e-8).with_max_iters(500);
/// assert_eq!(opts.ftol, 1e-8);
/// assert_eq!(opts.max_iters, 500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Options {
    /// Converged when the improvement in `f` falls below
    /// `ftol * (1 + |f|)` (SciPy's relative-plus-absolute test).
    pub ftol: f64,
    /// Converged when the (projected) gradient infinity-norm falls below
    /// this value (gradient-based methods only).
    pub gtol: f64,
    /// Hard cap on outer iterations.
    pub max_iters: usize,
    /// Hard cap on objective evaluations (0 disables the cap).
    pub max_calls: usize,
    /// Relative step for finite-difference gradients.
    pub fd_step: f64,
}

impl Options {
    /// The paper's functional tolerance.
    pub const PAPER_FTOL: f64 = 1e-6;

    /// Returns a copy with a different functional tolerance.
    #[must_use]
    pub fn with_ftol(mut self, ftol: f64) -> Self {
        self.ftol = ftol;
        self
    }

    /// Returns a copy with a different gradient tolerance.
    #[must_use]
    pub fn with_gtol(mut self, gtol: f64) -> Self {
        self.gtol = gtol;
        self
    }

    /// Returns a copy with a different iteration cap.
    #[must_use]
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Returns a copy with a different evaluation cap (0 = unlimited).
    #[must_use]
    pub fn with_max_calls(mut self, max_calls: usize) -> Self {
        self.max_calls = max_calls;
        self
    }

    /// `true` once `calls` exhausts the evaluation budget.
    #[must_use]
    pub fn calls_exhausted(&self, calls: usize) -> bool {
        self.max_calls != 0 && calls >= self.max_calls
    }

    /// The SciPy-style convergence test on successive objective values.
    #[must_use]
    pub fn f_converged(&self, f_old: f64, f_new: f64) -> bool {
        (f_old - f_new).abs() <= self.ftol * (1.0 + f_new.abs())
    }
}

impl Default for Options {
    fn default() -> Self {
        Self {
            ftol: Self::PAPER_FTOL,
            gtol: 1e-6,
            max_iters: 1000,
            max_calls: 0,
            fd_step: 1e-7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let o = Options::default()
            .with_ftol(1e-3)
            .with_gtol(1e-4)
            .with_max_iters(7)
            .with_max_calls(9);
        assert_eq!(o.ftol, 1e-3);
        assert_eq!(o.gtol, 1e-4);
        assert_eq!(o.max_iters, 7);
        assert_eq!(o.max_calls, 9);
    }

    #[test]
    fn call_budget() {
        let o = Options::default();
        assert!(!o.calls_exhausted(1_000_000)); // default unlimited
        let capped = o.with_max_calls(10);
        assert!(!capped.calls_exhausted(9));
        assert!(capped.calls_exhausted(10));
    }

    #[test]
    fn convergence_test_is_relative() {
        let o = Options::default().with_ftol(1e-6);
        assert!(o.f_converged(1.0, 1.0));
        assert!(o.f_converged(1.0 + 5e-7, 1.0));
        assert!(!o.f_converged(1.1, 1.0));
        // Scales with |f|: a 1e-4 change at f = 1000 converges at ftol 1e-6.
        assert!(o.f_converged(1000.0004, 1000.0));
    }
}
