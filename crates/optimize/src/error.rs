use std::error::Error;
use std::fmt;

/// Error type for optimizer setup and execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OptimizeError {
    /// `x0` and the bounds disagree on dimensionality.
    DimensionMismatch {
        /// Length of the starting point.
        x0: usize,
        /// Dimension of the bounds.
        bounds: usize,
    },
    /// A zero-dimensional problem was supplied.
    EmptyProblem,
    /// A bound has `lower > upper`.
    InvalidBounds {
        /// Index of the offending coordinate.
        index: usize,
        /// The lower bound.
        lower: f64,
        /// The upper bound.
        upper: f64,
    },
    /// The objective returned NaN or ±∞ at the starting point.
    NonFiniteObjective {
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::DimensionMismatch { x0, bounds } => {
                write!(
                    f,
                    "starting point has {x0} coordinates but bounds have {bounds}"
                )
            }
            OptimizeError::EmptyProblem => write!(f, "cannot optimize a zero-dimensional problem"),
            OptimizeError::InvalidBounds {
                index,
                lower,
                upper,
            } => write!(
                f,
                "invalid bound at index {index}: lower {lower} > upper {upper}"
            ),
            OptimizeError::NonFiniteObjective { value } => {
                write!(f, "objective is not finite at the starting point: {value}")
            }
        }
    }
}

impl Error for OptimizeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(OptimizeError::DimensionMismatch { x0: 2, bounds: 3 }
            .to_string()
            .contains("2 coordinates"));
        assert!(OptimizeError::EmptyProblem
            .to_string()
            .contains("zero-dimensional"));
        assert!(OptimizeError::InvalidBounds {
            index: 1,
            lower: 2.0,
            upper: 1.0
        }
        .to_string()
        .contains("index 1"));
        assert!(OptimizeError::NonFiniteObjective { value: f64::NAN }
            .to_string()
            .contains("NaN"));
    }
}
